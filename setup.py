"""Shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` on machines that cannot build
PEP 660 editable wheels (e.g. offline boxes without `wheel`).
"""

from setuptools import setup

setup()
