"""E19: commit throughput under client fan-in — pipelined group commit
vs per-session forcing.

Every client commit is a durability barrier, so the fsync is the scarce
resource.  Per-session forcing pays one log force per commit and
flatlines at the disk's fsync rate no matter how many clients pile on.
The cross-session pipeline coalesces every commit that arrives during
the in-flight fsync into the next window — the batch size *emerges*
from the disk's own latency — so commits/s rises with fan-in.  This is
the server front-end's whole performance story, measured:

- fan-in tiers (100 / 1k / 10k simulated clients) through the pipeline;
- pipelined vs per-session forcing head-to-head at the 1k tier
  (asserted >= 3x);
- crash equivalence under concurrent load: after a crash, warm
  recovery and a cold start from the segment files land byte-identical
  for all four §6 methods (Corollary 4 does not care how many threads
  wrote the log).

Results go to E19.txt and ``BENCH_server.json``.  Set ``E19_TIERS``,
``E19_OPS``, ``E19_WORKERS``, and ``E19_TRIALS`` to shrink the run for
CI smoke.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile

from repro.engine import KVDatabase
from repro.server import run_simulated_clients
from repro.sim.crash import cold_restart_states

from benchmarks.conftest import RESULTS_DIR, emit, table

TIERS = [
    int(t) for t in os.environ.get("E19_TIERS", "100,1000,10000").split(",")
]
OPS_PER_CLIENT = int(os.environ.get("E19_OPS", 4))
# Workers bound true thread fan-in — and with it the largest possible
# commit window — so this is the experiment's main axis of scale.
WORKERS = int(os.environ.get("E19_WORKERS", 64))
COMPARE_TIER = TIERS[min(1, len(TIERS) - 1)]  # the 1k tier by default
TRIALS = int(os.environ.get("E19_TRIALS", 3))  # best-of-N head-to-head
MIN_SPEEDUP = 3.0
METHODS = ("physical", "logical", "physiological", "generalized")


def run_tier(log_dir, n_clients: int, pipelined: bool):
    """One load run on a fresh durable database; returns (LoadResult, report)."""
    db = KVDatabase(
        method="physiological",
        cache_capacity=64,
        log_dir=log_dir,
        commit_pipeline=pipelined,
    )
    # commit_every=1 is the synchronous-commit workload: every op ends
    # in a durability barrier, so the fsync share of the baseline's cost
    # is maximal and the head-to-head measures exactly what the pipeline
    # amortizes.
    result = run_simulated_clients(
        db,
        n_clients=n_clients,
        ops_per_client=OPS_PER_CLIENT,
        commit_every=1,
        workers=WORKERS,
    )
    db.verify_against()
    pipeline_stats = db.pipeline.stats() if db.pipeline is not None else {}
    fsyncs = db.method.machine.log.store.fsyncs
    db.close()
    return result, pipeline_stats, fsyncs


def test_e19_server_commit_throughput():
    rows = []
    series = []
    for tier in TIERS:
        tmp = tempfile.mkdtemp(prefix="e19-tier-")
        try:
            result, pstats, fsyncs = run_tier(tmp, tier, pipelined=True)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        rows.append(
            [
                tier,
                result.commits,
                f"{result.commits_per_sec:.0f}",
                fsyncs,
                pstats.get("windows", 0),
                pstats.get("max_coalesced", 0),
                f"{result.latency_ms(0.50):.2f}",
                f"{result.latency_ms(0.99):.2f}",
            ]
        )
        series.append(
            {
                "clients": tier,
                **result.as_dict(),
                "fsyncs": fsyncs,
                "pipeline": pstats,
            }
        )

    # Head-to-head at the comparison tier: pipeline vs per-session
    # force.  Best of TRIALS runs per mode — thread-scheduler noise
    # moves single-run throughput by tens of percent, and best-of-N is
    # the standard way to measure the mechanism rather than the jitter.
    def best_of(pipelined: bool):
        best = None
        for _ in range(TRIALS):
            tmp = tempfile.mkdtemp(prefix="e19-hh-")
            try:
                run = run_tier(tmp, COMPARE_TIER, pipelined=pipelined)
            finally:
                shutil.rmtree(tmp, ignore_errors=True)
            if best is None or run[0].commits_per_sec > best[0].commits_per_sec:
                best = run
        return best

    piped, _, piped_fsyncs = best_of(True)
    forced, _, forced_fsyncs = best_of(False)
    speedup = (
        piped.commits_per_sec / forced.commits_per_sec
        if forced.commits_per_sec
        else float("inf")
    )

    # Crash equivalence under concurrent load, all four methods.
    equivalence = {}
    for method in METHODS:
        tmp = tempfile.mkdtemp(prefix=f"e19-crash-{method}-")
        try:
            db = KVDatabase(
                method=method,
                cache_capacity=64,
                log_dir=tmp,
                commit_pipeline=True,
            )
            run_simulated_clients(
                db, n_clients=50, ops_per_client=4, commit_every=2, workers=8
            )
            db.close()  # drain the pipeline before simulating the crash
            warm, cold = cold_restart_states(db, tmp)
            assert warm == cold, f"{method}: cold start diverged from warm"
            equivalence[method] = {
                "durable": warm["durable"],
                "stable_lsn": warm["stable_lsn"],
                "identical": True,
            }
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    lines = table(
        rows,
        headers=[
            "clients",
            "commits",
            "commits/s",
            "fsyncs",
            "windows",
            "max_coalesced",
            "p50_ms",
            "p99_ms",
        ],
    )
    lines += [
        "",
        f"pipelined vs per-session forcing at {COMPARE_TIER} clients "
        f"(best of {TRIALS}): "
        f"{piped.commits_per_sec:.0f} vs {forced.commits_per_sec:.0f} "
        f"commits/s ({speedup:.1f}x, fsyncs {piped_fsyncs} vs {forced_fsyncs})",
        "",
        "crash equivalence under concurrent load (warm == cold start):",
    ]
    lines += [
        f"  {method:15s} durable={info['durable']:<6d} "
        f"stable_lsn={info['stable_lsn']:<6d} byte-identical"
        for method, info in equivalence.items()
    ]
    emit("E19", "server fan-in: pipelined group commit", lines)
    (RESULTS_DIR / "BENCH_server.json").write_text(
        json.dumps(
            {
                "tiers": series,
                "comparison": {
                    "clients": COMPARE_TIER,
                    "pipelined": piped.as_dict(),
                    "per_session": forced.as_dict(),
                    "pipelined_fsyncs": piped_fsyncs,
                    "per_session_fsyncs": forced_fsyncs,
                    "speedup": round(speedup, 2),
                },
                "crash_equivalence": equivalence,
            },
            indent=1,
        )
    )
    assert speedup >= MIN_SPEEDUP, (
        f"pipelined group commit must beat per-session forcing by "
        f">= {MIN_SPEEDUP}x at {COMPARE_TIER} clients; got {speedup:.2f}x"
    )
