"""Shared helpers for the benchmark/experiment harness.

Every benchmark prints the table or series its experiment regenerates
(IDs match DESIGN.md's experiment index) and saves a copy under
``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import pathlib
from typing import Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, title: str, lines: Sequence[str]) -> None:
    """Print an experiment report and persist it to results/<id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    header = f"== {experiment_id}: {title} =="
    body = "\n".join([header, *lines, ""])
    print("\n" + body)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(body)


def table(rows: Sequence[Sequence], headers: Sequence[str]) -> list[str]:
    """Fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in str_rows)
    return lines
