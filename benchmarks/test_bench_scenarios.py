"""F1–F3 (+ §5 examples): the paper's worked scenarios, regenerated.

Each benchmark re-derives a figure's verdict — recoverable or not, which
prefixes explain the crashed state — and times the decision procedure.
The shape that must hold: Figure 1's state admits *no* recovery, Figures
2 and 3 recover, §5's E,F,G y-singly state does not, §5's H,J state does.
"""

from repro.core.conflict import ConflictGraph
from repro.core.explain import find_explaining_prefixes, is_explainable
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.replay import is_potentially_recoverable
from repro.workloads.opgen import scenario_library

from benchmarks.conftest import emit, table


def _analyze(scenario):
    conflict = ConflictGraph(list(scenario.operations))
    installation = InstallationGraph(conflict)
    initial = State()
    crashed = State(dict(scenario.crashed_values))
    explainable = is_explainable(installation, crashed, initial)
    recoverable = is_potentially_recoverable(conflict, crashed, initial)
    prefixes = [
        "{" + ",".join(sorted(op.name for op in prefix)) + "}"
        for prefix in find_explaining_prefixes(installation, crashed, initial)
    ]
    return explainable, recoverable, prefixes


def _scenario_row(name):
    scenario = scenario_library()[name]
    explainable, recoverable, prefixes = _analyze(scenario)
    assert explainable == recoverable == scenario.expected_recoverable
    return [
        name,
        " ".join(str(op) for op in scenario.operations),
        dict(scenario.crashed_values),
        "yes" if recoverable else "NO",
        " ".join(sorted(prefixes)) or "-",
    ]


def test_figure1(benchmark):
    scenario = scenario_library()["figure1"]
    explainable, recoverable, prefixes = benchmark(_analyze, scenario)
    assert not explainable and not recoverable and prefixes == []
    emit(
        "F1",
        "Scenario 1 — read-write edges are important",
        table(
            [_scenario_row("figure1")],
            ["scenario", "operations", "crashed state", "recoverable", "explaining prefixes"],
        )
        + [
            "",
            "B installed before A violates the read-write edge A->B:",
            "no subset of {A, B} replayed from (x=0, y=2) reaches (x=1, y=2).",
        ],
    )


def test_figure2(benchmark):
    scenario = scenario_library()["figure2"]
    explainable, recoverable, prefixes = benchmark(_analyze, scenario)
    assert explainable and recoverable
    assert "{A}" in prefixes
    emit(
        "F2",
        "Scenario 2 — write-read edges are unimportant",
        table(
            [_scenario_row("figure2")],
            ["scenario", "operations", "crashed state", "recoverable", "explaining prefixes"],
        )
        + [
            "",
            "{A} is an installation-graph prefix (the write-read edge B->A",
            "was dropped) though not a conflict-graph prefix; replaying B recovers.",
        ],
    )


def test_figure3(benchmark):
    scenario = scenario_library()["figure3"]
    explainable, recoverable, prefixes = benchmark(_analyze, scenario)
    assert explainable and recoverable
    assert "{C}" in prefixes
    emit(
        "F3",
        "Scenario 3 — only exposed variables matter",
        table(
            [_scenario_row("figure3")],
            ["scenario", "operations", "crashed state", "recoverable", "explaining prefixes"],
        )
        + [
            "",
            "Only C's write of y is installed; x is unexposed because D",
            "blind-writes it, so {C} explains the state and replaying D recovers.",
        ],
    )


def test_section5_scenarios(benchmark):
    def run():
        return [_scenario_row("section5_efg"), _scenario_row("section5_hj")]

    rows = benchmark(run)
    emit(
        "F3b",
        "§5 worked examples — atomic installs and unexposed shrinkage",
        table(
            rows,
            ["scenario", "operations", "crashed state", "recoverable", "explaining prefixes"],
        )
        + [
            "",
            "E,F,G: installing y singly strands the state — x and y must move",
            "atomically.  H,J: J's blind write leaves y unexposed, so installing",
            "H needs only the single-variable write of x.",
        ],
    )
