"""E17: observability overhead — a disabled tracer must be (nearly) free.

The instrumentation contract of :mod:`repro.obs` is that every traced
site guards with ``if tracer.enabled:`` before building any fields, so a
database constructed without a tracer (the shared no-op
:data:`~repro.obs.trace.NULL_TRACER`) pays one attribute load and a
branch per site — no allocation, no call, no record.

Measured here on the E16 workload (mixed KV stream, mutation hotspot,
cache pressure, crash + recovery at the end):

1. **disabled run** — the default ``KVDatabase`` (NULL_TRACER), the
   configuration every non-observability benchmark uses;
2. **enabled run** — the same stream with a live
   :class:`~repro.obs.trace.Tracer` over a
   :class:`~repro.obs.trace.RingBufferSink`, reporting the full cost of
   tracing and the events/op rate;
3. **guard micro-cost** — the measured per-site cost of the
   ``if tracer.enabled:`` check itself, which bounds what the disabled
   instrumentation can add over the pre-instrumentation (PR 3) code that
   had no guards at all.  Estimated disabled overhead =
   ``events_per_op x guard_cost x n_ops / disabled_time``.

Acceptance: the estimated disabled-tracer overhead is <= 5%, and the
wall-clock A/B confirms the disabled run is not slower than the enabled
run.  Results go to E17.txt and ``BENCH_obs.json``.  Set ``E17_OPS`` to
shrink the stream (CI smoke uses the default).
"""

from __future__ import annotations

import json
import os
import time

from repro.engine import KVDatabase
from repro.obs import NULL_TRACER, RingBufferSink, Tracer
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

from benchmarks.conftest import RESULTS_DIR, emit, table

SEED = 17
N_OPS = int(os.environ.get("E17_OPS", 1_500))
CACHE_CAPACITY = 8
N_PAGES = 32
REPEATS = 3
OVERHEAD_CEILING = 0.05


def spec() -> KVWorkloadSpec:
    """The E16 workload shape: mixed, read-heavy, with a hotspot."""
    return KVWorkloadSpec(
        n_operations=N_OPS,
        n_keys=200,
        put_ratio=0.3,
        add_ratio=0.15,
        delete_ratio=0.0,
        hot_fraction=0.7,
        hot_keys=6,
        value_range=8,
    )


def run_once(stream, tracer) -> tuple[float, KVDatabase]:
    """One full E16-shaped life: run, crash, recover, verify."""
    db = KVDatabase(
        method="physiological",
        cache_capacity=CACHE_CAPACITY,
        n_pages=N_PAGES,
        commit_every=3,
        checkpoint_every=40,
        tracer=tracer,
    )
    start = time.perf_counter()
    db.run(stream)
    db.crash_and_recover()
    elapsed = time.perf_counter() - start
    db.verify_against()
    return elapsed, db


def best_of(stream, make_tracer) -> tuple[float, KVDatabase]:
    """Best-of-N wall clock (minimum filters scheduler noise)."""
    best = None
    best_db = None
    for _ in range(REPEATS):
        elapsed, db = run_once(stream, make_tracer())
        if best is None or elapsed < best:
            best, best_db = elapsed, db
    return best, best_db


def guard_cost_ns() -> float:
    """The measured cost of one ``if tracer.enabled:`` check, in ns.

    A guarded no-op loop minus an empty loop over the same range,
    divided by iterations — the only thing disabled instrumentation
    adds per site relative to code with no instrumentation at all.
    """
    tracer = NULL_TRACER
    n = 2_000_000
    r = range(n)
    best_guarded = best_empty = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in r:
            if tracer.enabled:
                raise AssertionError("NULL_TRACER must be disabled")
        guarded = time.perf_counter() - start
        start = time.perf_counter()
        for _ in r:
            pass
        empty = time.perf_counter() - start
        best_guarded = guarded if best_guarded is None else min(best_guarded, guarded)
        best_empty = empty if best_empty is None else min(best_empty, empty)
    return max(0.0, (best_guarded - best_empty) / n * 1e9)


def test_e17_tracer_overhead():
    stream = generate_kv_workload(SEED, spec())

    disabled_s, _ = best_of(stream, lambda: None)

    sinks: list[RingBufferSink] = []

    def make_enabled() -> Tracer:
        sink = RingBufferSink(capacity=1 << 20)
        sinks.append(sink)
        return Tracer(sink)

    enabled_s, enabled_db = best_of(stream, make_enabled)
    events = enabled_db.tracer.records_emitted
    events_per_op = events / N_OPS

    guard_ns = guard_cost_ns()
    # Each emitted event corresponds to one guarded site that fired; the
    # disabled run hits the same sites and pays only the guard.
    est_disabled_overhead = (events_per_op * guard_ns * 1e-9 * N_OPS) / disabled_s

    enabled_overhead = (enabled_s - disabled_s) / disabled_s

    rows = [
        ["disabled (NULL_TRACER)", f"{disabled_s * 1e3:.1f}", "-", "-"],
        [
            "enabled (ring buffer)",
            f"{enabled_s * 1e3:.1f}",
            f"{enabled_overhead:+.1%}",
            f"{events_per_op:.1f}",
        ],
    ]
    lines = table(rows, headers=["configuration", "ms (best of 3)", "overhead", "events/op"])
    lines.append("")
    lines.append(
        f"guard micro-cost: {guard_ns:.0f} ns per `if tracer.enabled:` check; "
        f"estimated disabled-tracer overhead "
        f"{est_disabled_overhead:.2%} of the uninstrumented runtime "
        f"(ceiling {OVERHEAD_CEILING:.0%})"
    )
    lines.append(
        f"{events} trace records over {N_OPS} commands + crash/recovery "
        f"(seed {SEED}, physiological, cache {CACHE_CAPACITY}/{N_PAGES} pages)"
    )
    emit("E17", "tracer overhead: disabled must be free", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "experiment": "E17",
        "seed": SEED,
        "n_operations": N_OPS,
        "cache_capacity": CACHE_CAPACITY,
        "n_pages": N_PAGES,
        "repeats": REPEATS,
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "enabled_overhead_ratio": enabled_overhead,
        "events_emitted": events,
        "events_per_op": events_per_op,
        "guard_cost_ns": guard_ns,
        "estimated_disabled_overhead_ratio": est_disabled_overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
    }
    (RESULTS_DIR / "BENCH_obs.json").write_text(json.dumps(payload, indent=1))

    assert est_disabled_overhead <= OVERHEAD_CEILING, (
        f"disabled tracing estimated at {est_disabled_overhead:.2%} overhead "
        f"({events_per_op:.1f} guarded events/op x {guard_ns:.0f} ns), "
        f"over the {OVERHEAD_CEILING:.0%} ceiling"
    )
    # Sanity: tracing produced a substantial record stream, and no ring
    # buffer overflowed silently (the capacity covers the whole run).
    assert events > N_OPS
    assert all(s.dropped == 0 for s in sinks)
