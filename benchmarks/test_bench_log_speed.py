"""E20: hardware-bound log tier — windowed append and zero-copy sealed scan.

Head-to-head measurements of the batch-granular log tier against the
E18-era per-record paths, over the same wire format and the same
workload shape E18 used (single-page physiological puts, 20k records,
2048-record segments):

1. **append write path MB/s** (asserted) — pre-encoded frames pushed
   through the store: the E18-era shape staged one frame and issued one
   ``write`` per record; the windowed path stages one packed blob per
   segment run and issues one ``write`` per window.  Both arms run on
   page-cache writes (``fsync=False``) because batching changes the
   ``write`` count, never the fsync count — durability cost is one
   fsync per barrier in both designs and is E18's commit measurement.
2. **cold-start scan records/s** (asserted) — E18's exact scan loop
   (:meth:`~repro.logmgr.manager.LogManager.open` + a full stable
   stream) against E18's recorded rate.  The rebuilt path verifies one
   sidecar-seal CRC per segment, walks frames with a single 17-byte
   unpack, and materializes lazy records without decoding a value.
3. **supporting rates** (reported) — encode-only old vs new, the full
   tier append (encode + stage + write) old vs new, lazy vs
   full-decode file scans, and the E18-shape manager append, each with
   its delta against the E18 recording.

The E18 baseline constants are frozen from the committed E18 recording
(``benchmarks/results/BENCH_durable_log.json`` at the time this
benchmark was written) rather than read at runtime — re-running E18 on
the rebuilt tier overwrites that file with post-rebuild numbers, which
would silently deflate the comparison.

Results go to E20.txt and ``BENCH_log_speed.json``.  ``E20_OPS``
shrinks the stream; ``E20_MIN_SPEEDUP`` relaxes the 10x floor for CI
smoke machines (CI uses 3).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.logmgr import FileLogStore, LogManager, PageAction, PhysiologicalRedo
from repro.logmgr.codec import (
    decode_record_body,
    encode_record,
    encode_window,
    walk_frames,
)
from repro.logmgr.filelog import iter_file_records
from repro.logmgr.records import LogRecord

from benchmarks.conftest import RESULTS_DIR, emit, table

N_OPS = int(os.environ.get("E20_OPS", 20_000))
SEGMENT_SIZE = 2048
REPEATS = 3
MIN_SPEEDUP = float(os.environ.get("E20_MIN_SPEEDUP", 10.0))

# Frozen from the E18 recording made on the pre-rebuild tier (see the
# module docstring for why this is not read from the JSON at runtime).
E18_APPEND_MB_PER_S = 7.02
E18_SCAN_RECORDS_PER_S = 57_884.0


def payload(i: int) -> PhysiologicalRedo:
    """E18's representative record: a single-page put of a small int."""
    return PhysiologicalRedo(f"page{i % 64:03d}", PageAction("put", (f"k{i % 512}", i)))


def make_records() -> list[LogRecord]:
    return [LogRecord(lsn=i, payload=payload(i), labels={}) for i in range(N_OPS)]


def best_of(measure, repeats: int = REPEATS):
    """The fastest run — every ``measure()`` returns ``(seconds, ...)``."""
    winner = None
    for _ in range(repeats):
        result = measure()
        if winner is None or result[0] < winner[0]:
            winner = result
    return winner


def segment_runs(records):
    """Split a record stream into (base_lsn, chunk) segment runs."""
    runs = []
    for record in records:
        base = (record.lsn // SEGMENT_SIZE) * SEGMENT_SIZE
        if not runs or runs[-1][0] != base:
            runs.append((base, []))
        runs[-1][1].append(record)
    return runs


# ----------------------------------------------------------------------
# 1. Append write path: pre-encoded bytes through the store
# ----------------------------------------------------------------------


def measure_write_path_old() -> tuple[float, int]:
    """E18-era write shape: one staged frame, one ``write`` per record."""
    frames = [(r.lsn, encode_record(r)) for r in make_records()]
    directory = tempfile.mkdtemp(prefix="e20-wold-")
    store = FileLogStore(directory, fsync=False)
    try:
        store.begin_segment(0)
        start = time.perf_counter()
        for lsn, frame in frames:
            if lsn and lsn % SEGMENT_SIZE == 0:
                store.begin_segment(lsn)
            store.stage(lsn, frame)
            store.write_up_to(lsn)
        store.sync()
        elapsed = time.perf_counter() - start
        return elapsed, store.bytes_written
    finally:
        store.close()
        shutil.rmtree(directory, ignore_errors=True)


def measure_write_path_new() -> tuple[float, int]:
    """Windowed write shape: one packed blob, one ``write`` per run."""
    runs = [
        (base, chunk[-1].lsn, bytes(encode_window(chunk)), len(chunk))
        for base, chunk in segment_runs(make_records())
    ]
    directory = tempfile.mkdtemp(prefix="e20-wnew-")
    store = FileLogStore(directory, fsync=False)
    try:
        store.begin_segment(0)
        start = time.perf_counter()
        for base, last_lsn, blob, count in runs:
            if base:
                store.begin_segment(base)
            store.stage_many(last_lsn, base, blob, count)
            store.write_up_to(last_lsn)
        store.sync()
        elapsed = time.perf_counter() - start
        return elapsed, store.bytes_written
    finally:
        store.close()
        shutil.rmtree(directory, ignore_errors=True)


# ----------------------------------------------------------------------
# 2. Encoding and the full tier append (encode + stage + write)
# ----------------------------------------------------------------------


def measure_encode_old() -> tuple[float, int]:
    records = make_records()
    start = time.perf_counter()
    nbytes = sum(len(encode_record(record)) for record in records)
    return time.perf_counter() - start, nbytes


def measure_encode_new() -> tuple[float, int]:
    runs = segment_runs(make_records())
    start = time.perf_counter()
    nbytes = sum(len(encode_window(chunk)) for _base, chunk in runs)
    return time.perf_counter() - start, nbytes


def measure_tier_append_old() -> tuple[float, int]:
    records = make_records()
    directory = tempfile.mkdtemp(prefix="e20-told-")
    store = FileLogStore(directory, fsync=False)
    try:
        store.begin_segment(0)
        start = time.perf_counter()
        for record in records:
            if record.lsn and record.lsn % SEGMENT_SIZE == 0:
                store.begin_segment(record.lsn)
            store.stage(record.lsn, encode_record(record))
            store.write_up_to(record.lsn)
        store.sync()
        elapsed = time.perf_counter() - start
        return elapsed, store.bytes_written
    finally:
        store.close()
        shutil.rmtree(directory, ignore_errors=True)


def measure_tier_append_new() -> tuple[float, int]:
    runs = segment_runs(make_records())
    directory = tempfile.mkdtemp(prefix="e20-tnew-")
    store = FileLogStore(directory, fsync=False)
    try:
        store.begin_segment(0)
        start = time.perf_counter()
        for base, chunk in runs:
            if base:
                store.begin_segment(base)
            store.stage_many(chunk[-1].lsn, base, encode_window(chunk), len(chunk))
            store.write_up_to(chunk[-1].lsn)
        store.sync()
        elapsed = time.perf_counter() - start
        return elapsed, store.bytes_written
    finally:
        store.close()
        shutil.rmtree(directory, ignore_errors=True)


# ----------------------------------------------------------------------
# 3. Manager-level append (E18's exact loop) and the cold scan
# ----------------------------------------------------------------------


def measure_manager_append(directory) -> tuple[float, int]:
    log = LogManager(segment_size=SEGMENT_SIZE, store=FileLogStore(directory))
    start = time.perf_counter()
    for i in range(N_OPS):
        log.append(payload(i))
    log.flush(barrier=True)
    elapsed = time.perf_counter() - start
    return elapsed, log.store.bytes_written


def measure_manager_scan(directory) -> tuple[float, int]:
    start = time.perf_counter()
    log = LogManager.open(directory, segment_size=SEGMENT_SIZE)
    scanned = sum(1 for _ in log.stable_records_from(0))
    elapsed = time.perf_counter() - start
    log.store.close()
    return elapsed, scanned


def measure_file_scan_decode(paths) -> tuple[float, int]:
    """E18-era file scan: per-frame CRC walk + full record decode."""
    start = time.perf_counter()
    scanned = 0
    for path in paths:
        buf = path.read_bytes()
        try:
            for lsn, lo, hi in walk_frames(buf):
                decode_record_body(lsn, buf[lo:hi])
                scanned += 1
        except Exception:
            pass  # a torn active tail ends that file's walk
    return time.perf_counter() - start, scanned


def measure_file_scan_lazy(paths) -> tuple[float, int]:
    """Rebuilt file scan: sealed mmap walk, lazy records."""
    start = time.perf_counter()
    scanned = 0
    for path in paths:
        for _record in iter_file_records(path):
            scanned += 1
    return time.perf_counter() - start, scanned


def test_e20_log_speed():
    # Append write path (asserted head-to-head).
    wold_s, wold_bytes = best_of(measure_write_path_old)
    wnew_s, wnew_bytes = best_of(measure_write_path_new)
    assert wold_bytes == wnew_bytes  # same records, same wire bytes
    wold_mb_s = wold_bytes / wold_s / 1e6
    wnew_mb_s = wnew_bytes / wnew_s / 1e6
    write_speedup = wnew_mb_s / wold_mb_s

    # Encoding alone, then the full tier append.
    eold_s, eold_bytes = best_of(measure_encode_old)
    enew_s, enew_bytes = best_of(measure_encode_new)
    assert eold_bytes == enew_bytes
    encode_speedup = eold_s / enew_s
    told_s, told_bytes = best_of(measure_tier_append_old)
    tnew_s, tnew_bytes = best_of(measure_tier_append_new)
    told_mb_s = told_bytes / told_s / 1e6
    tnew_mb_s = tnew_bytes / tnew_s / 1e6
    tier_speedup = tnew_mb_s / told_mb_s

    # Manager append (E18's loop), keeping the best run's files to scan.
    append_dirs = []
    append_best = None
    for _ in range(REPEATS):
        directory = tempfile.mkdtemp(prefix="e20-mgr-")
        append_dirs.append(directory)
        elapsed, nbytes = measure_manager_append(directory)
        if append_best is None or elapsed < append_best[0]:
            append_best = (elapsed, nbytes, directory)
    mgr_s, mgr_bytes, scan_dir = append_best
    mgr_mb_s = mgr_bytes / mgr_s / 1e6

    # Cold scan (asserted against the E18 recording) + file-level scans.
    scan_s, scanned = best_of(lambda: measure_manager_scan(scan_dir))
    assert scanned == N_OPS
    scan_rate = scanned / scan_s
    scan_vs_e18 = scan_rate / E18_SCAN_RECORDS_PER_S
    paths = sorted(pathlib.Path(scan_dir).glob("*.wal"))
    fdec_s, fdec_n = best_of(lambda: measure_file_scan_decode(paths))
    flazy_s, flazy_n = best_of(lambda: measure_file_scan_lazy(paths))
    assert fdec_n == flazy_n == N_OPS
    lazy_speedup = fdec_s / flazy_s
    for directory in append_dirs:
        shutil.rmtree(directory, ignore_errors=True)

    rows = [
        [
            "write path, per-record",
            f"{wold_s * 1e3:.1f}",
            f"{wold_mb_s:.1f} MB/s",
            f"{N_OPS} writes",
        ],
        [
            "write path, windowed",
            f"{wnew_s * 1e3:.1f}",
            f"{wnew_mb_s:.1f} MB/s",
            f"{write_speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)",
        ],
        [
            "encode, per-record",
            f"{eold_s * 1e3:.1f}",
            f"{eold_s / N_OPS * 1e6:.2f} us/rec",
            "",
        ],
        [
            "encode, windowed",
            f"{enew_s * 1e3:.1f}",
            f"{enew_s / N_OPS * 1e6:.2f} us/rec",
            f"{encode_speedup:.1f}x",
        ],
        [
            "tier append, per-record",
            f"{told_s * 1e3:.1f}",
            f"{told_mb_s:.1f} MB/s",
            "encode+stage+write",
        ],
        [
            "tier append, windowed",
            f"{tnew_s * 1e3:.1f}",
            f"{tnew_mb_s:.1f} MB/s",
            f"{tier_speedup:.1f}x",
        ],
        [
            "manager append",
            f"{mgr_s * 1e3:.1f}",
            f"{mgr_mb_s:.1f} MB/s",
            f"{mgr_mb_s / E18_APPEND_MB_PER_S:.1f}x E18 recording",
        ],
        [
            "file scan, full decode",
            f"{fdec_s * 1e3:.1f}",
            f"{fdec_n / fdec_s:,.0f} rec/s",
            "",
        ],
        [
            "file scan, lazy+sealed",
            f"{flazy_s * 1e3:.1f}",
            f"{flazy_n / flazy_s:,.0f} rec/s",
            f"{lazy_speedup:.1f}x",
        ],
        [
            "cold-start scan",
            f"{scan_s * 1e3:.1f}",
            f"{scan_rate:,.0f} rec/s",
            f"{scan_vs_e18:.1f}x E18 recording (floor {MIN_SPEEDUP:.0f}x)",
        ],
    ]
    lines = table(rows, headers=["phase", "ms (best of 3)", "rate", "speedup"])
    lines.append("")
    lines.append(
        f"E18 -> E20 delta: append {E18_APPEND_MB_PER_S:.1f} -> "
        f"{mgr_mb_s:.1f} MB/s end-to-end ({wnew_mb_s:.0f} MB/s through the "
        f"write path); scan {E18_SCAN_RECORDS_PER_S:,.0f} -> "
        f"{scan_rate:,.0f} rec/s"
    )
    emit("E20", "log speed: windowed append, zero-copy sealed scan", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    result = {
        "experiment": "E20",
        "n_operations": N_OPS,
        "segment_size": SEGMENT_SIZE,
        "repeats": REPEATS,
        "min_speedup": MIN_SPEEDUP,
        "append_write_path_mb_per_s_old": wold_mb_s,
        "append_write_path_mb_per_s_new": wnew_mb_s,
        "append_write_path_speedup": write_speedup,
        "encode_us_per_record_old": eold_s / N_OPS * 1e6,
        "encode_us_per_record_new": enew_s / N_OPS * 1e6,
        "encode_speedup": encode_speedup,
        "append_tier_mb_per_s_old": told_mb_s,
        "append_tier_mb_per_s_new": tnew_mb_s,
        "append_tier_speedup": tier_speedup,
        "append_manager_mb_per_s": mgr_mb_s,
        "scan_records_per_s": scan_rate,
        "scan_seconds": scan_s,
        "file_scan_decode_records_per_s": fdec_n / fdec_s,
        "file_scan_lazy_records_per_s": flazy_n / flazy_s,
        "file_scan_lazy_speedup": lazy_speedup,
        "e18_recorded": {
            "append_mb_per_s": E18_APPEND_MB_PER_S,
            "scan_records_per_s": E18_SCAN_RECORDS_PER_S,
        },
        "delta_vs_e18": {
            "append_manager_mb_per_s": mgr_mb_s - E18_APPEND_MB_PER_S,
            "append_manager_speedup": mgr_mb_s / E18_APPEND_MB_PER_S,
            "scan_records_per_s": scan_rate - E18_SCAN_RECORDS_PER_S,
            "scan_speedup": scan_vs_e18,
        },
    }
    (RESULTS_DIR / "BENCH_log_speed.json").write_text(json.dumps(result, indent=1))

    assert write_speedup >= MIN_SPEEDUP, (
        f"windowed write path reached only {write_speedup:.1f}x the "
        f"per-record write rate (floor {MIN_SPEEDUP:.0f}x)"
    )
    assert scan_vs_e18 >= MIN_SPEEDUP, (
        f"cold scan reached only {scan_vs_e18:.1f}x E18's recorded "
        f"{E18_SCAN_RECORDS_PER_S:,.0f} rec/s (floor {MIN_SPEEDUP:.0f}x)"
    )
