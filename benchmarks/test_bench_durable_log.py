"""E18: durable log throughput — append rate, group commit, cold scan.

Three measurements over the file-backed log tier
(:mod:`repro.logmgr.codec` + :mod:`repro.logmgr.filelog`):

1. **append MB/s** — encode + stage + buffered write of a long record
   stream, with a single barrier fsync at the end (the sequential-write
   ceiling of the wire format);
2. **commit throughput** — per-record fsync (``group_commit=1``, every
   force pays a real ``fsync``) versus batched group commit
   (``group_commit=16``, sixteen forces share one ``fsync``).  The whole
   point of group commit is that commit latency is fsync-bound, so the
   batched configuration must clear **>= 5x** the per-record rate;
3. **recovery scan records/s** — a cold start
   (:meth:`~repro.logmgr.manager.LogManager.open`) followed by a full
   streaming decode of the stable log, the rate every §6 method's
   recovery scan is built on.

Results go to E18.txt and ``BENCH_durable_log.json``.  Set ``E18_OPS``
(append/scan stream length) and ``E18_COMMITS`` (fsync loop length) to
shrink the run for CI smoke.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.logmgr import FileLogStore, LogManager, PageAction, PhysiologicalRedo

from benchmarks.conftest import RESULTS_DIR, emit, table

N_OPS = int(os.environ.get("E18_OPS", 20_000))
N_COMMITS = int(os.environ.get("E18_COMMITS", 400))
GROUP_SIZE = 16
SEGMENT_SIZE = 2048
REPEATS = 3
MIN_SPEEDUP = 5.0


def payload(i: int) -> PhysiologicalRedo:
    """A representative single-page record (put of a small int value)."""
    return PhysiologicalRedo(f"page{i % 64:03d}", PageAction("put", (f"k{i % 512}", i)))


def fresh_log(directory, group_commit: int = 1) -> LogManager:
    return LogManager(
        segment_size=SEGMENT_SIZE,
        store=FileLogStore(directory),
        group_commit=group_commit,
    )


def measure_append(directory) -> tuple[float, int]:
    """Seconds and bytes for N_OPS appends plus one barrier force."""
    log = fresh_log(directory)
    start = time.perf_counter()
    for i in range(N_OPS):
        log.append(payload(i))
    log.flush(barrier=True)
    elapsed = time.perf_counter() - start
    bytes_written = log.store.bytes_written
    log.store.close()
    return elapsed, bytes_written


def measure_commits(directory, group_commit: int) -> tuple[float, int]:
    """Seconds and fsync count for N_COMMITS append+force cycles."""
    log = fresh_log(directory, group_commit=group_commit)
    start = time.perf_counter()
    for i in range(N_COMMITS):
        log.append(payload(i))
        log.flush()
    log.flush(barrier=True)  # drain the last partial batch
    elapsed = time.perf_counter() - start
    fsyncs = log.store.fsyncs
    log.store.close()
    return elapsed, fsyncs


def measure_scan(directory) -> tuple[float, int]:
    """Seconds for a cold start plus a full stable-log decode."""
    start = time.perf_counter()
    log = LogManager.open(directory, segment_size=SEGMENT_SIZE)
    scanned = sum(1 for _ in log.stable_records_from(0))
    elapsed = time.perf_counter() - start
    log.store.close()
    return elapsed, scanned


def test_e18_durable_log_throughput():
    # 1. Append throughput (and keep the best run's files for the scan).
    append_dirs = []
    append_best = None
    for _ in range(REPEATS):
        directory = tempfile.mkdtemp(prefix="e18-append-")
        append_dirs.append(directory)
        elapsed, nbytes = measure_append(directory)
        if append_best is None or elapsed < append_best[0]:
            append_best = (elapsed, nbytes, directory)
    append_s, append_bytes, scan_dir = append_best
    append_mb_s = append_bytes / append_s / 1e6

    # 3 (measured now, on the appended files). Cold-start scan rate.
    scan_best = None
    for _ in range(REPEATS):
        elapsed, scanned = measure_scan(scan_dir)
        if scan_best is None or elapsed < scan_best[0]:
            scan_best = (elapsed, scanned)
    scan_s, scanned = scan_best
    assert scanned == N_OPS
    scan_rate = scanned / scan_s
    for directory in append_dirs:
        shutil.rmtree(directory, ignore_errors=True)

    # 2. Commit throughput: per-record fsync vs group commit.
    def commit_best(group_commit):
        best = None
        for _ in range(REPEATS):
            directory = tempfile.mkdtemp(prefix="e18-commit-")
            try:
                result = measure_commits(directory, group_commit)
            finally:
                shutil.rmtree(directory, ignore_errors=True)
            if best is None or result[0] < best[0]:
                best = result
        return best

    per_record_s, per_record_fsyncs = commit_best(1)
    batched_s, batched_fsyncs = commit_best(GROUP_SIZE)
    per_record_rate = N_COMMITS / per_record_s
    batched_rate = N_COMMITS / batched_s
    speedup = batched_rate / per_record_rate

    rows = [
        [
            "append (stage+write)",
            f"{append_s * 1e3:.1f}",
            f"{append_mb_s:.1f} MB/s",
            f"{N_OPS / append_s:,.0f} rec/s",
        ],
        [
            "commit, fsync each",
            f"{per_record_s * 1e3:.1f}",
            f"{per_record_rate:,.0f} commits/s",
            f"{per_record_fsyncs} fsyncs",
        ],
        [
            f"commit, group of {GROUP_SIZE}",
            f"{batched_s * 1e3:.1f}",
            f"{batched_rate:,.0f} commits/s",
            f"{batched_fsyncs} fsyncs",
        ],
        [
            "cold-start scan",
            f"{scan_s * 1e3:.1f}",
            f"{scan_rate:,.0f} rec/s",
            f"{scanned} records",
        ],
    ]
    lines = table(rows, headers=["phase", "ms (best of 3)", "rate", "detail"])
    lines.append("")
    lines.append(
        f"group commit speedup: {speedup:.1f}x "
        f"({N_COMMITS} commits; floor {MIN_SPEEDUP:.0f}x) — "
        f"{per_record_fsyncs} fsyncs collapse to {batched_fsyncs}"
    )
    emit("E18", "durable log: append, group commit, cold scan", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    result = {
        "experiment": "E18",
        "n_operations": N_OPS,
        "n_commits": N_COMMITS,
        "group_size": GROUP_SIZE,
        "segment_size": SEGMENT_SIZE,
        "repeats": REPEATS,
        "append_seconds": append_s,
        "append_bytes": append_bytes,
        "append_mb_per_s": append_mb_s,
        "per_record_commit_seconds": per_record_s,
        "per_record_commits_per_s": per_record_rate,
        "per_record_fsyncs": per_record_fsyncs,
        "batched_commit_seconds": batched_s,
        "batched_commits_per_s": batched_rate,
        "batched_fsyncs": batched_fsyncs,
        "group_commit_speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "scan_seconds": scan_s,
        "scan_records": scanned,
        "scan_records_per_s": scan_rate,
    }
    (RESULTS_DIR / "BENCH_durable_log.json").write_text(json.dumps(result, indent=1))

    # The fsync arithmetic must match the design: one per commit when
    # unbatched; roughly one per GROUP_SIZE commits when batched (+1 for
    # the directory fsync and +1 for the final drain).
    assert per_record_fsyncs >= N_COMMITS
    assert batched_fsyncs <= N_COMMITS // GROUP_SIZE + 3
    assert speedup >= MIN_SPEEDUP, (
        f"group commit of {GROUP_SIZE} reached only {speedup:.1f}x the "
        f"per-record-fsync commit rate (floor {MIN_SPEEDUP:.0f}x)"
    )
