"""F6: the abstract recovery procedure of Figure 6, exercised at scale.

Runs ``recover`` over random logged executions under the paper's
parameterizations — trivial redo with a checkpoint, a single-pass
analysis, a per-iteration analysis — and reports replay counts and
correctness.  The shape: with the recovery invariant maintained, every
run terminates in the conflict graph's final state.
"""

from repro.core.conflict import ConflictGraph
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.recovery import Log, analysis_once, recover
from repro.graphs import all_prefixes
from repro.workloads.opgen import OpSequenceSpec, random_operations

from benchmarks.conftest import emit, table

SPEC = OpSequenceSpec(n_operations=7, n_variables=3)


def run_recoveries(n_seeds: int = 40):
    rows = []
    total = correct = 0
    replayed_total = 0
    for seed in range(n_seeds):
        ops = random_operations(seed, SPEC)
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        final = conflict.final_state(initial)
        log = Log.from_operations(ops)
        variables = set()
        for op in ops:
            variables |= op.variables()
        for prefix_names in all_prefixes(installation.dag):
            prefix = {conflict.operation(name) for name in prefix_names}
            state = installation.determined_state(prefix, initial)
            outcome = recover(
                state,
                log,
                checkpoint=prefix,
                analyze=analysis_once(lambda s, l, u: len(u)),
            )
            total += 1
            replayed_total += len(outcome.redo_set)
            if outcome.state.agrees_with(final, variables):
                correct += 1
    rows.append([n_seeds, total, correct, total - correct, replayed_total])
    return rows, total, correct


def test_figure6_recover_procedure(benchmark):
    rows, total, correct = benchmark(run_recoveries)
    assert correct == total
    emit(
        "F6",
        "The recover() procedure over random checkpointed executions",
        table(
            rows,
            ["seeds", "recoveries", "correct", "failed", "ops replayed"],
        )
        + [
            "",
            "Every installation-prefix checkpoint recovers to the final state",
            "(Corollary 4 exercised through the Figure 6 procedure).",
        ],
    )


def test_figure6_redo_test_variants(benchmark):
    """Compare redo-test disciplines on the same crash states: replay-all
    vs. replay-all-after-checkpoint vs. an LSN-like test that skips the
    installed prefix record-by-record."""

    def run():
        variants = {"replay-all-after-ckpt": 0, "state-aware-skip": 0}
        correct = {k: 0 for k in variants}
        cases = 0
        for seed in range(30):
            ops = random_operations(seed, SPEC)
            conflict = ConflictGraph(ops)
            installation = InstallationGraph(conflict)
            initial = State()
            final = conflict.final_state(initial)
            log = Log.from_operations(ops)
            variables = set()
            for op in ops:
                variables |= op.variables()
            for prefix_names in all_prefixes(installation.dag):
                prefix = {conflict.operation(name) for name in prefix_names}
                state = installation.determined_state(prefix, initial)
                cases += 1
                # Variant 1: checkpoint carries the installed set.
                outcome = recover(state, log, checkpoint=prefix)
                variants["replay-all-after-ckpt"] += len(outcome.redo_set)
                if outcome.state.agrees_with(final, variables):
                    correct["replay-all-after-ckpt"] += 1
                # Variant 2: empty checkpoint; redo test itself skips the
                # installed operations (it knows the installed set, like a
                # page-LSN test knows installed pages).
                installed = set(prefix)
                outcome = recover(
                    state,
                    log,
                    redo=lambda op, s, l, a, inst=installed: op not in inst,
                )
                variants["state-aware-skip"] += len(outcome.redo_set)
                if outcome.state.agrees_with(final, variables):
                    correct["state-aware-skip"] += 1
        return variants, correct, cases

    variants, correct, cases = benchmark(run)
    assert all(c == cases for c in correct.values())
    assert variants["replay-all-after-ckpt"] == variants["state-aware-skip"]
    emit(
        "F6b",
        "Redo-test parameterizations agree",
        table(
            [[k, cases, correct[k], v] for k, v in variants.items()],
            ["redo discipline", "cases", "correct", "ops replayed"],
        )
        + [
            "",
            "Moving the installed set from the checkpoint into the redo test",
            "changes nothing — the recovery invariant is the same contract.",
        ],
    )
