"""E14: streaming vs materialized recovery, and partitioned redo.

The segmented log manager lets recovery consume the checkpoint suffix as
an iterator, holding O(segment) records resident instead of copying the
whole suffix into a list.  This experiment measures both disciplines at
10k and 100k records — peak traced allocation (tracemalloc) and wall
time — and checks that opt-in partitioned redo reproduces the
sequential scan's final state byte for byte.

Results are emitted as E14.txt and machine-readably as
``BENCH_streaming.json`` under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time
import tracemalloc

from repro.engine import KVDatabase
from repro.logmgr import (
    CheckpointRecord,
    LogManager,
    PageAction,
    PhysiologicalRedo,
)
from repro.storage.page import Page

from benchmarks.conftest import RESULTS_DIR, emit, table

SIZES = (10_000, 100_000)
N_PAGES = 64
SEGMENT_SIZE = 1024
CHECKPOINT_EVERY = 4096


def build_log(n_records: int) -> LogManager:
    manager = LogManager(segment_size=SEGMENT_SIZE)
    for i in range(n_records):
        page_id = f"p{i % N_PAGES:03d}"
        # Keys cycle so the replayed state stays bounded and the resident
        # record set — the thing under test — dominates the measurement.
        manager.append(
            PhysiologicalRedo(page_id, PageAction("put", (f"k{i % 4096}", i)))
        )
        if i and i % CHECKPOINT_EVERY == 0:
            manager.append(CheckpointRecord(("bench", ())))
    manager.flush()
    return manager


def replay(records) -> dict[str, Page]:
    """The redo scan both disciplines share: LSN test, then apply."""
    pages: dict[str, Page] = {}
    for record in records:
        payload = record.payload
        if not isinstance(payload, PhysiologicalRedo):
            continue
        page = pages.get(payload.page_id)
        if page is None:
            page = pages[payload.page_id] = Page(payload.page_id)
        if page.lsn >= record.lsn:
            continue
        payload.action.apply_to(page, lsn=record.lsn)
    return pages


def measure(fn) -> tuple[dict, float, int]:
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_streaming_vs_materialized_recovery():
    rows = []
    data = {}
    for n_records in SIZES:
        manager = build_log(n_records)

        materialized, mat_time, mat_peak = measure(
            lambda: replay(manager.stable_entries())
        )
        streamed, stream_time, stream_peak = measure(
            lambda: replay(manager.stable_records_from(0))
        )

        assert {p: dict(pages.cells) for p, pages in streamed.items()} == {
            p: dict(pages.cells) for p, pages in materialized.items()
        }
        assert stream_peak < mat_peak, (
            "streaming recovery should hold fewer records resident "
            f"({stream_peak} vs {mat_peak} bytes at n={n_records})"
        )
        rows.append(
            [
                n_records,
                f"{mat_peak / 1e6:.2f}",
                f"{stream_peak / 1e6:.2f}",
                f"{mat_peak / max(stream_peak, 1):.1f}x",
                f"{mat_time * 1e3:.1f}",
                f"{stream_time * 1e3:.1f}",
            ]
        )
        data[str(n_records)] = {
            "materialized_peak_bytes": mat_peak,
            "streaming_peak_bytes": stream_peak,
            "materialized_wall_s": mat_time,
            "streaming_wall_s": stream_time,
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_streaming.json").write_text(
        json.dumps(
            {
                "experiment": "E14",
                "segment_size": SEGMENT_SIZE,
                "n_pages": N_PAGES,
                "sizes": data,
            },
            indent=2,
        )
        + "\n"
    )
    emit(
        "E14",
        "Streaming vs materialized recovery scan",
        table(
            rows,
            [
                "records",
                "mat peak MB",
                "stream peak MB",
                "ratio",
                "mat ms",
                "stream ms",
            ],
        )
        + [
            "",
            "The streaming scan's resident set is bounded by the segment",
            "size; the materialized scan's grows with the whole suffix.",
        ],
    )


def test_partitioned_redo_matches_sequential():
    """Partitioned replay must be byte-identical to the sequential scan
    (Theorem 3 at engine granularity), and not slower by much."""
    rows = []
    dumps = {}
    for parallel in (False, True):
        db = KVDatabase(
            method="physiological",
            n_pages=16,
            cache_capacity=8,
            log_segment_size=SEGMENT_SIZE,
            method_options={
                "parallel_recovery": parallel,
                "recovery_workers": 4,
            },
        )
        for i in range(10_000):
            db.execute(("put", f"k{i % 512}", i))
        db.crash()
        start = time.perf_counter()
        db.recover()
        elapsed = time.perf_counter() - start
        db.verify_against()
        dumps[parallel] = db.method.dump()
        rows.append(
            ["partitioned" if parallel else "sequential", f"{elapsed * 1e3:.1f}"]
        )
    assert dumps[True] == dumps[False]
    emit(
        "E14b",
        "Partitioned redo is byte-identical to the sequential scan",
        table(rows, ["discipline", "recover ms"])
        + ["", "Final states compared equal cell-for-cell (10k records)."],
    )
