"""E13: recovery cost scaling with history length.

The practical reason checkpoints exist (§4.2): without one, recovery
work grows with the *entire* history; with periodic checkpoints it is
bounded by the checkpoint interval (plus, for LSN methods, whatever the
cache had not yet installed).  Measured: records scanned and replayed at
crash time as the workload grows 60 → 480 operations, for every method,
with and without checkpoints.
"""

from repro.engine import KVDatabase
from repro.sim import crash_once
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

from benchmarks.conftest import emit, table

LENGTHS = [60, 120, 240, 480]
METHODS = ["logical", "physical", "physiological", "generalized"]


def measure(method: str, length: int, checkpoint_every):
    stream = generate_kv_workload(
        99, KVWorkloadSpec(n_operations=length, n_keys=24, put_ratio=0.8)
    )
    make = lambda: KVDatabase(
        method=method, cache_capacity=6, checkpoint_every=checkpoint_every
    )
    result = crash_once(make, stream, length, continue_after=False)
    assert result.recovered, (method, length, result.error)
    return result.scanned, result.replayed


def test_recovery_scaling(benchmark):
    def run():
        grid = {}
        for method in METHODS:
            for length in LENGTHS:
                grid[(method, length, "none")] = measure(method, length, None)
                grid[(method, length, "ckpt")] = measure(method, length, 30)
        return grid

    grid = benchmark(run)
    rows = []
    for method in METHODS:
        for regime in ("none", "ckpt"):
            cells = [
                f"{grid[(method, n, regime)][0]}/{grid[(method, n, regime)][1]}"
                for n in LENGTHS
            ]
            rows.append([method, regime, *cells])

    # Shapes: without checkpoints, the replay work of the full-suffix
    # methods grows linearly with history; with checkpoints it is bounded
    # (last partial interval only).
    for method in ("logical", "physical"):
        unchecked = [grid[(method, n, "none")][1] for n in LENGTHS]
        assert unchecked == sorted(unchecked) and unchecked[-1] > unchecked[0] * 3
        checked = [grid[(method, n, "ckpt")][1] for n in LENGTHS]
        assert max(checked) <= 30
    # LSN methods: replay is bounded by what the cache held, which is
    # capped by eviction pressure — sublinear in history.
    for method in ("physiological", "generalized"):
        series = [grid[(method, n, "none")][1] for n in LENGTHS]
        assert series[-1] < LENGTHS[-1]  # strictly less than full replay

    emit(
        "E13",
        "Recovery cost vs history length (cells: scanned/replayed at crash)",
        table(
            rows,
            ["method", "checkpoints", *(f"{n} ops" for n in LENGTHS)],
        )
        + [
            "",
            "Full-suffix methods (logical, physical) replay everything since",
            "the last checkpoint: linear without one, bounded with.  LSN",
            "methods replay only what eviction had not already installed.",
        ],
    )
