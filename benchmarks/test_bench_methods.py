"""E5: the §6 recovery methods compared head-to-head.

One workload, three engines.  Reported per method: log volume, page
writes, recovery scan/replay work, and crash-sweep success.  Expected
shapes (the paper argues these qualitatively):

- every method recovers from every crash point — zero failures;
- physical logging's byte volume grows with page size (whole-page delete
  images); logical and physiological records are page-size independent;
- logical and physical install at checkpoints (heavy normal-operation
  page writes, light replay); no-force physiological writes the fewest
  pages and instead leans on the page-LSN redo test to skip exactly the
  installed records during its longer replay;
- more frequent checkpoints shrink recovery work for every method, at
  the cost of more normal-operation page writes.
"""

from repro.engine import KVDatabase
from repro.sim import crash_once, crash_sweep
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

from benchmarks.conftest import emit, table

METHODS = ["logical", "physical", "physiological"]
STREAM = generate_kv_workload(
    42, KVWorkloadSpec(n_operations=120, n_keys=24, put_ratio=0.8, delete_ratio=0.1)
)


def run_method(method: str, checkpoint_every=30, n_pages=8):
    db = KVDatabase(
        method=method,
        cache_capacity=6,
        n_pages=n_pages,
        checkpoint_every=checkpoint_every,
    )
    db.run(STREAM)
    db.crash_and_recover()
    db.verify_against()
    return db


def test_method_comparison(benchmark):
    def run():
        return {method: run_method(method) for method in METHODS}

    dbs = benchmark(run)
    rows = []
    for method in METHODS:
        report = dbs[method].report()
        rows.append(
            [
                method,
                report["log_bytes"],
                report["log_records"],
                report["disk_page_writes"],
                report["method_records_scanned"],
                report["method_records_replayed"],
                report["method_records_skipped"],
            ]
        )
    by = {row[0]: row for row in rows}
    # Shapes the paper argues qualitatively:
    # - logical and physical must install at checkpoints (staging the
    #   whole cache / flushing all dirty pages), so they write more pages
    #   during normal operation than no-force physiological;
    assert by["physiological"][3] < by["logical"][3]
    assert by["physiological"][3] < by["physical"][3]
    # - in exchange they replay only the post-checkpoint suffix, while
    #   physiological replays whatever never got flushed — but skips every
    #   installed record via the page-LSN test, with no flush obligations.
    assert by["logical"][5] <= by["physiological"][5]
    assert by["physical"][5] <= by["physiological"][5]
    assert by["physiological"][6] > 0  # the LSN test really does bypass work
    emit(
        "E5",
        "Recovery methods on one workload (120 ops, checkpoint every 30)",
        table(
            rows,
            [
                "method",
                "log bytes",
                "log records",
                "page writes",
                "scanned",
                "replayed",
                "skipped",
            ],
        ),
    )


def test_physical_log_grows_with_page_size(benchmark):
    """Physical logging's cost scales with the byte ranges it must image:
    whole-page delete images grow as pages get bigger, while page-logical
    (physiological) and database-logical records do not change at all."""

    page_counts = [8, 4, 2]  # fewer pages = bigger pages

    def run():
        from repro.logmgr import CheckpointRecord

        grid = {}
        for n_pages in page_counts:
            for method in METHODS:
                db = KVDatabase(
                    method=method, cache_capacity=6, n_pages=n_pages,
                    checkpoint_every=30,
                )
                db.run(STREAM)
                # Redo-record bytes only: checkpoint records carry
                # dirty-page tables whose size trivially tracks the page
                # count and would muddy the comparison.
                grid[(method, n_pages)] = sum(
                    entry.size_bytes()
                    for entry in db.method.machine.log.entries()
                    if not isinstance(entry.payload, CheckpointRecord)
                )
        return grid

    grid = benchmark(run)
    physical_series = [grid[("physical", n)] for n in page_counts]
    assert physical_series == sorted(physical_series)  # grows as pages grow
    for method in ("logical", "physiological"):
        series = [grid[(method, n)] for n in page_counts]
        assert len(set(series)) == 1  # unaffected by page size
    rows = [
        [method, *(grid[(method, n)] for n in page_counts)]
        for method in METHODS
    ]
    emit(
        "E5d",
        "Log bytes vs page size (same 120-op workload)",
        table(rows, ["method", "8 pages", "4 pages", "2 pages (biggest)"])
        + [
            "",
            "Physical logging pays for page size (whole-page delete images);",
            "logical and physiological records are size-independent.",
        ],
    )


def test_crash_sweep_all_methods(benchmark):
    def run():
        outcomes = {}
        for method in METHODS + ["generalized"]:
            make = lambda m=method: KVDatabase(
                method=m, cache_capacity=5, checkpoint_every=25
            )
            results = crash_sweep(
                make, STREAM, crash_points=range(0, len(STREAM) + 1, 6)
            )
            outcomes[method] = results
        return outcomes

    outcomes = benchmark(run)
    rows = []
    for method, results in outcomes.items():
        failures = [r for r in results if not r.recovered]
        rows.append(
            [
                method,
                len(results),
                len(failures),
                sum(r.replayed for r in results),
                sum(r.scanned for r in results),
            ]
        )
        assert not failures, (method, failures[0].error if failures else None)
    emit(
        "E5b",
        "Crash-anywhere sweep (every 6th instant, recover + continue + verify)",
        table(rows, ["method", "crash points", "failures", "total replayed", "total scanned"]),
    )


def test_checkpoint_frequency_tradeoff(benchmark):
    """Sweep checkpoint cadence for each method; recovery work should
    fall as checkpoints become more frequent, while normal-operation page
    writes rise (for the flushing methods)."""

    cadences = [None, 60, 30, 15, 8]

    variants = [
        ("logical", None),
        ("physical", None),
        ("physiological", None),
        ("physiological-sharp", {"sharp_checkpoints": True}),
    ]

    def run():
        grid = {}
        for label, options in variants:
            method = label.split("-")[0]
            for cadence in cadences:
                make = lambda m=method, c=cadence, o=options: KVDatabase(
                    method=m, cache_capacity=6, checkpoint_every=c,
                    method_options=o,
                )
                result = crash_once(make, STREAM, len(STREAM), continue_after=False)
                assert result.recovered, (label, cadence, result.error)
                db = make()
                db.run(STREAM)
                grid[(label, cadence)] = (
                    result.replayed,
                    db.report()["disk_page_writes"],
                )
        return grid

    grid = benchmark(run)
    rows = []
    for label, _ in variants:
        replayed_series = [grid[(label, c)][0] for c in cadences]
        writes_series = [grid[(label, c)][1] for c in cadences]
        rows.append(
            [
                label,
                *(f"{r}/{w}" for r, w in zip(replayed_series, writes_series)),
            ]
        )
        # Shape: most-frequent checkpointing never replays more than none.
        assert replayed_series[-1] <= replayed_series[0]
    # Sharp physiological checkpoints buy the replay reduction the fuzzy
    # variant forgoes.
    assert (
        grid[("physiological-sharp", 8)][0] < grid[("physiological", 8)][0]
    )
    emit(
        "E5c",
        "Checkpoint cadence vs recovery work (cells: replayed/page-writes)",
        table(
            rows,
            ["method", "ckpt none", "every 60", "every 30", "every 15", "every 8"],
        )
        + [
            "",
            "Left to right: for the installing methods (logical, physical)",
            "recovery replay work falls while normal-operation page writes",
            "rise — the checkpoint trade made quantitative.  Physiological's",
            "fuzzy checkpoints flush nothing, so its row is flat: its replay",
            "work is governed by eviction-driven flushes, not checkpoints.",
        ],
    )
