"""F4–F5: the O,P,Q running example's graphs, regenerated.

F4 rebuilds the conflict state graph of Figure 4 with its per-prefix
value boxes; F5 rebuilds the installation graph of Figure 5, showing the
dropped write-read edge and the extra recoverable state it unlocks.
"""

from repro.core.conflict import ConflictGraph
from repro.core.expr import Var, assign
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.replay import is_potentially_recoverable
from repro.core.state_graph import StateGraph

from benchmarks.conftest import emit, table


def opq_ops():
    return [
        assign("O", "x", Var("x") + 1),
        assign("P", "y", Var("x") + 1),
        assign("Q", "x", Var("x") + 2),
    ]


def test_figure4(benchmark):
    def build():
        ops = opq_ops()
        conflict = ConflictGraph(ops)
        graph = StateGraph.conflict_state_graph(conflict, State())
        return conflict, graph

    conflict, graph = benchmark(build)
    edge_rows = [
        [f"{a.name} -> {b.name}", ",".join(sorted(labels))]
        for a, b, labels in conflict.edges()
    ]
    initial = State()
    prefix_rows = []
    for prefix in [set(), {"O"}, {"O", "P"}, {"O", "P", "Q"}]:
        determined = graph.determined_state(initial, within=prefix)
        prefix_rows.append(
            ["{" + ",".join(sorted(prefix)) + "}", determined["x"], determined["y"]]
        )
    assert graph.writes("O") == {"x": 1}
    assert graph.writes("P") == {"y": 2}
    assert graph.writes("Q") == {"x": 3}
    assert prefix_rows[-1][1:] == [3, 2]
    emit(
        "F4",
        "Conflict state graph for O, P, Q",
        table(edge_rows, ["conflict edge", "labels"])
        + [""]
        + table(prefix_rows, ["conflict prefix", "x", "y"])
        + ["", "Node writes: O:{x=1}  P:{y=2}  Q:{x=3} (Figure 4's boxes)."],
    )


def test_figure5(benchmark):
    def build():
        conflict = ConflictGraph(opq_ops())
        installation = InstallationGraph(conflict)
        rows = []
        for prefix in installation.prefixes():
            names = "{" + ",".join(sorted(op.name for op in prefix)) + "}"
            state = installation.determined_state(prefix, State())
            conflict_prefix = conflict.is_prefix(prefix)
            rows.append(
                [
                    names,
                    state["x"],
                    state["y"],
                    "yes" if conflict_prefix else "NO (installation only)",
                    is_potentially_recoverable(conflict, state, State()),
                ]
            )
        rows.sort(key=lambda row: row[0])
        return installation, rows

    installation, rows = benchmark(build)
    removed = [(a.name, b.name) for a, b in installation.removed_edges()]
    assert removed == [("O", "P")]
    assert all(row[4] for row in rows)
    extra = [row for row in rows if row[3].startswith("NO")]
    assert [row[0] for row in extra] == ["{P}"]
    emit(
        "F5",
        "Installation graph drops the write-read edge O -> P",
        [f"removed edges: {removed}", ""]
        + table(
            rows,
            ["installation prefix", "x", "y", "also conflict prefix?", "recoverable"],
        )
        + [
            "",
            "The dashed-line state {P} (x=0, y=2) is recoverable but invisible",
            "to conflict-graph reasoning — the heart of the paper's Figure 5.",
        ],
    )
