"""E16: flush elision and graph-driven install scheduling.

The buffer pool's flush decisions all route through one live §5 write
graph (the :class:`~repro.cache.scheduler.InstallScheduler`): victim
selection prefers clean frames and minimal uninstalled nodes, and a
dirty page whose cells already equal its disk image installs with *no*
IO at all (the scheduler's remove-write).  This experiment measures what
that buys on a mixed KV workload with a mutation hotspot and cold read
traffic — the regime where recency-only eviction keeps flushing hot
dirty pages while clean frames sit unused — against the
``install_policy="legacy"`` ablation, which keeps the historical
recency-only victim choice and never elides.

Equal recoverability is asserted, not assumed: both policies must
crash-recover to the durable-prefix oracle on the same stream, and the
graph-driven run is additionally audited against Corollary 5 (including
the scheduler cross-check) during normal operation with zero tolerated
violations.

Acceptance: the graph-driven pool performs >= 20% fewer page flushes
than the legacy pool for the physiological and generalized methods
(>= 10% for physical, whose whole-page images give eviction less
slack); logical never flushes data pages, so it is reported only.

Results are emitted as E16.txt and machine-readably as
``BENCH_write_graph.json`` under ``benchmarks/results/``.  Set
``E16_OPS`` to shrink the stream (CI smoke uses the default).
"""

from __future__ import annotations

import json
import os

from repro.engine import KVDatabase
from repro.sim.audit import AuditTracker
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

from benchmarks.conftest import RESULTS_DIR, emit, table

SEED = 16
N_OPS = int(os.environ.get("E16_OPS", 1_500))
CACHE_CAPACITY = 8
N_PAGES = 32
AUDIT_EVERY = 25
SAVINGS_FLOOR = {"physiological": 0.20, "generalized": 0.20, "physical": 0.10}
METHODS = ("logical", "physical", "physiological", "generalized")


def spec_for(method: str) -> KVWorkloadSpec:
    """A mixed, read-heavy stream with a mutation hotspot.

    The audits lift every logged record to an abstract operation, which
    constrains the mix per method: physical logs whole-page images for
    deletes (unliftable granularity) and neither physical nor
    physiological can express cross-page copyadd — so those methods get
    a put/add mix, while logical and generalized keep copyadd in.
    """
    base = dict(
        n_operations=N_OPS,
        n_keys=200,
        delete_ratio=0.0,
        hot_fraction=0.7,
        hot_keys=6,
        value_range=8,
    )
    if method in ("physical", "physiological"):
        return KVWorkloadSpec(put_ratio=0.3, add_ratio=0.15, **base)
    return KVWorkloadSpec(put_ratio=0.25, add_ratio=0.1, copyadd_ratio=0.1, **base)


def make_db(method: str, policy: str) -> KVDatabase:
    return KVDatabase(
        method=method,
        cache_capacity=CACHE_CAPACITY,
        n_pages=N_PAGES,
        commit_every=3,
        checkpoint_every=40,
        install_policy=policy,
    )


def run_policy(method: str, policy: str, stream) -> dict:
    """Run the stream, snapshot the *pre-crash* pool counters (recovery
    reboots the pool, resetting them), then crash, recover, and verify
    against the durable-prefix oracle."""
    db = make_db(method, policy)
    audits = audit_failures = 0
    if policy == "graph":
        # Equal recoverability, half one: Corollary 5 (plus the
        # scheduler cross-check) must hold continuously under the
        # policy being credited with the savings.
        tracker = AuditTracker(db.method)
        for index, command in enumerate(stream, start=1):
            db.execute(command)
            if index % AUDIT_EVERY == 0:
                audits += 1
                if not tracker.audit(instant=index):
                    audit_failures += 1
    else:
        db.run(stream)
    pool = db.method.machine.pool
    counters = {
        "page_flushes": pool.flushes,
        "evictions": pool.evictions,
        **{f"scheduler_{k}": v for k, v in pool.scheduler.stats.as_dict().items()},
        "audits": audits,
        "audit_failures": audit_failures,
    }
    # Equal recoverability, half two: the crash contract is unchanged.
    db.crash_and_recover()
    counters["durable_ops"] = db.verify_against()
    return counters


def test_e16_flush_elision():
    results: dict[str, dict] = {}
    rows = []
    for method in METHODS:
        stream = generate_kv_workload(SEED, spec_for(method))
        graph = run_policy(method, "graph", stream)
        legacy = run_policy(method, "legacy", stream)
        saved = legacy["page_flushes"] - graph["page_flushes"]
        savings = saved / legacy["page_flushes"] if legacy["page_flushes"] else 0.0
        results[method] = {
            "graph": graph,
            "legacy": legacy,
            "flushes_saved": saved,
            "savings_ratio": savings,
        }
        rows.append(
            [
                method,
                graph["page_flushes"],
                legacy["page_flushes"],
                f"{savings:.1%}",
                graph["scheduler_elisions"],
                f"{graph['audits']}/{graph['audit_failures']}",
            ]
        )

        assert graph["audit_failures"] == 0, (
            f"{method}: {graph['audit_failures']} audit failures under the "
            f"graph policy — the savings are not at equal recoverability"
        )
        assert graph["durable_ops"] == legacy["durable_ops"], (
            f"{method}: policies diverge on the durable prefix"
        )
        floor = SAVINGS_FLOOR.get(method)
        if floor is not None:
            assert savings >= floor, (
                f"{method}: graph policy saved only {savings:.1%} of "
                f"{legacy['page_flushes']} flushes, needed {floor:.0%}"
            )

    lines = table(
        rows,
        headers=["method", "graph", "legacy", "saved", "elisions", "audits/fail"],
    )
    lines.append("")
    lines.append(
        f"page flushes over {N_OPS} mixed KV commands (seed {SEED}, "
        f"cache {CACHE_CAPACITY}/{N_PAGES} pages): graph-driven install "
        f"scheduling vs recency-only legacy pool"
    )
    emit("E16", "flush elision via the install scheduler", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "experiment": "E16",
        "seed": SEED,
        "n_operations": N_OPS,
        "cache_capacity": CACHE_CAPACITY,
        "n_pages": N_PAGES,
        "audit_every": AUDIT_EVERY,
        "methods": results,
    }
    (RESULTS_DIR / "BENCH_write_graph.json").write_text(
        json.dumps(payload, indent=1)
    )
