"""E11: the §7 frontier — recovery beyond explainability.

Explainability is the theory's *sufficient* condition; §7 notes that
replays of non-applicable operations can still succeed when the wrong
values they write land in the unexposed portion of the state.  This
experiment measures, over random small instances, how many crash states
are (a) explainable (all recover — Theorem 3), and (b) recoverable but
NOT explainable (the frontier), and checks that every frontier state
involves a non-applicable replay or a value coincidence — i.e. the
theory misses states only for the reason §7 says it does.
"""

import itertools

from repro.core.conflict import ConflictGraph
from repro.core.explain import is_applicable, is_explainable
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.replay import is_potentially_recoverable, recovers
from repro.core.state_graph import StateGraph
from repro.workloads.opgen import OpSequenceSpec, random_operations

from benchmarks.conftest import emit, table


def candidate_states(conflict, initial):
    sg = StateGraph.conflict_state_graph(conflict, initial)
    values = {"v0": {0}, "v1": {0}}
    for op in conflict.operations:
        for variable, value in sg.writes(op.name).items():
            values[variable].add(value)
    for v0, v1 in itertools.product(
        sorted(values["v0"], key=repr), sorted(values["v1"], key=repr)
    ):
        yield State({"v0": v0, "v1": v1})


def classify(n_seeds=120):
    explainable = recoverable = frontier = total = 0
    frontier_with_inapplicable_replay = 0
    for seed in range(n_seeds):
        ops = random_operations(seed, OpSequenceSpec(n_operations=4, n_variables=2))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        for state in candidate_states(conflict, initial):
            total += 1
            exp = is_explainable(installation, state, initial)
            rec = is_potentially_recoverable(conflict, state, initial)
            assert not (exp and not rec), "Theorem 3 violated"
            if exp:
                explainable += 1
            if rec:
                recoverable += 1
            if rec and not exp:
                frontier += 1
                # Find a successful replay subset and ask whether some
                # replayed operation was not applicable when replayed.
                if _has_inapplicable_successful_replay(
                    conflict, installation, state, initial
                ):
                    frontier_with_inapplicable_replay += 1
    return (
        total,
        explainable,
        recoverable,
        frontier,
        frontier_with_inapplicable_replay,
    )


def _has_inapplicable_successful_replay(conflict, installation, state, initial):
    operations = list(conflict.operations)
    for size in range(len(operations) + 1):
        for subset in itertools.combinations(operations, size):
            if not recovers(conflict, subset, state, initial):
                continue
            # Walk the replay, checking applicability at each step.
            current = state.copy()
            for op in conflict.linear_extension(subset):
                if not is_applicable(installation, op, current, initial):
                    return True
                current = op.apply(current)
            # This successful replay was fully applicable; value
            # coincidence explains it — keep looking for another subset.
    return False


def test_frontier(benchmark):
    total, explainable, recoverable, frontier, inapplicable = benchmark(classify)
    assert explainable <= recoverable
    assert frontier > 0
    emit(
        "E11",
        "§7 frontier: recoverable states beyond the explainable ones",
        table(
            [
                [
                    total,
                    explainable,
                    recoverable,
                    frontier,
                    f"{100 * frontier / total:.1f}%",
                    inapplicable,
                ]
            ],
            [
                "crash states",
                "explainable",
                "recoverable",
                "frontier (rec, not exp)",
                "frontier share",
                "w/ inapplicable replay",
            ],
        )
        + [
            "",
            "Every explainable state recovers (Theorem 3, re-confirmed).",
            "A small share of states recover anyway — §7's observation —",
            "via replays that are not applicable (wrong reads whose wrong",
            "writes land unexposed) or outright value coincidences.",
        ],
    )
