"""E1–E4, E8: randomized certification of the paper's theorems.

- E1 (Theorem 3): every explainable state replays to the final state.
- E2 (Corollary 4): invariant-maintaining recoveries succeed; deliberate
  invariant violations are caught by the checker and recovery fails.
- E3 (§1.3): naive ww-edge removal over-admits prefixes (the reason the
  VLDB'95 construction was elaborate); explainability under the simple
  wr-removal graph coincides with brute-force recoverability on these
  states in the sound direction.
- E4 (Corollary 5): random legal write-graph evolutions keep the stable
  state explainable.
- E8 (§2.3): exposure monotonicity — growing the conflict graph never
  re-exposes an unexposed variable; growing the installed set can flip
  either way.
"""

from random import Random

from repro.core.conflict import ConflictGraph
from repro.core.exposed import all_variables, exposed_variables, is_unexposed
from repro.core.explain import is_explainable
from repro.core.installation import InstallationGraph, vldb95_dag
from repro.core.invariant import check_recovery_invariant
from repro.core.model import State
from repro.core.recovery import Log
from repro.core.replay import certify_theorem3, is_potentially_recoverable
from repro.core.write_graph import WriteGraph, WriteGraphError
from repro.graphs import all_prefixes, count_prefixes
from repro.workloads.opgen import OpSequenceSpec, random_operations

from benchmarks.conftest import emit, table

SPEC = OpSequenceSpec(n_operations=6, n_variables=3)


def test_theorem3(benchmark):
    def run(n_seeds=30):
        certified = cases = 0
        for seed in range(n_seeds):
            ops = random_operations(seed, SPEC)
            installation = InstallationGraph(ConflictGraph(ops))
            initial = State()
            for prefix_names in all_prefixes(installation.dag):
                prefix = {installation.operation(n) for n in prefix_names}
                state = installation.determined_state(prefix, initial)
                cases += 1
                if certify_theorem3(installation, prefix, state, initial):
                    certified += 1
        return cases, certified

    cases, certified = benchmark(run)
    assert certified == cases
    emit(
        "E1",
        "Theorem 3 — explainable states are potentially recoverable",
        table(
            [[30, cases, certified, cases - certified]],
            ["seeds", "explainable states", "recovered", "failed"],
        ),
    )


def test_corollary4(benchmark):
    def run(n_seeds=25):
        good = good_ok = 0
        bad_detected = bad_failures = bad_cases = 0
        for seed in range(n_seeds):
            ops = random_operations(seed, SPEC)
            conflict = ConflictGraph(ops)
            installation = InstallationGraph(conflict)
            initial = State()
            log = Log.from_operations(ops)
            for prefix_names in all_prefixes(installation.dag):
                prefix = {conflict.operation(n) for n in prefix_names}
                state = installation.determined_state(prefix, initial)
                report = check_recovery_invariant(
                    installation, state, log, initial,
                    checkpoint=prefix, verify_outcome=True,
                )
                good += 1
                if report.holds and report.recovered_correctly:
                    good_ok += 1
            # Violation: checkpoint the final op alone with a stale state.
            report = check_recovery_invariant(
                installation, initial, log, initial,
                checkpoint={ops[-1]}, verify_outcome=True,
            )
            bad_cases += 1
            if not report.recovered_correctly:
                bad_failures += 1
                if not report.holds:
                    bad_detected += 1
        return good, good_ok, bad_cases, bad_failures, bad_detected

    good, good_ok, bad_cases, bad_failures, bad_detected = benchmark(run)
    assert good_ok == good
    assert bad_detected == bad_failures  # checker flags every actual failure
    emit(
        "E2",
        "Corollary 4 — the recovery invariant is exactly the contract",
        table(
            [
                ["invariant maintained", good, good_ok, "-"],
                ["invariant violated", bad_cases, bad_cases - bad_failures, bad_detected],
            ],
            ["regime", "cases", "recovered", "violations flagged"],
        )
        + [
            "",
            f"All {good} invariant-maintaining recoveries reached the final state;",
            f"of {bad_cases} deliberate violations, {bad_failures} failed recovery and the",
            "checker flagged every one of them before the fact.",
        ],
    )


def test_equivalence(benchmark):
    def run(n_seeds=40):
        extra_prefixes = 0
        unsound_states = 0
        sound_direction_ok = True
        for seed in range(n_seeds):
            ops = random_operations(seed, OpSequenceSpec(n_operations=5, n_variables=3))
            conflict = ConflictGraph(ops)
            installation = InstallationGraph(conflict)
            naive = vldb95_dag(conflict)
            extra = count_prefixes(naive) - count_prefixes(installation.dag)
            extra_prefixes += extra
            initial = State()
            sg = installation.state_graph(initial)
            for prefix_names in all_prefixes(naive):
                state = initial.copy()
                assignments = {}
                for name in prefix_names:
                    for variable, value in sg.writes(name).items():
                        current = assignments.get(variable)
                        if current is None or conflict.dag.has_path(current[0], name):
                            assignments[variable] = (name, value)
                for variable, (_, value) in assignments.items():
                    state.set(variable, value)
                explainable = is_explainable(installation, state, initial)
                recoverable = is_potentially_recoverable(conflict, state, initial)
                if explainable and not recoverable:
                    sound_direction_ok = False
                if not recoverable:
                    unsound_states += 1
        return extra_prefixes, unsound_states, sound_direction_ok

    extra, unsound, sound_ok = benchmark(run)
    assert sound_ok
    assert unsound > 0  # the naive relaxation really does over-admit
    emit(
        "E3",
        "Why ww-edge removal needed an 'elaborate construction' (§1.3)",
        table(
            [[40, extra, unsound]],
            ["seeds", "extra naive-ww prefixes", "of which unrecoverable states"],
        )
        + [
            "",
            "The naive ww-relaxation admits prefixes whose determined states",
            "cannot be recovered by any replay subset; the simple wr-removal",
            "definition admits none (its explainable states all recover).",
        ],
    )


def test_corollary5(benchmark):
    def run(n_seeds=20, steps=12):
        audits = failures = 0
        for seed in range(n_seeds):
            ops = random_operations(seed, SPEC)
            installation = InstallationGraph(ConflictGraph(ops))
            wg = WriteGraph(installation, State())
            rng = Random(seed * 31 + 7)
            for _ in range(steps):
                try:
                    roll = rng.random()
                    if roll < 0.45:
                        candidates = wg.minimal_uninstalled_nodes()
                        if candidates:
                            wg.install(rng.choice(candidates).node_id)
                    elif roll < 0.75:
                        ids = wg.node_ids()
                        if len(ids) >= 2:
                            wg.collapse(rng.sample(ids, 2))
                    elif roll < 0.9:
                        ids = wg.node_ids()
                        if len(ids) >= 2:
                            wg.add_edge(*rng.sample(ids, 2))
                    else:
                        node = rng.choice(wg.nodes())
                        if node.writes:
                            wg.remove_write(node.node_id, rng.choice(sorted(node.writes)))
                except WriteGraphError:
                    continue
                audits += 1
                if not wg.audit():
                    failures += 1
        return audits, failures

    audits, failures = benchmark(run)
    assert failures == 0
    emit(
        "E4",
        "Corollary 5 — write-graph evolutions keep the state explainable",
        table(
            [[20, audits, failures]],
            ["seeds", "post-step audits", "explainability failures"],
        ),
    )


def test_exposure(benchmark):
    def run(n_seeds=40):
        growth_flips_to_unexposed = 0
        growth_reexposures = 0  # must stay 0
        install_flip_down = install_flip_up = 0
        for seed in range(n_seeds):
            ops = random_operations(seed, OpSequenceSpec(n_operations=7, n_variables=3))
            # Growing conflict graph, fixed I = {}.
            for cut in range(1, len(ops)):
                smaller = ConflictGraph(ops[:cut])
                larger = ConflictGraph(ops[: cut + 1])
                # Iterate over the larger graph's variables: a variable not
                # yet accessed is trivially exposed, and the appended
                # operation may hide it (first access = blind write).
                for variable in all_variables(larger):
                    before = is_unexposed(smaller, [], variable)
                    after = is_unexposed(larger, [], variable)
                    if not before and after:
                        growth_flips_to_unexposed += 1
                    if before and not after:
                        growth_reexposures += 1
            # Growing installed set, fixed graph.
            conflict = ConflictGraph(ops)
            variables = all_variables(conflict)
            previous = exposed_variables(conflict, [])
            for cut in range(1, len(ops) + 1):
                current = exposed_variables(conflict, ops[:cut])
                install_flip_down += len(previous - current)
                install_flip_up += len(current - previous)
                previous = current
        return (
            growth_flips_to_unexposed,
            growth_reexposures,
            install_flip_down,
            install_flip_up,
        )

    to_unexposed, reexposed, down, up = benchmark(run)
    assert reexposed == 0
    assert to_unexposed > 0 and down > 0 and up > 0
    emit(
        "E8",
        "Exposure monotonicity (§2.3)",
        table(
            [
                ["grow conflict graph, fixed I", to_unexposed, reexposed],
                ["grow installed set, fixed graph", down, up],
            ],
            ["regime", "exposed -> unexposed flips", "unexposed -> exposed flips"],
        )
        + [
            "",
            "Growing the graph only ever hides variables (0 re-exposures);",
            "growing the installed set flips exposure in both directions.",
        ],
    )
