"""F7–F8: write graphs — Figure 7's collapse and Figure 8's B-tree split.

F7 regenerates the write graph in which all writers of x collapse into
one node, forcing the cache to write y's page before x's.  F8 builds the
Figure 8 write graph for the generalized B-tree split — operation P reads
old page x and writes new page y, operation Q overwrites x — and shows
the edge that forces the careful write order, then demonstrates on the
real B-tree that honoring/violating the order preserves/destroys data.
"""

from repro.core.conflict import ConflictGraph
from repro.core.expr import Var, assign
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State
from repro.core.write_graph import WriteGraph, WriteGraphError

from benchmarks.conftest import emit, table


def test_figure7(benchmark):
    def build():
        ops = [
            assign("O", "x", Var("x") + 1),
            assign("P", "y", Var("x") + 1),
            assign("Q", "x", Var("x") + 2),
        ]
        wg = WriteGraph(InstallationGraph(ConflictGraph(ops)), State())
        wg.collapse(["O", "Q"], new_id="{O,Q}")
        return wg

    wg = benchmark(build)
    edges = sorted((s, t) for s, t, _ in wg.dag.edges())
    assert ("P", "{O,Q}") in edges
    installable = sorted(n.node_id for n in wg.minimal_uninstalled_nodes())
    assert installable == ["P"]
    # Install in the forced order and audit each step.
    wg.install("P")
    assert wg.audit()
    wg.install("{O,Q}")
    assert wg.audit()
    emit(
        "F7",
        "Write graph after collapsing the writers of x (O and Q)",
        table(
            [[f"{s} -> {t}"] for s, t in edges],
            ["write graph edge"],
        )
        + [
            "",
            f"installable first: {installable} — the cache manager must write",
            "y into the state before x, exactly Figure 7's conclusion.  The",
            "state {O} (x=1, y=0) becomes inaccessible (but stays recoverable).",
        ],
    )


def test_figure8_write_graph(benchmark):
    """The abstract Figure 8: P reads x writes y (the split record),
    Q writes x (the truncation).  Collapsing the stable node with Q must
    wait for P; adding the edge P -> {x-page} is the careful write."""

    def build():
        # x is the old page's contents, y the new page's.  P moves half of
        # x into y (reads x, writes y); Q truncates x (reads x, writes x).
        P = Operation.from_assignments("P", {"y": Var("x") * 1})
        Q = Operation.from_assignments("Q", {"x": Var("x") * 0 + 7})
        ops = [P, Q]
        conflict = ConflictGraph(ops)
        wg = WriteGraph(InstallationGraph(conflict), State({"x": 10}))
        return wg

    wg = benchmark(build)
    # The rw conflict P -> Q survives into the write graph: the new page
    # (P's node) must be installed before the old page is overwritten.
    assert wg.dag.has_edge("P", "Q")
    order_violation = None
    try:
        wg.install("Q")
    except WriteGraphError as exc:
        order_violation = str(exc)
    assert order_violation is not None
    wg.install("P")
    assert wg.audit()
    wg.install("Q")
    assert wg.audit()
    emit(
        "F8",
        "Write graph for the generalized B-tree split",
        [
            "operations: P reads old-page writes new-page; Q overwrites old-page",
            f"write graph edges: {sorted((s, t) for s, t, _ in wg.dag.edges())}",
            f"installing Q first is rejected: {order_violation}",
            "installing P then Q audits clean at every step.",
            "",
            "This edge is the 'careful write order' the cache must enforce;",
            "see E6 for the same fact demonstrated on the real B-tree.",
        ],
    )


def test_figure8_on_the_real_btree(benchmark):
    """Honor vs violate the careful write order on the actual B-tree."""
    from repro.btree import BTree
    from repro.methods.base import Machine

    def run(unsafe: bool):
        tree = BTree(
            Machine(cache_capacity=64),
            fanout=4,
            split_discipline="generalized",
            unsafe_split_flush=unsafe,
        )
        pairs = [(k, f"v{k}".encode()) for k in range(12)]
        for key, payload in pairs:
            tree.insert(key, payload)
            tree.commit()
        tree.crash()
        tree.recover()
        lost = len(dict(pairs)) - len(tree.items())
        return tree.splits, lost

    safe_splits, safe_lost = benchmark(run, False)
    unsafe_splits, unsafe_lost = run(True)
    assert safe_lost == 0
    assert unsafe_lost > 0
    emit(
        "F8b",
        "Careful write ordering on the real B-tree (12 sequential inserts)",
        table(
            [
                ["honored", safe_splits, safe_lost],
                ["VIOLATED", unsafe_splits, unsafe_lost],
            ],
            ["write order", "splits", "keys lost after crash"],
        )
        + [
            "",
            "Violating the Figure 8 edge (flushing the truncated old page",
            "before the new page) silently destroys the moved half.",
        ],
    )
