"""E15: scaling the incremental theory core.

The theory core maintains its graphs incrementally: appending one
operation to a live :class:`ConflictGraph` is O(degree) amortized, the
:class:`InstallationGraph` rides the append feed, and exposure checks
are answered from the :class:`VariableIndex` with an
:class:`ExposureMemo` on top.  This experiment measures the loop a live
audit actually runs — *append one operation, then check exposure of the
variables it touched* — at 1k/10k/100k operations, against the
from-scratch discipline (rebuild the graph at every step, answer
exposure uncached) that the incremental machinery replaces.

The rebuild baseline is quadratic, so at the larger sizes it is sampled:
every ``stride``-th step is rebuilt and timed in full and the total is
estimated as ``stride * sum(sampled step times)`` (steps are sampled
uniformly across the run, so the estimate is unbiased).  The incremental
loop is always measured in full.

Also measured: steady-state exposure-check latency (memoized vs
uncached) on the full graph, and a micro-benchmark asserting that
:meth:`Dag.add_edge`'s fast path stays O(1) amortized as the graph
grows (per-edge insert time at the largest size must stay within a
generous constant of the smallest).

Results are emitted as E15.txt and machine-readably as
``BENCH_theory_scaling.json`` under ``benchmarks/results/``.  Set
``E15_MAX_SIZE=1000`` (the CI smoke tier) to skip the larger sizes.
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.core.conflict import ConflictGraph
from repro.core.exposed import ExposureMemo, is_exposed
from repro.core.installation import InstallationGraph
from repro.graphs import Dag
from repro.workloads.opgen import OpSequenceSpec, random_operations

from benchmarks.conftest import RESULTS_DIR, emit, table

SIZES = (1_000, 10_000, 100_000)
SEED = 2003  # SIGMOD 2003
LAG = 8  # operations kept uninstalled behind the append frontier
STRIDES = {1_000: 1, 10_000: 20, 100_000: 2_500}
SPEEDUP_FLOOR = 10.0  # acceptance: >= 10x at the 10k tier
EDGE_INSERT_SLACK = 8.0  # amortized-O(1) assertion tolerance


def spec_for(size: int) -> OpSequenceSpec:
    """Variables scale with the log so per-variable accessor lists stay
    bounded — the regime the VariableIndex is designed for."""
    return OpSequenceSpec(n_operations=size, n_variables=max(8, size // 64))


def bench_incremental(ops) -> tuple[float, float]:
    """The live-audit loop: append, install the LAG-delayed operation,
    check exposure of the touched variables.  Returns (wall seconds,
    appends per second)."""
    conflict = ConflictGraph()
    InstallationGraph(conflict)  # rides the append feed, like the audits
    memo = ExposureMemo(conflict)
    start = time.perf_counter()
    for index, op in enumerate(ops):
        conflict.append(op)
        if index >= LAG:
            memo.install(ops[index - LAG])
        for variable in op.variables():
            memo.is_exposed(variable)
    wall = time.perf_counter() - start
    return wall, len(ops) / wall


def bench_rebuild(ops, stride: int) -> tuple[float, int]:
    """The from-scratch discipline, sampled every ``stride`` steps.
    Returns (estimated total wall seconds, steps actually sampled)."""
    sampled = 0.0
    count = 0
    for index in range(0, len(ops), stride):
        start = time.perf_counter()
        graph = ConflictGraph(ops[: index + 1])
        InstallationGraph(graph)
        installed = set(ops[: max(0, index - LAG + 1)])
        for variable in ops[index].variables():
            is_exposed(graph, installed, variable)
        sampled += time.perf_counter() - start
        count += 1
    return sampled * stride, count


def bench_exposure_latency(ops) -> tuple[float, float]:
    """Steady-state per-check latency (microseconds) on the full graph:
    memoized vs uncached, over every variable, repeated."""
    conflict = ConflictGraph(ops)
    installed = set(ops[: len(ops) - LAG])
    memo = ExposureMemo(conflict, installed)
    variables = list(conflict.variable_index.variables())
    rounds = max(1, 20_000 // max(1, len(variables)))

    start = time.perf_counter()
    for _ in range(rounds):
        for variable in variables:
            memo.is_exposed(variable)
    memo_us = (time.perf_counter() - start) / (rounds * len(variables)) * 1e6

    start = time.perf_counter()
    for _ in range(rounds):
        for variable in variables:
            is_exposed(conflict, installed, variable)
    uncached_us = (time.perf_counter() - start) / (rounds * len(variables)) * 1e6
    return memo_us, uncached_us


def bench_edge_insert(n_nodes: int) -> float:
    """Per-edge insert time (nanoseconds) for a bounded-degree dag built
    through the add_edge fast path.

    Cyclic GC is paused during the timed loop (as ``timeit`` does): full
    collections scan the whole heap, whose size grows with the graph, and
    that allocator artifact would swamp the O(1)-per-edge behavior under
    measurement.
    """
    dag = Dag()
    dag.add_node("n0")
    names = [f"n{i}" for i in range(n_nodes)]
    gc.disable()
    try:
        start = time.perf_counter()
        for i in range(1, n_nodes):
            node = names[i]
            dag.add_edge(names[i - 1], node, labels={"ww"}, check_acyclic=False)
            dag.add_edge(names[i // 2], node, labels={"rw"}, check_acyclic=False)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return wall / (2 * (n_nodes - 1)) * 1e9


def test_e15_incremental_scaling():
    max_size = int(os.environ.get("E15_MAX_SIZE", SIZES[-1]))
    sizes = [size for size in SIZES if size <= max_size] or [SIZES[0]]

    results: dict[str, dict] = {}
    rows = []
    for size in sizes:
        ops = random_operations(SEED, spec_for(size))
        incremental_wall, appends_per_s = bench_incremental(ops)
        stride = STRIDES[size]
        rebuild_wall, sampled_steps = bench_rebuild(ops, stride)
        speedup = rebuild_wall / incremental_wall
        memo_us, uncached_us = bench_exposure_latency(ops)
        edge_ns = bench_edge_insert(size)
        results[str(size)] = {
            "incremental_wall_s": incremental_wall,
            "append_ops_per_s": appends_per_s,
            "rebuild_wall_s_est": rebuild_wall,
            "rebuild_stride": stride,
            "rebuild_sampled_steps": sampled_steps,
            "speedup": speedup,
            "exposure_memo_us": memo_us,
            "exposure_uncached_us": uncached_us,
            "edge_insert_ns": edge_ns,
        }
        rows.append(
            [
                size,
                f"{incremental_wall:.4f}",
                f"{rebuild_wall:.3f}",
                f"{speedup:,.0f}x",
                f"{appends_per_s:,.0f}",
                f"{memo_us:.2f}",
                f"{uncached_us:.2f}",
                f"{edge_ns:.0f}",
            ]
        )

    # Satellite: add_edge must be O(1) amortized — per-edge time at the
    # largest size stays within a generous constant of the smallest.
    per_edge = [results[str(size)]["edge_insert_ns"] for size in sizes]
    assert per_edge[-1] <= per_edge[0] * EDGE_INSERT_SLACK, (
        f"edge insert degraded superlinearly: {per_edge[0]:.0f}ns at "
        f"{sizes[0]} nodes vs {per_edge[-1]:.0f}ns at {sizes[-1]}"
    )

    # Acceptance: the incremental core beats per-step rebuild by >= 10x
    # on the append-then-check loop at 10k operations.
    if 10_000 in sizes:
        assert results["10000"]["speedup"] >= SPEEDUP_FLOOR, (
            f"speedup at 10k was {results['10000']['speedup']:.1f}x, "
            f"needed {SPEEDUP_FLOOR}x"
        )
    # Every tier (including the CI 1k smoke) must still show a clear win.
    assert all(results[str(size)]["speedup"] >= 2 for size in sizes)

    lines = table(
        rows,
        headers=[
            "ops",
            "incr_s",
            "rebuild_s(est)",
            "speedup",
            "appends/s",
            "memo_us",
            "uncached_us",
            "edge_ns",
        ],
    )
    lines.append("")
    lines.append(
        "append-then-check loop: incremental graphs+memo vs per-step "
        f"rebuild (sampled, stride per size); lag={LAG}"
    )
    emit("E15", "incremental theory core scaling", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "experiment": "E15",
        "seed": SEED,
        "lag": LAG,
        "sizes": results,
    }
    (RESULTS_DIR / "BENCH_theory_scaling.json").write_text(
        json.dumps(payload, indent=1)
    )
