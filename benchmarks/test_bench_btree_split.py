"""E6: generalized vs physiological B-tree split logging (§6.4).

The §6.4 claim: logging a split as "read the old page, write the new
page" avoids physically logging the half of the node being moved, at the
price of a careful write-ordering obligation for the cache manager.

Regenerated series:

- log bytes for both disciplines as payload size grows — the generalized
  advantage should widen (the avoided image is payload-proportional) and
  the split-record bytes themselves should differ by ~the moved-half
  size;
- crash sweeps for both disciplines — zero failures;
- the write-order ablation — violating the Figure 8 edge loses data.
"""

from repro.btree import BTree
from repro.logmgr import MultiPageRedo, PhysicalRedo
from repro.methods.base import Machine
from repro.workloads.btree_load import BTreeWorkloadSpec, generate_btree_keys

from benchmarks.conftest import emit, table


def build_tree(discipline, pairs, fanout=6, cache=64, unsafe=False):
    tree = BTree(
        Machine(cache_capacity=cache),
        fanout=fanout,
        split_discipline=discipline,
        unsafe_split_flush=unsafe,
    )
    for key, payload in pairs:
        tree.insert(key, payload)
    tree.commit()
    return tree


def split_record_bytes(tree):
    """Log bytes attributable to splits: everything except the leaf
    insert records themselves (which are identical across disciplines)."""
    from repro.logmgr import PhysiologicalRedo

    total = 0
    for entry in tree.machine.log.entries():
        payload = entry.payload
        is_insert = (
            isinstance(payload, PhysiologicalRedo)
            and payload.action.kind == "put"
            and isinstance(payload.action.args[1], bytes)
        )
        if not is_insert:
            total += entry.size_bytes()
    return total


def test_split_log_volume_vs_payload(benchmark):
    payload_sizes = [8, 32, 128, 512]

    def run():
        rows = []
        for size in payload_sizes:
            pairs = generate_btree_keys(
                21, BTreeWorkloadSpec(n_keys=120, payload_bytes=size)
            )
            gen = build_tree("generalized", pairs)
            phys = build_tree("physiological", pairs)
            assert gen.splits == phys.splits
            rows.append(
                [
                    size,
                    gen.splits,
                    phys.log_bytes(),
                    gen.log_bytes(),
                    f"{phys.log_bytes() / gen.log_bytes():.2f}x",
                    phys.log_bytes() - gen.log_bytes(),
                ]
            )
        return rows

    rows = benchmark(run)
    ratios = [float(row[4][:-1]) for row in rows]
    assert all(r > 1.0 for r in ratios)
    assert ratios == sorted(ratios)  # advantage widens with payload size
    assert ratios[-1] > 1.5          # substantial at large payloads
    emit(
        "E6",
        "Split logging: log bytes, physiological vs generalized (120 keys)",
        table(
            rows,
            [
                "payload B",
                "splits",
                "physiological bytes",
                "generalized bytes",
                "ratio",
                "bytes saved",
            ],
        )
        + [
            "",
            "The generalized split-move record is O(1) regardless of how much",
            "data moves; the physiological discipline images the moved half.",
        ],
    )


def test_split_record_bytes_only(benchmark):
    """Isolate the split records themselves (inserts log identically)."""

    def run():
        pairs = generate_btree_keys(33, BTreeWorkloadSpec(n_keys=150, payload_bytes=128))
        gen = build_tree("generalized", pairs)
        phys = build_tree("physiological", pairs)
        return (
            gen.splits,
            split_record_bytes(phys),
            split_record_bytes(gen),
        )

    splits, phys_bytes, gen_bytes = benchmark(run)
    # Both disciplines log identical truncation and parent-bookkeeping
    # bytes; the gap is the moved-half image, and it dominates.
    assert gen_bytes * 2 < phys_bytes
    emit(
        "E6b",
        "Bytes attributable to split records alone",
        table(
            [[splits, phys_bytes, gen_bytes, f"{phys_bytes / gen_bytes:.1f}x"]],
            ["splits", "physiological", "generalized", "ratio"],
        ),
    )


def test_crash_sweeps_both_disciplines(benchmark):
    def run():
        pairs = generate_btree_keys(
            55, BTreeWorkloadSpec(n_keys=40, pattern="sequential")
        )
        failures = {}
        for discipline in ("generalized", "physiological"):
            bad = 0
            for cut in range(0, len(pairs) + 1, 2):
                tree = BTree(
                    Machine(cache_capacity=3),
                    fanout=4,
                    split_discipline=discipline,
                )
                for key, payload in pairs[:cut]:
                    tree.insert(key, payload)
                    tree.commit()
                tree.crash()
                tree.recover()
                tree.check_invariants()
                durable = tree.durable_insert_count()
                if tree.items() != dict(pairs[:durable]):
                    bad += 1
            failures[discipline] = bad
        return failures

    failures = benchmark(run)
    assert all(count == 0 for count in failures.values())
    emit(
        "E6c",
        "Crash sweep (every 2nd insert, 3-frame cache forcing evictions)",
        table(
            [[d, c] for d, c in failures.items()],
            ["discipline", "failed crash points"],
        ),
    )


def test_careful_write_order_ablation(benchmark):
    def run():
        pairs = [(k, f"payload-{k}".encode()) for k in range(24)]
        outcomes = []
        for unsafe in (False, True):
            tree = build_tree(
                "generalized", pairs, fanout=4, cache=64, unsafe=unsafe
            )
            tree.crash()
            tree.recover()
            durable = tree.durable_insert_count()
            expected = dict(pairs[:durable])
            lost = len(expected) - len(tree.items())
            outcomes.append(
                ["violated" if unsafe else "honored", tree.splits, durable, lost]
            )
        return outcomes

    outcomes = benchmark(run)
    honored, violated = outcomes
    assert honored[3] == 0
    assert violated[3] > 0
    emit(
        "E6d",
        "Ablation: the careful write order of Figure 8 is load-bearing",
        table(
            outcomes,
            ["write order", "splits", "durable inserts", "keys lost"],
        )
        + [
            "",
            "Flushing the truncated old page before the new page, then",
            "crashing, destroys the moved half: the log's split-move record",
            "can only regenerate it from the *pre-truncation* old page.",
        ],
    )
