"""E7: how much flexibility does the installation graph buy?

The installation graph's prefixes are the legal installed sets; the
conflict graph's are what a system restricted to conflict order could
use.  This experiment counts both exactly on random operation sequences
and sweeps the write-read density knob.  Expected shape: the ratio is
always >= 1 and grows as write-read edges (reads of other operations'
outputs) become more common, because those are exactly the edges the
installation graph deletes.
"""

from repro.core.conflict import WR, ConflictGraph
from repro.core.installation import InstallationGraph
from repro.graphs import count_prefixes
from repro.workloads.opgen import OpSequenceSpec, random_operations

from benchmarks.conftest import emit, table


def sweep(read_extra_values=(0.0, 0.25, 0.5, 0.75, 1.0), seeds=25):
    rows = []
    for read_extra in read_extra_values:
        spec = OpSequenceSpec(
            n_operations=8,
            n_variables=4,
            blind_ratio=0.5,
            read_extra=read_extra,
        )
        total_conflict = total_installation = 0
        wr_only_edges = 0
        total_edges = 0
        for seed in range(seeds):
            ops = random_operations(seed + int(read_extra * 10_000), spec)
            conflict = ConflictGraph(ops)
            installation = InstallationGraph(conflict)
            total_conflict += count_prefixes(conflict.dag)
            total_installation += count_prefixes(installation.dag)
            wr_only_edges += len(installation.removed_edges())
            total_edges += conflict.dag.edge_count()
        ratio = total_installation / total_conflict
        rows.append(
            [
                f"{read_extra:.2f}",
                total_edges,
                wr_only_edges,
                total_conflict,
                total_installation,
                f"{ratio:.3f}",
            ]
        )
    return rows


def test_prefix_count_flexibility(benchmark):
    rows = benchmark(sweep)
    ratios = [float(row[-1]) for row in rows]
    assert all(ratio >= 1.0 for ratio in ratios)
    assert max(ratios) > 1.05  # the relaxation is real, not vacuous
    emit(
        "E7",
        "Installed-set flexibility: installation vs conflict prefixes",
        table(
            rows,
            [
                "read-extra",
                "edges",
                "wr-only edges",
                "conflict prefixes",
                "installation prefixes",
                "ratio",
            ],
        )
        + [
            "",
            "Ratio >= 1 always; more write-read edges (higher read-extra)",
            "means more removed edges and more legal installed sets.",
        ],
    )


def test_wr_density_drives_the_gap(benchmark):
    """Correlation check: per-sequence, the prefix-count gap is exactly
    driven by removed (wr-only) edges; sequences with none have ratio 1."""

    def run(seeds=60):
        no_removed_equal = 0
        no_removed_total = 0
        with_removed_greater = 0
        with_removed_total = 0
        for seed in range(seeds):
            ops = random_operations(seed, OpSequenceSpec(n_operations=7, n_variables=3))
            conflict = ConflictGraph(ops)
            installation = InstallationGraph(conflict)
            removed = len(installation.removed_edges())
            c = count_prefixes(conflict.dag)
            i = count_prefixes(installation.dag)
            if removed == 0:
                no_removed_total += 1
                if c == i:
                    no_removed_equal += 1
            else:
                with_removed_total += 1
                if i > c:
                    with_removed_greater += 1
        return no_removed_equal, no_removed_total, with_removed_greater, with_removed_total

    eq, eq_total, gt, gt_total = benchmark(run)
    assert eq == eq_total  # no removed edges -> identical prefix families
    emit(
        "E7b",
        "The gap comes precisely from removed write-read edges",
        table(
            [
                ["no wr-only edges", eq_total, f"{eq}/{eq_total} ratio == 1"],
                ["some wr-only edges", gt_total, f"{gt}/{gt_total} ratio > 1"],
            ],
            ["sequences", "count", "prefix-count relation"],
        ),
    )
