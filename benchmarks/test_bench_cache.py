"""E12: substrate ablation — cache policy and capacity vs recovery work.

Not a paper figure, but a design-choice ablation DESIGN.md calls out:
the §6.3 story ("the system is free to install in any order") means
cache policy is pure performance — correctness must be indifferent to
LRU vs clock, tiny vs roomy pools.  Measured here:

- hit rates of LRU and clock on hotspot workloads (LRU should win on
  skew, the gap narrowing as capacity grows);
- recovery replay work as a function of capacity (more evictions =
  more installs = less replay) — the no-force mirror of E5c;
- correctness: every (policy, capacity) cell recovers exactly.
"""

from repro.engine import KVDatabase
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

from benchmarks.conftest import emit, table

HOT = KVWorkloadSpec(
    n_operations=300, n_keys=64, put_ratio=0.6, add_ratio=0.2,
    delete_ratio=0.0, hot_fraction=0.85, hot_keys=4,
)
STREAM = generate_kv_workload(77, HOT)


def run_cell(policy: str, capacity: int):
    db = KVDatabase(
        method="physiological",
        cache_policy=policy,
        cache_capacity=capacity,
        n_pages=32,
    )
    db.run(STREAM)
    report = db.report()
    hits, misses = report["cache_hits"], report["cache_misses"]
    db.crash_and_recover()
    db.verify_against()
    return hits / (hits + misses), db.method.stats.records_replayed


def test_cache_policy_and_capacity(benchmark):
    capacities = [2, 4, 8, 16, 32]

    def run():
        grid = {}
        for policy in ("lru", "clock"):
            for capacity in capacities:
                grid[(policy, capacity)] = run_cell(policy, capacity)
        return grid

    grid = benchmark(run)
    rows = []
    for policy in ("lru", "clock"):
        rows.append(
            [policy]
            + [
                f"{grid[(policy, c)][0]:.2f}/{grid[(policy, c)][1]}"
                for c in capacities
            ]
        )
    # Shapes: hit rate rises with capacity; replay work rises with
    # capacity (fewer evictions = fewer installs); correctness everywhere
    # (verified inside run_cell).
    for policy in ("lru", "clock"):
        hit_series = [grid[(policy, c)][0] for c in capacities]
        assert hit_series == sorted(hit_series)
        replay_series = [grid[(policy, c)][1] for c in capacities]
        assert replay_series[0] <= replay_series[-1]
    emit(
        "E12",
        "Cache ablation (cells: hit-rate/records-replayed-after-crash)",
        table(rows, ["policy"] + [f"cap {c}" for c in capacities])
        + [
            "",
            "Every cell recovers exactly (verified).  Policy and capacity",
            "move performance numbers only: smaller pools steal more pages,",
            "installing more operations and shrinking replay — correctness",
            "is untouched, as §6.3's any-order installation predicts.",
        ],
    )
