"""E21: sharded deployment — aggregate commit capacity and cold-start
critical path vs shard count.

Theorem 3 is the scaling argument: the keymap partitions keys so that
no page and no log record is shared between shards, hence N engines
run with *zero* coordination — no shared WAL, mutex, or fsync queue.
Two consequences, both measured here:

- **Capacity.**  Each shard's sustained commit rate is measured in
  isolation (``drive_shard``, the same worker the process pool runs);
  because the shards share nothing, those rates sum.  The headline
  ``aggregate_capacity_commits_per_sec`` is that sum — the deployment's
  throughput on a box with >= N cores.  This box may have fewer (the
  JSON records ``cpus`` and the sequential wall-clock alongside), which
  is why the assertion is on the capacity sum, not on wall-clock: on a
  1-CPU container time-slicing N shards proves nothing either way,
  while the per-shard isolated rate is the honest per-core number.

- **Cold start.**  Recovery replays each shard's log independently, so
  the deployment's recovery time on >= N cores is the *slowest shard*,
  not the sum.  ``critical_path_s`` is max over per-shard
  child-measured replay times (pool startup and pickling excluded);
  at 4 shards each shard holds ~1/4 of the log, so the critical path
  drops ~4x vs one shard.

Both must scale >= ``E21_MIN_SCALE`` (default 2.5x) at 4 shards vs 1.
A third leg asserts warm == cold byte-identity per shard for all four
§6 methods through the sharded crash harness.

Results go to E21.txt and ``BENCH_shard.json``.  Set ``E21_SHARDS``,
``E21_OPS``, ``E21_COLD_OPS``, ``E21_CLIENTS``, ``E21_MIN_SCALE`` to
shrink the run for CI smoke.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.engine import EngineSpec
from repro.shard import Keymap, ShardedDatabase
from repro.shard.procs import drive_shard
from repro.sim.crash import sharded_cold_restart_states

from benchmarks.conftest import RESULTS_DIR, emit, table

TIERS = [int(t) for t in os.environ.get("E21_SHARDS", "1,2,4").split(",")]
# Total mutations per capacity tier — constant across tiers so the work
# is fixed and only the partitioning varies.
TOTAL_OPS = int(os.environ.get("E21_OPS", 4800))
CLIENTS_PER_SHARD = int(os.environ.get("E21_CLIENTS", 4))
COLD_OPS = int(os.environ.get("E21_COLD_OPS", 6000))
MIN_SCALE = float(os.environ.get("E21_MIN_SCALE", 2.5))
METHODS = ("physical", "logical", "physiological", "generalized")


def capacity_tier(n_shards: int) -> dict:
    """Measure each shard's isolated sustained commit rate and sum them.

    One global keyed stream is split by the deployment's own keymap —
    the shard workloads are exactly what the router would deliver — and
    each shard is then driven alone, ``CLIENTS_PER_SHARD`` concurrent
    sessions committing every op through the shard's own pipeline.
    """
    keymap = Keymap(n_shards)
    stream = [("put", f"k{i}", i) for i in range(TOTAL_OPS)]
    parts = keymap.split(stream)
    spec = EngineSpec(
        method="physiological", cache_capacity=64, commit_pipeline=True
    )
    per_shard = []
    wall_started = time.perf_counter()
    for shard, part in enumerate(parts):
        chunk = max(1, len(part) // CLIENTS_PER_SHARD)
        clients = [
            part[i : i + chunk] for i in range(0, len(part), chunk)
        ] or [[]]
        tmp = tempfile.mkdtemp(prefix=f"e21-cap-{n_shards}-{shard}-")
        try:
            result = drive_shard(
                {
                    "shard": shard,
                    "dir": tmp,
                    "spec": spec.as_dict(),
                    "clients": clients,
                    "commit_every": 1,
                }
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        result["commits_per_sec"] = (
            result["commits"] / result["elapsed_s"]
            if result["elapsed_s"]
            else 0.0
        )
        per_shard.append(result)
    wall = time.perf_counter() - wall_started
    return {
        "shards": n_shards,
        "ops": sum(r["ops"] for r in per_shard),
        "aggregate_capacity_commits_per_sec": sum(
            r["commits_per_sec"] for r in per_shard
        ),
        "min_shard_commits_per_sec": min(
            r["commits_per_sec"] for r in per_shard
        ),
        "sequential_wall_s": wall,
        "per_shard": per_shard,
    }


def cold_tier(n_shards: int) -> dict:
    """Load a deployment, then cold-start it and read the critical path.

    ``processes=0`` recovers the shards inline: on this box that is the
    faithful way to get per-shard replay times undistorted by core
    contention, and ``critical_path_s`` (the max) is the deployment's
    recovery time on >= N cores.
    """
    root = tempfile.mkdtemp(prefix=f"e21-cold-{n_shards}-")
    try:
        spec = EngineSpec(
            method="physiological",
            commit_every=64,
            checkpoint_every=None,
            fsync=False,
        )
        sdb = ShardedDatabase.create(root=root, n_shards=n_shards, spec=spec)
        sdb.run([("put", f"k{i}", i) for i in range(COLD_OPS)])
        sdb.sync()
        sdb.close()
        cold = ShardedDatabase.cold_start(root, processes=0)
        report = cold.cold_report
        replayed = sum(r["replayed"] for r in report["per_shard"])
        assert replayed == COLD_OPS, (
            f"{n_shards} shards replayed {replayed}, expected {COLD_OPS}"
        )
        cold.close()
        return {
            "shards": n_shards,
            "replayed": replayed,
            "critical_path_s": report["critical_path_s"],
            "sum_replay_s": sum(r["elapsed_s"] for r in report["per_shard"]),
            "wall_s": report["wall_s"],
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_e21_shard_scaling():
    capacity = [capacity_tier(n) for n in TIERS]
    cold = [cold_tier(n) for n in TIERS]

    # Warm == cold byte-identity per shard, every method, through the
    # sharded crash harness (Corollary 4 shard by shard).
    equivalence = {}
    for method in METHODS:
        root = tempfile.mkdtemp(prefix=f"e21-crash-{method}-")
        try:
            spec = EngineSpec(
                method=method, commit_every=3, checkpoint_every=25, fsync=False
            )
            sdb = ShardedDatabase.create(root=root, n_shards=3, spec=spec)
            sdb.run(
                [("put", f"k{i}", i) for i in range(120)]
                + [("add", f"k{i}", 7) for i in range(0, 120, 4)]
            )
            warm, cold_states = sharded_cold_restart_states(sdb, root)
            assert warm == cold_states, (
                f"{method}: sharded cold start diverged from warm"
            )
            sdb.close()
            equivalence[method] = {
                "shards": 3,
                "durable": sum(s["durable"] for s in warm),
                "identical": True,
            }
        finally:
            shutil.rmtree(root, ignore_errors=True)

    rows = [
        [
            cap["shards"],
            cap["ops"],
            f"{cap['aggregate_capacity_commits_per_sec']:.0f}",
            f"{cap['min_shard_commits_per_sec']:.0f}",
            f"{cap['sequential_wall_s']:.2f}",
            f"{cld['critical_path_s'] * 1e3:.1f}",
            f"{cld['sum_replay_s'] * 1e3:.1f}",
        ]
        for cap, cld in zip(capacity, cold)
    ]
    lines = table(
        rows,
        headers=[
            "shards",
            "ops",
            "capacity c/s",
            "min shard c/s",
            "drive wall s",
            "cold critical ms",
            "cold sum ms",
        ],
    )

    scaling = {}
    if 1 in TIERS and 4 in TIERS:
        base_cap = next(c for c in capacity if c["shards"] == 1)
        top_cap = next(c for c in capacity if c["shards"] == 4)
        base_cold = next(c for c in cold if c["shards"] == 1)
        top_cold = next(c for c in cold if c["shards"] == 4)
        cap_scale = (
            top_cap["aggregate_capacity_commits_per_sec"]
            / base_cap["aggregate_capacity_commits_per_sec"]
        )
        cold_scale = base_cold["critical_path_s"] / top_cold["critical_path_s"]
        scaling = {
            "capacity_scale_4v1": round(cap_scale, 2),
            "cold_critical_path_scale_4v1": round(cold_scale, 2),
            "min_scale": MIN_SCALE,
        }
        lines += [
            "",
            f"4 shards vs 1: capacity {cap_scale:.1f}x, cold-start "
            f"critical path {cold_scale:.1f}x (floors {MIN_SCALE}x; "
            f"capacity = sum of isolated per-shard rates, critical path = "
            f"slowest shard's replay — the >=4-core numbers, measured "
            f"honestly on a {os.cpu_count()}-CPU box)",
        ]
    lines += ["", "sharded crash equivalence (warm == cold, per shard):"]
    lines += [
        f"  {method:15s} shards=3 durable={info['durable']:<5d} "
        f"byte-identical"
        for method, info in equivalence.items()
    ]
    emit("E21", "sharded deployment: capacity and cold-start scaling", lines)
    (RESULTS_DIR / "BENCH_shard.json").write_text(
        json.dumps(
            {
                "cpus": os.cpu_count(),
                "tiers": [
                    {"shards": cap["shards"], "capacity": cap, "cold": cld}
                    for cap, cld in zip(capacity, cold)
                ],
                "scaling": scaling,
                "crash_equivalence": equivalence,
            },
            indent=1,
        )
    )
    if scaling:
        assert scaling["capacity_scale_4v1"] >= MIN_SCALE, (
            f"aggregate capacity must scale >= {MIN_SCALE}x at 4 shards; "
            f"got {scaling['capacity_scale_4v1']}x"
        )
        assert scaling["cold_critical_path_scale_4v1"] >= MIN_SCALE, (
            f"cold-start critical path must shrink >= {MIN_SCALE}x at 4 "
            f"shards; got {scaling['cold_critical_path_scale_4v1']}x"
        )
