"""E23: instant restart — time to first served request after a crash.

An eager cold start replays the whole stable suffix before the engine
answers anything, so restart latency grows linearly with the log.  The
lazy restart runs *analysis only* (checkpoint + per-page redo index,
O(segment count) with sidecars), starts serving, and replays each page
on first access while a background thread drains the backlog in recLSN
order — so the first request is answered after one page's chain, not
the whole log's.

Two legs, both measured here:

- **Time to first request.**  Load a 64-page engine with N mutations,
  crash it (the disk keeps whatever the cache happened to evict), then
  cold-start twice from identical survivor disks: once eagerly, once
  with ``lazy=True``.  The clock runs from the start of the cold start
  to the completion of one ``get`` — the instant-restart headline.
  Eager TTFR grows with N; lazy TTFR stays flat, and at the largest
  tier the ratio must clear ``E23_MIN_SPEEDUP`` (default 10x).

- **Byte identity.**  Speed means nothing if the served state is
  wrong: for all four §6 methods, a lazy cold start (reads taken
  *during* recovery, then the backlog drained) must land byte-identical
  to an eager cold start — dump, durable count, stable LSN, and every
  disk page (Corollary 4, page by page).

Results go to E23.txt and ``BENCH_restart.json``.  Set ``E23_OPS``
(comma-separated tiers), ``E23_MIN_SPEEDUP``, ``E23_PAGES`` to shrink
the run for CI smoke.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.engine import KVDatabase
from repro.sim.crash import canonical_state
from repro.storage import Disk

from benchmarks.conftest import RESULTS_DIR, emit, table

TIERS = [
    int(t) for t in os.environ.get("E23_OPS", "2000,8000,32000,64000").split(",")
]
MIN_SPEEDUP = float(os.environ.get("E23_MIN_SPEEDUP", 10.0))
N_PAGES = int(os.environ.get("E23_PAGES", 64))
METHODS = ("physical", "logical", "physiological", "generalized")
REPEATS = 3  # best-of, to keep scheduler noise out of the ratio


def survivor(db) -> Disk:
    disk = Disk()
    for page in db.method.machine.disk.snapshot().values():
        disk.write_page(page.copy())
    return disk


def load_and_crash(root, n_ops: int):
    """A 64-page engine crashed after ``n_ops`` stable mutations."""
    db = KVDatabase(
        method="physiological",
        n_pages=N_PAGES,
        cache_capacity=16,
        commit_every=256,
        checkpoint_every=None,  # no cutoff: the whole log is the suffix
        log_dir=root,
        log_segment_size=512,
        fsync=False,
    )
    db.run([("put", f"k{i}", i) for i in range(n_ops)])
    db.commit()
    db.crash()
    return db


def time_to_first_request(root, disk: Disk, lazy: bool) -> float:
    """Seconds from cold-start begin until one get is answered."""
    started = time.perf_counter()
    db = KVDatabase.cold_start(
        root,
        disk=disk,
        method="physiological",
        n_pages=N_PAGES,
        cache_capacity=16,
        commit_every=256,
        checkpoint_every=None,
        log_segment_size=512,
        fsync=False,
        lazy=lazy,
    )
    db.get("k0")
    elapsed = time.perf_counter() - started
    db.close()
    return elapsed


def restart_tier(n_ops: int) -> dict:
    root = tempfile.mkdtemp(prefix=f"e23-{n_ops}-")
    try:
        crashed = load_and_crash(root, n_ops)
        eager_s = min(
            time_to_first_request(root, survivor(crashed), lazy=False)
            for _ in range(REPEATS)
        )
        lazy_s = min(
            time_to_first_request(root, survivor(crashed), lazy=True)
            for _ in range(REPEATS)
        )
        crashed.close()
        return {
            "ops": n_ops,
            "eager_ttfr_s": eager_s,
            "lazy_ttfr_s": lazy_s,
            "speedup": eager_s / lazy_s if lazy_s else float("inf"),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def identity_leg(method: str) -> dict:
    """Lazy == eager byte identity for one method, reads mid-recovery."""
    root = tempfile.mkdtemp(prefix=f"e23-id-{method}-")
    try:
        db = KVDatabase(
            method=method,
            n_pages=8,
            log_dir=root,
            fsync=False,
            checkpoint_every=25,
            log_segment_size=32,
        )
        ops = []
        for i in range(150):
            k = f"k{i % 17}"
            if method != "physiological" and i % 11 == 7:
                ops.append(("copyadd", f"d{i % 5}", (k, i)))
            elif i % 7 == 3:
                ops.append(("add", k, i))
            else:
                ops.append(("put", k, i * 10))
        db.run(ops)
        db.crash()
        disk_eager, disk_lazy = survivor(db), survivor(db)
        db.close()
        kwargs = dict(
            method=method,
            n_pages=8,
            checkpoint_every=25,
            log_segment_size=32,
            fsync=False,
        )
        eager = KVDatabase.cold_start(root, disk=disk_eager, **kwargs)
        lazy = KVDatabase.cold_start(root, disk=disk_lazy, lazy=True, **kwargs)
        served = sum(
            lazy.get(f"k{i}") == eager.get(f"k{i}") for i in range(17)
        )
        assert served == 17, f"{method}: {17 - served} mid-recovery reads diverged"
        lazy.drain_lazy()
        eager.quiesce()
        lazy.quiesce()
        identical = canonical_state(eager) == canonical_state(lazy)
        assert identical, f"{method}: lazy restart diverged from eager"
        durable = eager.durable_count()
        eager.close()
        lazy.close()
        return {"identical": True, "durable": durable, "served": served}
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_e23_instant_restart():
    tiers = [restart_tier(n) for n in TIERS]
    identity = {method: identity_leg(method) for method in METHODS}

    rows = [
        [
            t["ops"],
            f"{t['eager_ttfr_s'] * 1e3:.1f}",
            f"{t['lazy_ttfr_s'] * 1e3:.1f}",
            f"{t['speedup']:.1f}x",
        ]
        for t in tiers
    ]
    lines = table(
        rows,
        headers=["ops", "eager TTFR ms", "lazy TTFR ms", "speedup"],
    )
    top = tiers[-1]
    lines += [
        "",
        f"time to first served request after SIGKILL, {N_PAGES}-page "
        f"engine, no checkpoints (the whole log is the redo suffix); "
        f"lazy = analysis + one page's chain, eager = the full replay",
        f"largest tier ({top['ops']} ops): {top['speedup']:.1f}x "
        f"(floor {MIN_SPEEDUP}x)",
        "",
        "byte identity, lazy vs eager (reads taken during recovery, "
        "then drained):",
    ]
    lines += [
        f"  {method:15s} durable={info['durable']:<5d} "
        f"mid-recovery reads ok, post-drain byte-identical"
        for method, info in identity.items()
    ]
    emit("E23", "instant restart: time to first request", lines)
    (RESULTS_DIR / "BENCH_restart.json").write_text(
        json.dumps(
            {
                "cpus": os.cpu_count(),
                "n_pages": N_PAGES,
                "tiers": tiers,
                "min_speedup": MIN_SPEEDUP,
                "identity": identity,
            },
            indent=1,
        )
    )
    assert top["speedup"] >= MIN_SPEEDUP, (
        f"lazy restart must answer {MIN_SPEEDUP}x sooner than eager at "
        f"{top['ops']} ops; got {top['speedup']:.1f}x"
    )
