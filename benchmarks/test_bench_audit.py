"""E9–E10: the theory checking the systems, and the failure model's edge.

E9 — the bridge experiment.  The same put/add/copyadd workload runs on
the logical and physical engines; each engine's *stable log* is lifted
to abstract operations and the Recovery Invariant is evaluated at every
instant.  Reported: the lifted graph shapes (§6.2 says physical logs
have only ww conflicts; logical logs carry wr/rw edges and the
installation graph removes the wr-only ones) and the audit verdicts
(all must hold).

E10 — fault injection.  The §6 arguments assume page writes are atomic
and never silently lost.  Arming torn-write and lost-write faults on the
simulated disk shows recovery failing exactly when those assumptions
break — and the per-instant audit flagging the broken instants.
"""

from repro.engine import KVDatabase
from repro.graphs import count_prefixes
from repro.sim.audit import audit_instant, audited_run, installation_graph_of
from repro.storage import LostWriteFault, TornWriteFault
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

from benchmarks.conftest import emit, table

MIXED = KVWorkloadSpec(
    n_operations=60,
    n_keys=6,
    put_ratio=0.35,
    add_ratio=0.2,
    copyadd_ratio=0.3,
    delete_ratio=0.0,
)


def test_lifted_graphs_and_audits(benchmark):
    def run():
        stream = generate_kv_workload(8, MIXED)
        rows = []
        for method in ("logical", "physical", "generalized"):
            db = KVDatabase(
                method=method, cache_capacity=4, commit_every=2,
                checkpoint_every=13,
            )
            audits = audited_run(db, stream, audit_every=1)
            violations = sum(1 for a in audits if not a.holds)
            installation = installation_graph_of(db)
            label_sets = [
                ",".join(sorted(labels))
                for _, _, labels in installation.conflict.edges()
            ]
            rows.append(
                [
                    method,
                    len(audits),
                    violations,
                    installation.conflict.dag.edge_count(),
                    len(installation.removed_edges()),
                    "ww only" if set(label_sets) <= {"ww"} else "ww/wr/rw",
                ]
            )
        return rows

    rows = benchmark(run)
    by = {row[0]: row for row in rows}
    assert all(by[m][2] == 0 for m in by)              # no violations anywhere
    assert by["physical"][5] == "ww only"              # §6.2's shape
    assert by["logical"][4] > 0                        # wr-only edges removed
    assert by["generalized"][4] > 0                    # §6.4 reads lift too
    assert by["physical"][4] == 0
    emit(
        "E9",
        "Live engines audited against the theory (60-op mixed workload)",
        table(
            rows,
            [
                "method",
                "instants audited",
                "violations",
                "lifted conflict edges",
                "wr-only removed",
                "conflict kinds",
            ],
        )
        + [
            "",
            "Physical logging lifts to blind writes — only ww conflicts, no",
            "removable edges (§6.2).  Logical and generalized logging lift",
            "with real read sets; their installation graphs remove the",
            "wr-only edges.  The Recovery Invariant held at every instant",
            "for all three engines.",
        ],
    )


def test_flexibility_of_blind_logging(benchmark):
    """Quantify §6.2's flexibility: on the same short stream, physical's
    lifted installation graph admits at least as many prefixes (legal
    installed sets) as logical's."""

    def run(seeds=12):
        at_least = 0
        strictly = 0
        for seed in range(seeds):
            stream = generate_kv_workload(
                seed,
                KVWorkloadSpec(
                    n_operations=10, n_keys=3, put_ratio=0.4,
                    copyadd_ratio=0.5, delete_ratio=0.0,
                ),
            )
            counts = {}
            for method in ("physical", "logical"):
                db = KVDatabase(method=method, cache_capacity=4)
                db.run(stream)
                db.commit()
                counts[method] = count_prefixes(installation_graph_of(db).dag)
            if counts["physical"] >= counts["logical"]:
                at_least += 1
            if counts["physical"] > counts["logical"]:
                strictly += 1
        return seeds, at_least, strictly

    seeds, at_least, strictly = benchmark(run)
    assert at_least == seeds
    assert strictly > 0
    emit(
        "E9b",
        "Blind (physical) logging maximizes installed-set flexibility",
        table(
            [[seeds, at_least, strictly]],
            ["streams", "physical >= logical prefixes", "strictly more"],
        ),
    )


def test_btree_audit(benchmark):
    """E9c: the B-tree audited page-granularly at every instant of
    growth, for both split disciplines — and the unsafe write order
    flagged by the auditor *before* any crash turns it into data loss."""
    from repro.btree import BTree
    from repro.methods.base import Machine
    from repro.sim.audit_btree import audit_btree
    from repro.workloads.btree_load import BTreeWorkloadSpec, generate_btree_keys

    def run():
        rows = []
        pairs = generate_btree_keys(5, BTreeWorkloadSpec(n_keys=40))
        for discipline in ("generalized", "physiological"):
            tree = BTree(
                Machine(cache_capacity=4), fanout=4, split_discipline=discipline
            )
            violations = 0
            for key, payload in pairs:
                tree.insert(key, payload)
                tree.commit()
                if not audit_btree(tree):
                    violations += 1
            rows.append([discipline, "honored", len(pairs), violations])
        unsafe = BTree(
            Machine(cache_capacity=64),
            fanout=4,
            split_discipline="generalized",
            unsafe_split_flush=True,
        )
        flagged = 0
        for key in range(12):
            unsafe.insert(key, str(key).encode())
            unsafe.commit()
            if not audit_btree(unsafe):
                flagged += 1
        rows.append(["generalized", "VIOLATED", 12, flagged])
        return rows

    rows = benchmark(run)
    assert rows[0][3] == rows[1][3] == 0
    assert rows[2][3] > 0
    emit(
        "E9c",
        "B-tree audited page-granularly at every instant",
        table(rows, ["discipline", "write order", "instants", "flagged"])
        + [
            "",
            "Multi-page split records decompose into per-written-page",
            "operations (sound because written pages never read each other);",
            "the Figure 8 edge appears in the lifted graph, and violating it",
            "is flagged by the invariant while the system still runs.",
        ],
    )


def test_fault_injection(benchmark):
    """E10: break the atomic/lossless page-write assumptions and watch
    recovery fail — with the audit flagging the corruption."""

    def scenario(fault_kind: str):
        db = KVDatabase(method="physiological", cache_capacity=8, n_pages=1)
        db.execute(("put", "a", 1))
        db.execute(("put", "b", 2))
        db.execute(("add", "a", 10))
        db.commit()
        page_id = db.method.page_of("a")
        if fault_kind == "torn":
            db.method.machine.disk.arm_fault(TornWriteFault(page_id, keep_cells=1))
        elif fault_kind == "lost":
            db.method.machine.disk.arm_fault(LostWriteFault(page_id))
        db.method.machine.pool.flush_all()
        audit = audit_instant(db)
        db.crash_and_recover()
        recovered = db.method.dump()
        expected = {"a": 11, "b": 2}
        return audit.holds, recovered == expected

    def run():
        return {
            kind: scenario(kind) for kind in ("none", "torn", "lost")
        }

    outcomes = benchmark(run)
    assert outcomes["none"] == (True, True)
    # A torn flush leaves a page whose LSN claims more than its cells
    # deliver: audit flags it, recovery is wrong.
    assert outcomes["torn"] == (False, False)
    # A lost write leaves the page entirely absent/stale with a stale
    # LSN, which the LSN redo test handles: recovery replays everything.
    assert outcomes["lost"] == (True, True)
    rows = [
        [kind, "holds" if a else "FLAGGED", "correct" if r else "WRONG"]
        for kind, (a, r) in outcomes.items()
    ]
    emit(
        "E10",
        "Fault injection: which hardware assumptions are load-bearing",
        table(rows, ["fault", "invariant audit", "recovery outcome"])
        + [
            "",
            "Torn page writes (atomicity violated) break recovery and are",
            "flagged by the audit.  A wholly lost write is survivable: the",
            "stale page keeps its stale LSN, so the redo test replays the",
            "missing work — losing a write is safe, tearing one is not.",
        ],
    )
