"""E22: the price of watching — telemetry on vs off under E19 load.

Telemetry only earns its place if it is effectively free.  This
experiment runs the E19 commit-throughput workload on identical
databases in three configurations:

- **off** — the ``--no-telemetry`` baseline: no tracer, no server-side
  instrumentation at all.
- **default** — exactly what ``repro serve`` ships: the engine runs
  untraced, while a live :class:`KVServer` (telemetry on, its own
  tracer teed into the on-disk flight ring) emits the serve span and
  health heartbeats alongside the workload.  The acceptance bar applies
  here: >= 95% of the baseline's commits/s, best of N interleaved
  trials.
- **firehose** — the ``--trace-ops`` opt-in: every engine event (log
  appends, forces, commits) tees into the in-memory ring *and* the
  flight recorder.  Measured and reported so the flag's cost is a
  number, not an adjective — but deliberately NOT held to the 5% bar;
  JSON-encoding a record per operation is a double-digit tax, which is
  exactly why it is not the default.

Also reported: the flight ring's accounting (records appended, fixed
file size, laps) and the cost of one ``observe_latency`` call, measured
directly — the per-request timing the in-process harness cannot
exercise (it bypasses the server's dispatch loop).

Results go to E22.txt and ``BENCH_telemetry.json``.  Set
``E22_CLIENTS``, ``E22_OPS``, ``E22_WORKERS``, ``E22_TRIALS`` to shrink
the run for CI smoke.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.engine import KVDatabase
from repro.obs import (
    FlightRecorder,
    FlightRecorderSink,
    RingBufferSink,
    TeeSink,
    Tracer,
    flight_ring_path,
)
from repro.server import run_simulated_clients
from repro.server.server import KVServer

from benchmarks.conftest import RESULTS_DIR, emit, table

N_CLIENTS = int(os.environ.get("E22_CLIENTS", 1000))
OPS_PER_CLIENT = int(os.environ.get("E22_OPS", 4))
WORKERS = int(os.environ.get("E22_WORKERS", 64))
# This container's run-to-run drift is large relative to a sub-second
# load run (single-trial ratios swing 0.87-1.67 for identical configs);
# best-of-N interleaved converges both modes onto the machine's fast
# state, and N=6 was the smallest count that did so reliably here.
TRIALS = int(os.environ.get("E22_TRIALS", 6))
MIN_RATIO = 0.95  # default telemetry must keep >= 95% of baseline commits/s

MODES = ("off", "default", "firehose")


def run_mode(mode: str):
    """One E19-shaped load run; returns (LoadResult, ring accounting)."""
    log_dir = tempfile.mkdtemp(prefix="e22-")
    tracer = None
    recorder = None
    server = None
    try:
        if mode != "off":
            recorder = FlightRecorder.attach(flight_ring_path(log_dir))
            tracer = Tracer(
                TeeSink(
                    RingBufferSink(capacity=4096), FlightRecorderSink(recorder)
                )
            )
        db = KVDatabase(
            method="physiological",
            cache_capacity=64,
            log_dir=log_dir,
            commit_pipeline=True,
            tracer=tracer if mode == "firehose" else None,
        )
        if mode != "off":
            # The serve-shaped instrumentation: a live server whose own
            # tracer carries the serve span and fast heartbeats while
            # the workload hammers the same database underneath.
            server = KVServer(
                db, telemetry=True, tracer=tracer, heartbeat_interval=0.2
            )
            server.serve_background()
        result = run_simulated_clients(
            db,
            n_clients=N_CLIENTS,
            ops_per_client=OPS_PER_CLIENT,
            commit_every=1,
            workers=WORKERS,
        )
        db.verify_against()
        if server is not None:
            server.close()  # closes db too
        else:
            db.close()
        ring = {}
        if recorder is not None:
            ring = {
                "appended": recorder.appended,
                "n_slots": recorder.n_slots,
                "wraps": recorder.appended // recorder.n_slots,
                "truncated_payloads": recorder.truncated_payloads,
                "file_bytes": os.path.getsize(recorder.path),
            }
        return result, ring
    finally:
        if tracer is not None:
            tracer.close()
        shutil.rmtree(log_dir, ignore_errors=True)


def measure_observe_latency_ns(samples: int = 100_000) -> float:
    """Direct cost of the server's per-request timing hook, ns/call."""
    server = KVServer.__new__(KVServer)  # no socket; just the metrics
    server.telemetry = True
    import threading

    from repro.obs import MetricsRegistry

    server.metrics = MetricsRegistry()
    server._latency = {}
    server._latency_lock = threading.Lock()
    start = time.perf_counter()
    for _ in range(samples):
        server.observe_latency("put", 0.001)
    return (time.perf_counter() - start) / samples * 1e9


def test_e22_telemetry_overhead():
    # Interleave the modes across trials so slow-machine drift (thermal,
    # competing load) cannot systematically favor any configuration.
    best = {mode: None for mode in MODES}
    ring_stats = {mode: {} for mode in MODES}
    for _ in range(TRIALS):
        for mode in MODES:
            result, ring = run_mode(mode)
            if (
                best[mode] is None
                or result.commits_per_sec > best[mode].commits_per_sec
            ):
                best[mode] = result
                ring_stats[mode] = ring

    off = best["off"]
    ratios = {
        mode: (
            best[mode].commits_per_sec / off.commits_per_sec
            if off.commits_per_sec
            else 1.0
        )
        for mode in MODES
    }
    observe_ns = measure_observe_latency_ns()

    rows = [
        [
            mode,
            best[mode].commits,
            f"{best[mode].commits_per_sec:.0f}",
            f"{best[mode].latency_ms(0.50):.2f}",
            f"{best[mode].latency_ms(0.99):.2f}",
            f"{ratios[mode]:.1%}",
        ]
        for mode in MODES
    ]
    ring = ring_stats["default"]
    lines = table(
        rows,
        headers=["telemetry", "commits", "commits/s", "p50_ms", "p99_ms", "vs off"],
    )
    lines += [
        "",
        f"default (serve span + heartbeats, engine untraced): "
        f"{ratios['default']:.1%} of baseline "
        f"(floor {MIN_RATIO:.0%}, best of {TRIALS} trials each, interleaved)",
        f"firehose (--trace-ops, every engine event traced): "
        f"{ratios['firehose']:.1%} of baseline — informational; this cost "
        f"is why per-op tracing is opt-in",
        f"flight ring (default mode): {ring.get('appended', 0)} records into "
        f"{ring.get('n_slots', 0)} slots "
        f"({ring.get('wraps', 0)} full laps, "
        f"{ring.get('file_bytes', 0)} bytes on disk, fixed)",
        f"server observe_latency hook: {observe_ns:.0f} ns/call "
        f"(two clock reads + one histogram bucket)",
    ]
    emit("E22", "telemetry overhead: default/firehose vs off under E19 load", lines)
    (RESULTS_DIR / "BENCH_telemetry.json").write_text(
        json.dumps(
            {
                "clients": N_CLIENTS,
                "ops_per_client": OPS_PER_CLIENT,
                "trials": TRIALS,
                "modes": {mode: best[mode].as_dict() for mode in MODES},
                "ratio": round(ratios["default"], 4),
                "ratio_firehose": round(ratios["firehose"], 4),
                "floor": MIN_RATIO,
                "flight_ring": ring_stats,
                "observe_latency_ns": round(observe_ns, 1),
            },
            indent=1,
        )
    )
    assert ratios["default"] >= MIN_RATIO, (
        f"default telemetry must cost <= {1 - MIN_RATIO:.0%} of commit "
        f"throughput; kept only {ratios['default']:.1%}"
    )
