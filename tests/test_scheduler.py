"""Unit tests for the install scheduler — the live §5 write graph that
is the buffer pool's single flush authority.

Each test exercises one of the four transformations (collapse, add-edge,
install, remove-write) or one of the query surfaces the pool and the
recovery methods consult (blockers, rec_lsns, minimal_pages...).
"""

import pytest

from repro.cache.scheduler import (
    InstallScheduler,
    SchedulerCycleError,
    SchedulerError,
)


class TestCollapse:
    def test_first_update_creates_a_node(self):
        sched = InstallScheduler()
        node = sched.collapse("p1", lsn=10)
        assert node.writes == 1
        assert node.rec_lsn == 10
        assert node.last_lsn == 10
        assert len(sched) == 1

    def test_later_updates_merge_into_the_same_node(self):
        """One copy per page: the recLSN is the *first* update's LSN, the
        lastLSN the latest — exactly the dirty-page-table discipline."""
        sched = InstallScheduler()
        first = sched.collapse("p1", lsn=10)
        again = sched.collapse("p1", lsn=25)
        assert again is first
        assert first.writes == 2
        assert first.rec_lsn == 10
        assert first.last_lsn == 25
        assert sched.stats.collapses == 1

    def test_untagged_updates_leave_lsns_alone(self):
        sched = InstallScheduler()
        node = sched.collapse("p1")
        assert node.rec_lsn == -1
        sched.collapse("p1", lsn=5)
        assert node.rec_lsn == 5

    def test_new_generation_after_install(self):
        """Install retires the node; the next update starts a fresh
        generation with its own recLSN."""
        sched = InstallScheduler()
        sched.collapse("p1", lsn=10)
        sched.install("p1")
        node = sched.collapse("p1", lsn=40)
        assert node.rec_lsn == 40
        assert node.writes == 1


class TestAddEdge:
    def test_edge_blocks_the_target(self):
        sched = InstallScheduler()
        sched.collapse("a", lsn=1)
        sched.collapse("b", lsn=2)
        sched.add_edge("a", "b")
        assert sched.blockers("b") == ["a"]
        assert sched.minimal_pages() == ["a"]

    def test_self_edge_is_a_cycle(self):
        sched = InstallScheduler()
        sched.collapse("a")
        with pytest.raises(SchedulerCycleError, match="self-ordering"):
            sched.add_edge("a", "a")

    def test_closing_a_cycle_is_refused(self):
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("b")
        sched.collapse("c")
        sched.add_edge("a", "b")
        sched.add_edge("b", "c")
        with pytest.raises(SchedulerCycleError, match="cycle"):
            sched.add_edge("c", "a")
        assert sched.stats.cycles_refused == 1

    def test_duplicate_edge_counted_once(self):
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("b")
        key1 = sched.add_edge("a", "b")
        key2 = sched.add_edge("a", "b")
        assert key1 == key2
        assert sched.stats.edges_added == 1

    def test_edge_against_clean_page_makes_an_obligation_node(self):
        """The no-retroactive-discharge mechanism: a missing endpoint
        gets an empty node (writes == 0) that no past flush satisfies."""
        sched = InstallScheduler()
        sched.collapse("then", lsn=3)
        sched.add_edge("first", "then")
        obligation = sched.live_node("first")
        assert obligation is not None
        assert obligation.writes == 0
        assert sched.blockers("then") == ["first"]
        # Obligation nodes are not the analysis pass's business.
        assert "first" not in sched.rec_lsns()


class TestInstall:
    def test_install_retires_and_discharges(self):
        sched = InstallScheduler()
        sched.collapse("a", lsn=1)
        sched.collapse("b", lsn=2)
        edge = sched.add_edge("a", "b")
        assert sched.has_edge_ids(*edge)
        sched.install("a")
        assert not sched.has_edge_ids(*edge)
        assert sched.live_node("a") is None
        assert sched.blockers("b") == []
        assert sched.stats.installs == 1

    def test_install_with_live_predecessor_raises(self):
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("b")
        sched.add_edge("a", "b")
        with pytest.raises(SchedulerError, match="predecessors"):
            sched.install("b")

    def test_force_install_bypasses_ordering(self):
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("b")
        sched.add_edge("a", "b")
        node = sched.install("b", force=True)
        assert node is not None and node.installed

    def test_empty_obligation_node_cannot_install(self):
        """No page write backs an obligation node, so even a forced
        install is meaningless — the pool must refuse, not fabricate."""
        sched = InstallScheduler()
        sched.collapse("then")
        sched.add_edge("first", "then")
        with pytest.raises(SchedulerError, match="empty ordering obligation"):
            sched.install("first", force=True)

    def test_install_of_unknown_page_is_noop(self):
        assert InstallScheduler().install("ghost") is None


class TestRemoveWrite:
    def test_elision_retires_and_discharges(self):
        sched = InstallScheduler()
        sched.collapse("a", lsn=1)
        sched.collapse("b", lsn=2)
        edge = sched.add_edge("a", "b")
        sched.remove_write("a")
        assert sched.live_node("a") is None
        assert not sched.has_edge_ids(*edge)
        assert sched.stats.elisions == 1

    def test_elision_respects_ordering(self):
        """An ordered-before obligation is not dischargeable by skipping
        the IO: the predecessor's content must still land first."""
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("b")
        sched.add_edge("a", "b")
        with pytest.raises(SchedulerError, match="predecessors"):
            sched.remove_write("b")

    def test_elision_of_unknown_page_is_noop(self):
        assert InstallScheduler().remove_write("ghost") is None


class TestQueries:
    def test_rec_lsns_is_the_dirty_page_table(self):
        sched = InstallScheduler()
        sched.collapse("a", lsn=10)
        sched.collapse("b", lsn=20)
        sched.collapse("a", lsn=30)
        assert sched.rec_lsns() == {"a": 10, "b": 20}
        sched.install("a")
        assert sched.rec_lsns() == {"b": 20}
        sched.remove_write("b")
        assert sched.rec_lsns() == {}

    def test_untagged_nodes_omitted_from_rec_lsns(self):
        sched = InstallScheduler()
        sched.collapse("a")  # no LSN tag
        assert sched.rec_lsns() == {}

    def test_set_rec_lsn_corrects_an_adopted_page(self):
        sched = InstallScheduler()
        sched.collapse("a", lsn=50)  # adoption stamps the *final* LSN
        sched.set_rec_lsn("a", 10)  # the first-replayed LSN is the truth
        assert sched.rec_lsns() == {"a": 10}
        assert sched.live_node("a").last_lsn == 50

    def test_pending_edges_views(self):
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("b")
        sched.collapse("c")
        sched.add_edge("a", "b")
        sched.add_edge("a", "c")
        pairs = {(first, then) for first, then, _ in sched.pending_edges()}
        assert pairs == {("a", "b"), ("a", "c")}

    def test_minimal_pages_are_the_installable_frontier(self):
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("b")
        sched.collapse("c")
        sched.add_edge("a", "b")
        assert sched.minimal_pages() == ["a", "c"]

    def test_len_counts_live_nodes(self):
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("b")
        sched.install("a")
        assert len(sched) == 1


class TestIntegrityAndCrash:
    def test_self_check_healthy(self):
        sched = InstallScheduler()
        sched.collapse("a", lsn=1)
        sched.collapse("b", lsn=2)
        sched.add_edge("a", "b")
        assert sched.self_check() == []

    def test_self_check_catches_corruption(self):
        sched = InstallScheduler()
        node = sched.collapse("a", lsn=5)
        node.rec_lsn = 9  # recLSN after lastLSN: impossible history
        assert any("recLSN" in problem for problem in sched.self_check())

    def test_reset_loses_everything(self):
        sched = InstallScheduler()
        sched.collapse("a", lsn=1)
        sched.collapse("b", lsn=2)
        sched.add_edge("a", "b")
        sched.reset()
        assert len(sched) == 0
        assert sched.pending_edges() == []
        assert sched.rec_lsns() == {}
        assert sched.self_check() == []

    def test_stats_as_dict(self):
        sched = InstallScheduler()
        sched.collapse("a")
        sched.collapse("a")
        sched.install("a")
        stats = sched.stats.as_dict()
        assert stats["installs"] == 1
        assert stats["collapses"] == 1
        assert set(stats) == {
            "installs", "collapses", "elisions", "edges_added", "cycles_refused",
        }
