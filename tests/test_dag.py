"""Unit tests for the DAG kernel."""

import pytest

from repro.graphs import CycleError, Dag


def diamond() -> Dag:
    """a -> b, a -> c, b -> d, c -> d."""
    return Dag(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestConstruction:
    def test_empty_graph(self):
        dag = Dag()
        assert len(dag) == 0
        assert dag.nodes() == []
        assert dag.edge_count() == 0

    def test_add_node_idempotent(self):
        dag = Dag()
        dag.add_node("a")
        dag.add_node("a")
        assert dag.nodes() == ["a"]

    def test_add_edge_adds_endpoints(self):
        dag = Dag()
        dag.add_edge("a", "b")
        assert "a" in dag and "b" in dag
        assert dag.has_edge("a", "b")
        assert not dag.has_edge("b", "a")

    def test_edge_labels_merge(self):
        dag = Dag()
        dag.add_edge("a", "b", labels={"ww"})
        dag.add_edge("a", "b", labels={"rw"})
        assert dag.edge_labels("a", "b") == {"ww", "rw"}

    def test_self_loop_rejected(self):
        dag = Dag()
        with pytest.raises(CycleError):
            dag.add_edge("a", "a")

    def test_cycle_rejected(self):
        dag = Dag(edges=[("a", "b"), ("b", "c")])
        with pytest.raises(CycleError):
            dag.add_edge("c", "a")

    def test_long_cycle_rejected(self):
        dag = Dag(edges=[(f"n{i}", f"n{i+1}") for i in range(10)])
        with pytest.raises(CycleError):
            dag.add_edge("n10", "n0")

    def test_remove_edge(self):
        dag = diamond()
        dag.remove_edge("a", "b")
        assert not dag.has_edge("a", "b")
        assert dag.has_edge("a", "c")

    def test_remove_missing_edge_raises(self):
        dag = diamond()
        with pytest.raises(KeyError):
            dag.remove_edge("b", "c")

    def test_remove_node_detaches_edges(self):
        dag = diamond()
        dag.remove_node("b")
        assert "b" not in dag
        assert not any("b" in (s, t) for s, t, _ in dag.edges())
        assert dag.has_edge("a", "c")

    def test_copy_is_independent(self):
        dag = diamond()
        clone = dag.copy()
        clone.add_edge("d", "e")
        assert "e" not in dag
        assert dag.same_structure(diamond())

    def test_copy_does_not_share_labels(self):
        dag = Dag(edges=[("a", "b", {"ww"})])
        clone = dag.copy()
        clone.add_edge("a", "b", labels={"rw"})
        assert dag.edge_labels("a", "b") == {"ww"}


class TestReachability:
    def test_has_path_reflexive(self):
        dag = diamond()
        assert dag.has_path("a", "a")

    def test_has_path_transitive(self):
        dag = diamond()
        assert dag.has_path("a", "d")
        assert not dag.has_path("d", "a")
        assert not dag.has_path("b", "c")

    def test_has_path_missing_nodes(self):
        dag = diamond()
        assert not dag.has_path("a", "zz")
        assert not dag.has_path("zz", "a")

    def test_predecessors_transitive(self):
        dag = diamond()
        assert dag.predecessors("d") == {"a", "b", "c"}
        assert dag.predecessors("a") == set()

    def test_successors_transitive(self):
        dag = diamond()
        assert dag.successors("a") == {"b", "c", "d"}
        assert dag.successors("d") == set()

    def test_ordered_before_strict(self):
        dag = diamond()
        assert dag.ordered_before("a", "d")
        assert not dag.ordered_before("a", "a")

    def test_comparable(self):
        dag = diamond()
        assert dag.comparable("a", "d")
        assert dag.comparable("d", "a")
        assert not dag.comparable("b", "c")


class TestPrefixes:
    def test_empty_set_is_prefix(self):
        assert diamond().is_prefix(set())

    def test_full_set_is_prefix(self):
        dag = diamond()
        assert dag.is_prefix(set(dag.nodes()))

    def test_prefix_requires_closure(self):
        dag = diamond()
        assert dag.is_prefix({"a"})
        assert dag.is_prefix({"a", "b"})
        assert not dag.is_prefix({"b"})       # missing predecessor a
        assert not dag.is_prefix({"a", "d"})  # missing b, c

    def test_prefix_with_unknown_node(self):
        assert not diamond().is_prefix({"zz"})

    def test_prefix_closure(self):
        dag = diamond()
        assert dag.prefix_closure({"d"}) == {"a", "b", "c", "d"}
        assert dag.prefix_closure({"b"}) == {"a", "b"}
        assert dag.prefix_closure(set()) == set()

    def test_minimal_nodes_global(self):
        assert diamond().minimal_nodes() == {"a"}

    def test_minimal_nodes_within_subset(self):
        dag = diamond()
        assert dag.minimal_nodes({"b", "c", "d"}) == {"b", "c"}
        assert dag.minimal_nodes({"d"}) == {"d"}

    def test_maximal_nodes(self):
        dag = diamond()
        assert dag.maximal_nodes() == {"d"}
        assert dag.maximal_nodes({"a", "b", "c"}) == {"b", "c"}


class TestSubgraphs:
    def test_induced_subgraph(self):
        dag = diamond()
        sub = dag.induced_subgraph({"a", "b", "d"})
        assert set(sub.nodes()) == {"a", "b", "d"}
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "d")
        assert not sub.has_edge("a", "d")  # no direct edge in original

    def test_filter_edges(self):
        dag = Dag(edges=[("a", "b", {"wr"}), ("b", "c", {"ww"})])
        kept = dag.filter_edges(lambda s, t, labels: labels != {"wr"})
        assert not kept.has_edge("a", "b")
        assert kept.has_edge("b", "c")
        assert set(kept.nodes()) == {"a", "b", "c"}

    def test_same_structure_ignores_labels_by_default(self):
        a = Dag(edges=[("a", "b", {"wr"})])
        b = Dag(edges=[("a", "b", {"ww"})])
        assert a.same_structure(b)
        assert not a.same_structure(b, with_labels=True)

    def test_to_dot_contains_edges(self):
        dot = diamond().to_dot()
        assert '"a" -> "b"' in dot
        assert dot.startswith("digraph")
