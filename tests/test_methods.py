"""Unit tests for the §6 recovery-method engines."""

import pytest

from repro.methods import METHODS, LogicalKV, Machine, PhysicalKV, PhysiologicalKV
from repro.methods.base import page_of


class TestMachine:
    def test_crash_drops_cache_and_log_tail(self):
        machine = Machine()
        from repro.logmgr import LogicalRedo

        machine.log.append(LogicalRedo(("a",)))
        machine.log.flush()
        machine.log.append(LogicalRedo(("b",)))
        machine.pool.update("p1", lambda p: p.put("k", 1), create=True)
        machine.crash()
        assert machine.crashed
        assert len(machine.log) == 1
        assert not machine.pool.is_cached("p1")

    def test_page_of_is_stable_across_processes(self):
        # crc32-based, not salted-hash-based.
        assert page_of("hello", 8) == f"data{0x3610a686 % 8:03d}"

    def test_page_of_spreads_keys(self):
        pages = {page_of(f"k{i}", 8) for i in range(64)}
        assert len(pages) > 4


@pytest.fixture(params=sorted(METHODS))
def method(request):
    return METHODS[request.param](Machine(cache_capacity=4), n_pages=4)


class TestCommonBehavior:
    """Contract tests run against every method."""

    def test_put_get_roundtrip(self, method):
        method.put("alpha", 1)
        method.put("beta", 2)
        assert method.get("alpha") == 1
        assert method.get("beta") == 2
        assert method.get("missing") is None

    def test_delete(self, method):
        method.put("alpha", 1)
        method.delete("alpha")
        assert method.get("alpha") is None

    def test_dump_matches_puts(self, method):
        for i in range(10):
            method.put(f"k{i}", i)
        method.delete("k3")
        expected = {f"k{i}": i for i in range(10) if i != 3}
        assert method.dump() == expected

    def test_nothing_durable_without_commit(self, method):
        method.put("alpha", 1)
        assert method.durable_count() == 0
        method.crash()
        method.recover()
        assert method.get("alpha") is None

    def test_commit_makes_durable(self, method):
        method.put("alpha", 1)
        method.commit()
        assert method.durable_count() == 1
        method.crash()
        method.recover()
        assert method.get("alpha") == 1

    def test_checkpoint_then_crash(self, method):
        for i in range(8):
            method.put(f"k{i}", i)
        method.commit()
        method.checkpoint()
        for i in range(8, 12):
            method.put(f"k{i}", i * 10)
        method.commit()
        method.crash()
        method.recover()
        assert method.dump() == {
            **{f"k{i}": i for i in range(8)},
            **{f"k{i}": i * 10 for i in range(8, 12)},
        }

    def test_double_crash_recover(self, method):
        method.put("a", 1)
        method.commit()
        method.crash()
        method.recover()
        method.crash()
        method.recover()
        assert method.get("a") == 1

    def test_recovery_is_idempotent(self, method):
        method.put("a", 1)
        method.put("b", 2)
        method.commit()
        method.crash()
        method.recover()
        first = method.dump()
        method.recover()
        assert method.dump() == first

    def test_work_continues_after_recovery(self, method):
        method.put("a", 1)
        method.commit()
        method.crash()
        method.recover()
        method.put("b", 2)
        method.commit()
        method.crash()
        method.recover()
        assert method.dump() == {"a": 1, "b": 2}

    def test_overwrites_keep_latest(self, method):
        for value in (1, 2, 3):
            method.put("k", value)
        method.commit()
        method.crash()
        method.recover()
        assert method.get("k") == 3


class TestPhysicalSpecifics:
    def test_checkpoint_flushes_all_pages(self):
        kv = PhysicalKV(Machine(cache_capacity=16), n_pages=4)
        for i in range(6):
            kv.put(f"k{i}", i)
        kv.checkpoint()
        assert kv.machine.pool.dirty_page_ids() == []

    def test_recovery_skips_checkpointed_prefix(self):
        kv = PhysicalKV(Machine(), n_pages=4)
        for i in range(5):
            kv.put(f"k{i}", i)
        kv.checkpoint()
        kv.put("late", 99)
        kv.commit()
        kv.crash()
        kv.recover()
        # Only the post-checkpoint record is replayed.
        assert kv.stats.records_replayed == 1
        assert kv.get("late") == 99
        assert kv.get("k0") == 0  # from the flushed pages

    def test_delete_logs_whole_page_image(self):
        from repro.logmgr import PhysicalRedo

        kv = PhysicalKV(Machine(), n_pages=1)
        kv.put("a", 1)
        kv.put("b", 2)
        kv.delete("a")
        last = kv.machine.log.entries()[-1].payload
        assert isinstance(last, PhysicalRedo)
        assert last.whole_page
        assert last.cells == {"b": 2}


class TestLogicalSpecifics:
    def test_stable_state_untouched_between_checkpoints(self):
        kv = LogicalKV(Machine(), n_pages=4)
        kv.put("a", 1)
        kv.commit()
        # Nothing but the shadow root exists on disk yet.
        data_pages = [p for p in kv.machine.disk.page_ids() if "data" in p]
        assert data_pages == []

    def test_checkpoint_swings_pointer(self):
        kv = LogicalKV(Machine(), n_pages=4)
        kv.put("a", 1)
        kv.checkpoint()
        assert kv.shadow.current_directory() == "B"
        assert kv.shadow.checkpoint_lsn() >= 0

    def test_recovery_starts_from_swung_state(self):
        kv = LogicalKV(Machine(), n_pages=4)
        kv.put("a", 1)
        kv.checkpoint()
        kv.put("b", 2)
        kv.commit()
        kv.crash()
        kv.recover()
        assert kv.dump() == {"a": 1, "b": 2}
        # Only the post-checkpoint record was replayed.
        assert kv.stats.records_replayed == 1

    def test_crash_mid_staging_is_harmless(self):
        kv = LogicalKV(Machine(), n_pages=4)
        kv.put("a", 1)
        kv.checkpoint()
        kv.put("a", 99)
        kv.commit()
        # Stage manually (as if a checkpoint began) but never swing.
        for page in kv._cache.values():
            kv.shadow.stage_page(page)
        kv.crash()
        kv.recover()
        assert kv.get("a") == 99  # replayed from the log, staging discarded


class TestPhysiologicalSpecifics:
    def test_redo_test_skips_installed_operations(self):
        kv = PhysiologicalKV(Machine(cache_capacity=2), n_pages=2)
        for i in range(8):
            kv.put(f"k{i}", i)
        kv.commit()
        kv.machine.pool.flush_all()  # installs everything, bumps page LSNs
        kv.crash()
        kv.recover()
        assert kv.stats.records_replayed == 0
        assert kv.stats.records_skipped >= 8
        assert kv.dump() == {f"k{i}": i for i in range(8)}

    def test_partial_flush_replays_only_missing(self):
        kv = PhysiologicalKV(Machine(cache_capacity=8), n_pages=2)
        kv.put("a", 1)   # page data000 or data001
        kv.put("b", 2)
        kv.commit()
        flushed = kv.page_of("a")
        kv.machine.pool.flush_page(flushed)
        kv.crash()
        kv.recover()
        assert kv.dump() == {"a": 1, "b": 2}
        if kv.page_of("a") != kv.page_of("b"):
            # Only b's page needed replay.
            assert kv.stats.records_replayed == 1

    def test_checkpoint_advances_redo_start(self):
        kv = PhysiologicalKV(Machine(cache_capacity=16), n_pages=2)
        for i in range(6):
            kv.put(f"k{i}", i)
        kv.commit()
        kv.machine.pool.flush_all()
        kv.checkpoint()  # dirty table empty -> redo start = next_lsn
        kv.put("late", 1)
        kv.commit()
        kv.crash()
        kv.recover()
        # The scan replays just the post-checkpoint record.
        assert kv.stats.records_replayed == 1
        assert kv.dump()["late"] == 1

    def test_sharp_checkpoint_flushes_and_shrinks_replay(self):
        fuzzy = PhysiologicalKV(Machine(cache_capacity=32), n_pages=4)
        sharp = PhysiologicalKV(
            Machine(cache_capacity=32), n_pages=4, sharp_checkpoints=True
        )
        for kv in (fuzzy, sharp):
            for i in range(10):
                kv.put(f"k{i}", i)
            kv.checkpoint()
            kv.put("late", 1)
            kv.commit()
            kv.crash()
            kv.recover()
            assert kv.dump()["late"] == 1
        assert sharp.stats.records_replayed < fuzzy.stats.records_replayed
        assert sharp.stats.records_replayed == 1  # just the late record

    def test_steal_keeps_dirty_table_honest(self):
        kv = PhysiologicalKV(Machine(cache_capacity=1), n_pages=4)
        kv.put("a", 1)
        kv.put("b", 2)  # evicts a's page (capacity 1), stealing it
        flushed_pages = [
            pid for pid in (kv.page_of("a"),) if kv.machine.disk.has_page(pid)
        ]
        if flushed_pages:
            assert flushed_pages[0] not in kv.dirty_table()
