"""Smoke tests: every example script runs to completion in-process.

Examples are documentation that executes; these tests keep them honest
as the library evolves.  Each example asserts its own claims internally,
so "runs without raising" is a meaningful check.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "crash_recovery_demo.py",
        "btree_split_logging.py",
        "invariant_checker.py",
        "bank_ledger.py",
        "persistent_app.py",
        "render_figures.py",
    ],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_rendered_figures_match_paper_shapes(tmp_path):
    """The dot files regenerate the paper's figure structure."""
    runpy.run_path(str(EXAMPLES / "render_figures.py"), run_name="__main__")
    figure5 = (EXAMPLES / "figures" / "figure5.dot").read_text()
    assert "O -> P [style=dashed" in figure5  # the removed wr edge
    assert 'O -> Q [style=solid label="rw,wr,ww"]' in figure5
    figure7 = (EXAMPLES / "figures" / "figure7.dot").read_text()
    assert "{O,Q}" in figure7
    assert '"P" -> "OQ"' in figure7
    figure8 = (EXAMPLES / "figures" / "figure8.dot").read_text()
    assert "careful write order" in figure8
