"""Durable-log recovery tests: cold starts and a real process kill.

Corollary 4 says recovery lands on the state determined by the stable
log prefix.  With a file-backed log there are two ways to get there —
the warm path (same Python objects, in-memory crash simulation) and the
cold path (a new process holding nothing but the segment files and the
surviving disk).  These tests assert the two land on *identical*
canonical states for every §6 method, and then do it for real: a child
process is SIGKILLed mid-workload and the parent recovers cold from the
files the kernel kept.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.engine import KVDatabase
from repro.sim import cold_restart_states
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

ALL_METHODS = ["physical", "physiological", "logical", "generalized"]

MIXED = KVWorkloadSpec(
    n_operations=120,
    n_keys=12,
    put_ratio=0.5,
    add_ratio=0.25,
    delete_ratio=0.05,
)


class TestColdRestartEquivalence:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_cold_state_identical_to_warm(self, tmp_path, method):
        db = KVDatabase(
            method=method,
            log_dir=tmp_path,
            log_segment_size=32,
            commit_every=2,
            group_commit=4,
            checkpoint_every=13,
        )
        db.run(generate_kv_workload(11, MIXED))
        warm, cold = cold_restart_states(db, tmp_path, log_segment_size=32)
        assert warm == cold

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_cold_state_identical_without_checkpoints(self, tmp_path, method):
        db = KVDatabase(
            method=method,
            log_dir=tmp_path,
            log_segment_size=32,
            commit_every=3,
            checkpoint_every=None,
        )
        db.run(generate_kv_workload(23, MIXED))
        warm, cold = cold_restart_states(db, tmp_path, log_segment_size=32)
        assert warm == cold

    def test_cold_state_identical_after_truncation(self, tmp_path):
        """Truncated (archived) segments are gone from the live log but
        still part of its accounting — a cold start must agree."""
        db = KVDatabase(
            method="logical",
            log_dir=tmp_path,
            log_segment_size=8,
            checkpoint_every=10,
            truncate_on_checkpoint=True,
        )
        db.run(generate_kv_workload(7, MIXED))
        assert db.method.machine.log.store.segments_archived > 0
        warm, cold = cold_restart_states(db, tmp_path, log_segment_size=8)
        assert warm == cold

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_unsynced_crash_recovers_durable_prefix(self, tmp_path, method):
        """Crash with a group-commit batch still in flight (no sync):
        the recovered state must equal the oracle over exactly the
        stable prefix.  Regression: the logical method's checkpoint
        used a plain force before the root swing, so the installed
        root could run ahead of the stable log."""
        stream = generate_kv_workload(11, MIXED)
        db = KVDatabase(
            method=method,
            log_dir=tmp_path,
            log_segment_size=16,
            commit_every=2,
            group_commit=4,
            checkpoint_every=23,
            truncate_on_checkpoint=(method == "logical"),
        )
        db.run(stream)
        db.crash_and_recover()
        assert db.verify_against(stream) == db.durable_count() > 0

    def test_cold_start_verifies_against_oracle(self, tmp_path):
        stream = generate_kv_workload(31, MIXED)
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, checkpoint_every=None
        )
        db.run(stream)
        db.sync()
        db.crash()
        cold = KVDatabase.cold_start(tmp_path, method="physiological")
        assert cold.verify_against(stream) == len(
            [c for c in stream if c[0] != "get"]
        )

    def test_durable_metrics_flow_through_report(self, tmp_path):
        db = KVDatabase(method="physiological", log_dir=tmp_path)
        db.run(generate_kv_workload(3, KVWorkloadSpec(n_operations=20)))
        report = db.report()
        assert report["durable_appends"] > 0
        assert report["durable_fsyncs"] > 0
        assert report["durable_bytes_written"] > 0
        in_memory = KVDatabase(method="physiological")
        assert "durable_fsyncs" not in in_memory.report()


# ----------------------------------------------------------------------
# The real thing: kill -9 a child process, recover from its files.
# ----------------------------------------------------------------------

CHILD_SOURCE = """\
import json, sys
from repro.engine import KVDatabase
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

log_dir, method, seed, spec_json = sys.argv[1:5]
stream = generate_kv_workload(int(seed), KVWorkloadSpec(**json.loads(spec_json)))
db = KVDatabase(
    method=method,
    log_dir=log_dir,
    commit_every=1,
    group_commit=2,
    checkpoint_every=None,
)
for index, command in enumerate(stream):
    db.execute(command)
    print(index, flush=True)
db.sync()
print("END", flush=True)
"""

CHILD_SEED = 29
CHILD_SPEC = KVWorkloadSpec(
    n_operations=200,
    n_keys=10,
    put_ratio=0.5,
    add_ratio=0.3,
    delete_ratio=0.05,
)
KILL_AFTER = 40  # SIGKILL once the child reports this many operations


def mutation_count(stream, durable):
    """Index into ``stream`` just past its ``durable``-th mutation."""
    seen = 0
    for index, command in enumerate(stream):
        if command[0] != "get":
            seen += 1
        if seen == durable:
            return index + 1
    return len(stream)


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
class TestProcessKill:
    @pytest.mark.parametrize("method", ["physiological", "logical"])
    def test_sigkill_then_cold_recovery(self, tmp_path, method):
        """Kill a real child mid-run; the parent recovers cold from the
        segment files alone (the in-memory Disk died with the child, so
        ``checkpoint_every=None`` and full replay is the contract) and
        the state must equal a clean replay of the durable prefix."""
        script = tmp_path / "child.py"
        script.write_text(CHILD_SOURCE)
        log_dir = tmp_path / "wal"
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        spec_json = json.dumps(CHILD_SPEC.__dict__)
        proc = subprocess.Popen(
            [
                sys.executable,
                str(script),
                str(log_dir),
                method,
                str(CHILD_SEED),
                spec_json,
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            progress = -1
            while progress < KILL_AFTER:
                assert time.monotonic() < deadline, "child too slow"
                line = proc.stdout.readline()
                assert line, f"child exited early at op {progress}"
                if line.strip().isdigit():
                    progress = int(line)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.stdout.close()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        stream = generate_kv_workload(CHILD_SEED, CHILD_SPEC)
        db = KVDatabase.cold_start(log_dir, method=method)
        durable = db.verify_against(stream)
        assert durable > 0  # the kill happened mid-run, after real commits

        # The recovered incarnation is a working database: finish the
        # workload from just past the durable prefix and verify again.
        mutations = [c for c in stream if c[0] != "get"]
        db.applied = mutations[:durable]
        db.run(stream[mutation_count(stream, durable):])
        db.sync()
        assert db.verify_against() == len(mutations)
