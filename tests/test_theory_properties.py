"""Deeper property tests for claims the paper states in passing.

- §2.4: "any state determined by any prefix of this state graph is
  reachable by any total ordering of the operations labeling that
  prefix."
- §2.2 / Lemma 1 consequence: "we can model a log as a set of operations
  ordered only by the conflict graph" — recovery must behave identically
  over every conflict-consistent log linearization.
- §1.3 point 2: state graphs "permit us to consider regimes that
  maintain multiple versions of variables" — the version chain of a
  variable is totally ordered and replays pass through exactly those
  versions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.installation import InstallationGraph
from repro.core.model import State, run_sequence
from repro.core.recovery import Log, recover
from repro.core.state_graph import StateGraph
from repro.graphs import all_prefixes, all_topological_sorts
from repro.graphs.algorithms import restrict_order
from repro.workloads.opgen import OpSequenceSpec, random_operations

SPEC = OpSequenceSpec(n_operations=6, n_variables=3)


class TestPrefixStateReachability:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_any_total_order_of_a_prefix_reaches_its_state(self, seed):
        """§2.4's reachability claim, checked on every conflict prefix
        and every (bounded) linear extension of it."""
        ops = random_operations(seed, SPEC)
        conflict = ConflictGraph(ops)
        initial = State()
        graph = StateGraph.conflict_state_graph(conflict, initial)
        for prefix_names in all_prefixes(conflict.dag):
            determined = graph.determined_state(initial, within=prefix_names)
            order_dag = restrict_order(conflict.dag, prefix_names)
            for names in all_topological_sorts(order_dag, limit=8):
                sequence = [conflict.operation(name) for name in names]
                assert run_sequence(sequence, initial) == determined

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_installation_prefix_states_valid_state_graphs(self, seed):
        """Installation state graphs stay well-formed state graphs."""
        ops = random_operations(seed, SPEC)
        installation = InstallationGraph(ConflictGraph(ops))
        installation.state_graph(State()).validate()


class TestLogOrderIndifference:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_recovery_identical_over_all_log_linearizations(self, seed):
        """Lemma 1 at the recovery level: any conflict-consistent log
        order yields the same recovered state and the same redo set."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=5, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        # Fix one crash configuration: a nontrivial installation prefix.
        prefixes = sorted(
            all_prefixes(installation.dag), key=len
        )
        prefix_names = prefixes[len(prefixes) // 2]
        prefix = {conflict.operation(name) for name in prefix_names}
        state = installation.determined_state(prefix, initial)
        final = conflict.final_state(initial)
        variables = set()
        for op in ops:
            variables |= op.variables()

        outcomes = []
        for extension in conflict.all_linear_extensions(limit=10):
            log = Log.from_operations(extension)
            assert log.is_log_for(conflict)
            outcome = recover(state, log, checkpoint=prefix)
            assert outcome.state.agrees_with(final, variables)
            outcomes.append(frozenset(op.name for op in outcome.redo_set))
        assert len(set(outcomes)) == 1  # same redo set every time

    def test_recovery_is_idempotent(self, opq, initial_state):
        """Recovering an already-recovered state replays to the same
        final state (checkpointing what the first pass installed)."""
        O, P, Q = opq
        conflict = ConflictGraph(list(opq))
        log = Log.from_operations(list(opq))
        first = recover(initial_state, log)
        second = recover(first.state, log, checkpoint=first.redo_set | first.installed)
        assert second.state == first.state
        third = recover(first.state, log)  # full replay against final state?
        # Full re-replay against the final state is NOT generally correct
        # (operations are not idempotent); the checkpoint is what makes
        # re-recovery safe.  Verify the failure mode exists:
        assert third.state != first.state or all(
            op.writes_blindly(v) for op in (O, P, Q) for v in op.write_set
        )


class TestVersionChains:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_writers_of_each_variable_totally_ordered(self, seed):
        ops = random_operations(seed, SPEC)
        conflict = ConflictGraph(ops)
        graph = StateGraph.conflict_state_graph(conflict, State())
        for variable in {v for op in ops for v in op.write_set}:
            writers = graph.writers_of(variable)
            for earlier, later in zip(writers, writers[1:]):
                assert conflict.dag.has_path(earlier, later)

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_execution_passes_through_every_version(self, seed):
        """A multi-version store retaining writes(n) per node holds every
        value the variable ever takes: the sequence of values along the
        execution equals the version chain."""
        from repro.core.model import state_sequence

        ops = random_operations(seed, SPEC)
        conflict = ConflictGraph(ops)
        initial = State()
        graph = StateGraph.conflict_state_graph(conflict, initial)
        states = state_sequence(ops, initial)
        for variable in {v for op in ops for v in op.write_set}:
            chain = [graph.writes(node)[variable] for node in graph.writers_of(variable)]
            observed = []
            for op, post in zip(ops, states[1:]):
                if variable in op.write_set:
                    observed.append(post[variable])
            assert observed == chain
