"""Unit and property tests for installation graphs (§3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.expr import Var
from repro.core.installation import InstallationGraph, vldb95_dag
from repro.core.model import State
from repro.graphs import count_prefixes
from repro.workloads.opgen import OpSequenceSpec, random_operations
from tests.conftest import make_ops


class TestEdgeRemoval:
    def test_pure_wr_edge_removed(self, opq, opq_conflict, opq_installation):
        """Figure 5: the O -> P write-read edge disappears."""
        O, P, Q = opq
        assert opq_conflict.has_edge(O, P)
        assert not opq_installation.has_edge(O, P)

    def test_mixed_label_edges_survive(self, opq, opq_installation):
        O, P, Q = opq
        assert opq_installation.has_edge(O, Q)  # ww + wr + rw
        assert opq_installation.has_edge(P, Q)  # rw

    def test_removed_edges_listing(self, opq, opq_installation):
        O, P, Q = opq
        assert opq_installation.removed_edges() == [(O, P)]

    def test_writers_remain_ordered(self):
        """ww edges always survive, so common writers stay comparable."""
        ops = make_ops(("W1", "x", 1), ("W2", "x", 2))
        installation = InstallationGraph(ConflictGraph(ops))
        assert installation.has_edge(*ops)


class TestPrefixes:
    def test_figure5_extra_prefix(self, opq, opq_installation):
        """{P} is an installation-graph prefix but not a conflict prefix."""
        O, P, Q = opq
        assert opq_installation.is_prefix({P})
        assert not opq_installation.conflict.is_prefix({P})

    def test_conflict_prefixes_are_installation_prefixes(self, opq, opq_installation):
        O, P, Q = opq
        for prefix in [set(), {O}, {O, P}, {O, P, Q}]:
            assert opq_installation.conflict.is_prefix(prefix)
            assert opq_installation.is_prefix(prefix)

    def test_prefix_enumeration(self, opq, opq_installation):
        O, P, Q = opq
        prefixes = set(opq_installation.prefixes())
        assert prefixes == {
            frozenset(),
            frozenset({O}),
            frozenset({P}),
            frozenset({O, P}),
            frozenset({O, P, Q}),
        }

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_installation_admits_at_least_as_many_prefixes(self, seed):
        """E7's invariant: removing edges only adds prefixes."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=7, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        assert count_prefixes(installation.dag) >= count_prefixes(conflict.dag)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_every_conflict_prefix_is_installation_prefix(self, seed):
        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        from repro.graphs import all_prefixes

        for prefix in all_prefixes(conflict.dag):
            assert installation.dag.is_prefix(prefix)


class TestMinimalUninstalled:
    def test_paper_example(self, opq, opq_installation):
        """§3.3: after {O} the minimal uninstalled is P; after the
        installation-only prefix {P} it is O."""
        O, P, Q = opq
        assert opq_installation.minimal_uninstalled({O}) == {P}
        assert opq_installation.minimal_uninstalled({P}) == {O}
        assert opq_installation.minimal_uninstalled(set()) == {O}
        assert opq_installation.minimal_uninstalled({O, P}) == {Q}
        assert opq_installation.minimal_uninstalled({O, P, Q}) == set()


class TestDeterminedState:
    def test_prefix_p_has_final_y(self, opq, opq_installation, initial_state):
        """§3.1: a prefix's state holds the *final* (conflict-order) values
        of the variables its operations write — P's y is 2 (reading O's x),
        not 1."""
        O, P, Q = opq
        determined = opq_installation.determined_state({P}, initial_state)
        assert determined["y"] == 2
        assert determined["x"] == 0  # x untouched by the prefix

    def test_full_prefix_is_final_state(self, opq, opq_installation, initial_state):
        O, P, Q = opq
        determined = opq_installation.determined_state({O, P, Q}, initial_state)
        assert determined == opq_installation.conflict.final_state(initial_state)

    def test_non_prefix_rejected(self, opq, opq_installation, initial_state):
        O, P, Q = opq
        with pytest.raises(ValueError, match="prefix"):
            opq_installation.determined_state({Q}, initial_state)

    def test_state_graph_is_valid(self, opq, opq_installation, initial_state):
        opq_installation.state_graph(initial_state).validate()


class TestVldb95Equivalence:
    def test_blind_overwrite_edge_dropped(self):
        """W1 -> W2 ww edge with W2 blind and no reader between: the
        VLDB'95 graph drops it, the SIGMOD'03 graph keeps it."""
        ops = make_ops(("W1", "x", 1), ("W2", "x", 2))
        conflict = ConflictGraph(ops)
        sigmod = InstallationGraph(conflict)
        vldb = vldb95_dag(conflict)
        assert sigmod.has_edge(*ops)
        assert not vldb.has_edge("W1", "W2")

    def test_reading_overwrite_edge_kept(self):
        ops = make_ops(("W1", "x", 1), ("W2", "x", Var("x") + 1))
        vldb = vldb95_dag(ConflictGraph(ops))
        assert vldb.has_edge("W1", "W2")

    def test_intervening_reader_keeps_transitive_order(self):
        w1, r, w2 = make_ops(
            ("W1", "x", 1), ("R", "y", Var("x")), ("W2", "x", 2)
        )
        vldb = vldb95_dag(ConflictGraph([w1, r, w2]))
        # The direct ww edge may go, but order survives via W1 -> R -> W2.
        assert vldb.has_path("W1", "W2")

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_vldb_prefixes_superset(self, seed):
        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        conflict = ConflictGraph(ops)
        sigmod = InstallationGraph(conflict).dag
        vldb = vldb95_dag(conflict)
        from repro.graphs import all_prefixes

        for prefix in all_prefixes(sigmod):
            assert vldb.is_prefix(prefix)

    def test_naive_ww_removal_is_unsound(self):
        """Why the VLDB'95 construction had to be elaborate: under the
        naive ww-relaxation, a reader ordered *before* the dropped edge
        loses its transitive ordering to the blind writer, and replaying
        it reads the wrong value while the replay of the intermediate
        writer clobbers the installed one."""
        from repro.core.explain import is_explainable
        from repro.core.replay import is_potentially_recoverable

        # R reads x first, then W1 and W2 blind-write x in turn.  The
        # naive rule drops the pure ww edge W1 -> W2, so {W2} becomes a
        # "prefix"; its determined state (x final, y initial) is
        # unrecoverable: R must be replayed to rebuild y, but it reads the
        # wrong x, and omitting it leaves y wrong.
        r, w1, w2 = make_ops(
            ("R", "y", Var("x") + 5),
            ("W1", "x", 7),
            ("W2", "x", 9),
        )
        conflict = ConflictGraph([r, w1, w2])
        installation = InstallationGraph(conflict)
        vldb = vldb95_dag(conflict)
        assert vldb.is_prefix({"W2"})               # naive rule admits it
        assert not installation.is_prefix({w2})     # the simple rule does not
        crashed = State({"x": 9, "y": 0})
        assert not is_potentially_recoverable(conflict, crashed, State())
        assert not is_explainable(installation, crashed, State())

    @given(st.integers(min_value=0, max_value=3_000))
    @settings(max_examples=20, deadline=None)
    def test_explainable_vldb_prefix_states_are_recoverable(self, seed):
        """The §1.3 equivalence at the level that matters: among states
        determined by naive-VLDB prefixes, SIGMOD'03 explainability exactly
        coincides with brute-force potential recoverability in the
        explainable direction (Theorem 3 soundness)."""
        from repro.core.explain import is_explainable
        from repro.core.replay import is_potentially_recoverable
        from repro.core.state_graph import StateGraph
        from repro.graphs import all_prefixes

        ops = random_operations(seed, OpSequenceSpec(n_operations=5, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        vldb = vldb95_dag(conflict)
        initial = State()
        conflict_sg = StateGraph.conflict_state_graph(conflict, initial)

        for prefix_names in all_prefixes(vldb):
            state = initial.copy()
            assignments = {}
            for name in prefix_names:
                for variable, value in conflict_sg.writes(name).items():
                    current = assignments.get(variable)
                    # Last writer in *conflict* order (dropped ww edges can
                    # leave writers unordered in the naive graph itself).
                    if current is None or conflict.dag.has_path(current[0], name):
                        assignments[variable] = (name, value)
            for variable, (_, value) in assignments.items():
                state.set(variable, value)
            if is_explainable(installation, state, initial):
                assert is_potentially_recoverable(conflict, state, initial)
