"""Unit tests for the expression DSL."""

import pytest

from repro.core.expr import (
    Add,
    Concat,
    Const,
    Mul,
    Sub,
    Var,
    assign,
    blind_write,
    increment,
)


class TestEvaluation:
    def test_const(self):
        assert Const(5).evaluate({}) == 5

    def test_var(self):
        assert Var("x").evaluate({"x": 7}) == 7

    def test_var_missing_raises(self):
        with pytest.raises(KeyError):
            Var("x").evaluate({})

    def test_arithmetic(self):
        env = {"x": 3, "y": 4}
        assert (Var("x") + Var("y")).evaluate(env) == 7
        assert (Var("x") - 1).evaluate(env) == 2
        assert (Var("x") * Var("y")).evaluate(env) == 12
        assert (2 + Var("x")).evaluate(env) == 5
        assert (10 - Var("x")).evaluate(env) == 7
        assert (2 * Var("y")).evaluate(env) == 8

    def test_nested(self):
        expr = (Var("x") + 1) * (Var("y") - 2)
        assert expr.evaluate({"x": 2, "y": 5}) == 9

    def test_concat(self):
        expr = Concat(Var("s"), Const("!"))
        assert expr.evaluate({"s": "hi"}) == "hi!"


class TestVariables:
    def test_const_reads_nothing(self):
        assert Const(1).variables() == frozenset()

    def test_var_reads_itself(self):
        assert Var("x").variables() == frozenset({"x"})

    def test_composite_union(self):
        expr = Var("x") + Var("y") * Var("x")
        assert expr.variables() == frozenset({"x", "y"})


class TestStructuralEquality:
    def test_equal_trees(self):
        assert Var("x") + 1 == Add(Var("x"), Const(1))

    def test_unequal_ops(self):
        assert Var("x") + 1 != Sub(Var("x"), Const(1))

    def test_hashable(self):
        assert len({Var("x") + 1, Add(Var("x"), Const(1)), Mul(Var("x"), Const(1))}) == 2

    def test_str_rendering(self):
        assert str(Var("x") + 1) == "(x + 1)"
        assert str(Var("y")) == "y"


class TestOperationConstructors:
    def test_assign_derives_read_set(self):
        op = assign("A", "x", Var("y") + 1)
        assert op.read_set == frozenset({"y"})
        assert op.write_set == frozenset({"x"})

    def test_blind_write_reads_nothing(self):
        op = blind_write("B", "y", 2)
        assert op.read_set == frozenset()
        assert op.write_set == frozenset({"y"})
        assert op.writes_blindly("y")

    def test_increment_reads_target(self):
        op = increment("G", "x")
        assert op.read_set == frozenset({"x"})
        assert op.write_set == frozenset({"x"})
        assert not op.writes_blindly("x")

    def test_assign_str(self):
        op = assign("A", "x", Var("y") + 1)
        assert str(op) == "A: x <- (y + 1)"
