"""Unit and property tests for write graphs (§5) and Corollary 5."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.explain import explains
from repro.core.expr import Var
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.write_graph import WriteGraph, WriteGraphError
from repro.workloads.opgen import OpSequenceSpec, random_operations
from tests.conftest import make_ops


def build(ops, initial=None):
    initial = initial if initial is not None else State()
    return WriteGraph(InstallationGraph(ConflictGraph(list(ops))), initial)


class TestConstruction:
    def test_initial_write_graph_mirrors_installation_graph(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        assert set(wg.node_ids()) == {"O", "P", "Q"}
        assert wg.dag.same_structure(opq_installation.dag)
        assert wg.node("O").writes == {"x": 1}
        assert wg.node("P").writes == {"y": 2}
        assert wg.node("Q").writes == {"x": 3}
        assert all(not node.installed for node in wg.nodes())

    def test_stable_state_starts_initial(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        assert wg.stable_state() == initial_state
        assert wg.audit()


class TestInstall:
    def test_install_in_order(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        wg.install("O")
        assert wg.stable_state()["x"] == 1
        assert wg.audit()
        wg.install("P")
        wg.install("Q")
        assert wg.stable_state() == opq_installation.conflict.final_state(initial_state)
        assert wg.audit()

    def test_install_p_first_is_legal(self, opq, opq_installation, initial_state):
        """Figure 5's extra prefix: P may be installed before O."""
        wg = WriteGraph(opq_installation, initial_state)
        wg.install("P")
        state = wg.stable_state()
        assert state["y"] == 2 and state["x"] == 0
        assert wg.audit()

    def test_install_requires_predecessors(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        with pytest.raises(WriteGraphError, match="predecessor"):
            wg.install("Q")

    def test_minimal_uninstalled_nodes(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        assert {n.node_id for n in wg.minimal_uninstalled_nodes()} == {"O", "P"}
        wg.install("O")
        assert {n.node_id for n in wg.minimal_uninstalled_nodes()} == {"P"}


class TestAddEdge:
    def test_add_edge_constrains_flush_order(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        wg.add_edge("P", "O")  # force P before O (cache-manager choice)
        with pytest.raises(WriteGraphError):
            wg.install("O")
        wg.install("P")
        wg.install("O")

    def test_add_edge_rejects_installed_target(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        wg.install("O")
        with pytest.raises(WriteGraphError, match="installed"):
            wg.add_edge("P", "O")

    def test_add_edge_rejects_cycles(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        with pytest.raises(WriteGraphError, match="cycle"):
            wg.add_edge("Q", "O")


class TestCollapse:
    def test_figure7_collapse_o_and_q(self, opq, opq_installation, initial_state):
        """Figure 7: collapsing the writers of x (O and Q) leaves a write
        graph where P must be installed before the collapsed node."""
        wg = WriteGraph(opq_installation, initial_state)
        merged = wg.collapse(["O", "Q"], new_id="OQ")
        assert merged.ops == frozenset(set(opq) - {opq[1]})
        assert merged.writes == {"x": 3}  # Q is the later writer of x
        assert wg.dag.has_edge("P", "OQ")
        # P is now the only installable node; installing it then OQ works.
        with pytest.raises(WriteGraphError):
            wg.install("OQ")
        wg.install("P")
        wg.install("OQ")
        assert wg.stable_state() == opq_installation.conflict.final_state(initial_state)
        assert wg.audit()

    def test_collapse_preserves_last_writer_values(self, initial_state):
        ops = make_ops(("A", "x", 1), ("B", "x", 2), ("C", "x", 3))
        wg = build(ops)
        merged = wg.collapse(["A", "B", "C"])
        assert merged.writes == {"x": 3}

    def test_collapse_installed_with_uninstalled_installs(self, opq, opq_installation, initial_state):
        """§6: collapsing an uninstalled node into the installed minimum
        node is how systems install — the merged node is installed."""
        wg = WriteGraph(opq_installation, initial_state)
        wg.install("O")
        wg.install("P")
        merged = wg.collapse(["O", "P", "Q"], new_id="disk")
        assert merged.installed
        assert wg.stable_state() == opq_installation.conflict.final_state(initial_state)
        assert wg.audit()

    def test_collapse_rejects_stranding_installed_work(self, initial_state):
        """Collapsing an installed node with an uninstalled one whose
        predecessors are uninstalled would break the installed-prefix
        property."""
        # A chain whose order survives into the write graph needs rw edges
        # (wr-only edges are removed):
        ops = make_ops(
            ("R1", "a", Var("x") + 1),  # reads x
            ("W1", "x", 5),             # rw edge R1 -> W1
            ("R2", "b", Var("a") + Var("x")),  # reads a and x
            ("W2", "a", 6),             # rw edge R2 -> W2 (and R1? R1 writes a: ww/wr)
        )
        wg = build(ops)
        wg.install("R1")
        # Collapsing installed R1 with W2 (whose predecessor R2 is
        # uninstalled) must fail the prefix check.
        with pytest.raises(WriteGraphError, match="uninstalled predecessor"):
            wg.collapse(["R1", "W2"])
        # And the rejected collapse left the graph fully intact.
        assert set(wg.node_ids()) == {"R1", "W1", "R2", "W2"}
        assert wg.audit()

    def test_collapse_rejects_cycle(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        # Collapsing O and Q with P outside is fine (tested above); force a
        # cycle by collapsing O and P? P -> Q and O -> Q both inward; no
        # cycle.  Build an explicit case: chain A -> B -> C, collapse A, C.
        ops = make_ops(
            ("A", "x", Var("x") + 1),
            ("B", "x", Var("x") + 1),
            ("C", "x", Var("x") + 1),
        )
        wg2 = build(ops)
        with pytest.raises(WriteGraphError, match="cycle"):
            wg2.collapse(["A", "C"])

    def test_collapse_requires_two_nodes(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        with pytest.raises(WriteGraphError, match="at least two"):
            wg.collapse(["O"])


class TestRemoveWrite:
    def test_hj_example(self, initial_state):
        """§5 H,J: J's blind write leaves y unexposed after H, so H's node
        need only write x."""
        h, j = make_ops(
            ("H", {"x": Var("x") + 1, "y": Var("y") + 1}),
            ("J", "y", 0),
        )
        wg = build([h, j])
        wg.remove_write("H", "y")
        assert wg.node("H").writes == {"x": 1}
        wg.install("H")
        state = wg.stable_state()
        assert state["x"] == 1 and state["y"] == 0  # y untouched
        assert wg.audit()

    def test_remove_write_rejected_when_uninstalled_reader_exists(self, initial_state):
        """R2 reads W1's value of x and is uninstalled (and not ordered
        before W1): removing the write would starve its replay."""
        w1, r2, w2 = make_ops(
            ("W1", "x", 5),
            ("R2", "y", Var("x") + 1),
            ("W2", "x", 9),
        )
        wg = build([w1, r2, w2])
        with pytest.raises(WriteGraphError, match="reads it"):
            wg.remove_write("W1", "x")

    def test_remove_write_rejected_when_overwriter_reads(self, opq, opq_installation, initial_state):
        """Q overwrites O's x but *reads* it first, so O's write is both
        read and effectively final for Q's replay — not removable."""
        wg = WriteGraph(opq_installation, initial_state)
        with pytest.raises(WriteGraphError):
            wg.remove_write("O", "x")

    def test_remove_write_allowed_when_reader_installed(self, initial_state):
        """W1 blind-writes x, R2 reads it (wr edge — gone from the write
        graph, so R2 can install first), W2 blind-overwrites.  With R2
        installed, W1's write of x may be removed."""
        w1, r2, w2 = make_ops(
            ("W1", "x", 5),
            ("R2", "y", Var("x") + 1),
            ("W2", "x", 9),
        )
        wg = build([w1, r2, w2])
        wg.install("R2")  # legal: the w-r edge W1 -> R2 is not in the graph
        wg.remove_write("W1", "x")
        wg.install("W1")
        assert wg.node("W1").writes == {}
        assert wg.audit()

    def test_remove_write_allowed_when_reader_precedes(self, initial_state):
        """R reads the pre-W1 version of x and W2 blind-overwrites: W1's
        write may be removed even while R is uninstalled."""
        r, w1, w2 = make_ops(
            ("R", "y", Var("x") + 1),
            ("W1", "x", 5),
            ("W2", "x", 9),
        )
        wg = build([r, w1, w2])
        wg.remove_write("W1", "x")
        assert wg.node("W1").writes == {}

    def test_remove_write_rejected_without_overwriter(self, initial_state):
        """Removing the final write of a variable is never legal: the value
        would be lost forever."""
        w1, r = make_ops(("W1", "x", 5), ("R", "y", Var("x") + 1))
        wg = build([w1, r])
        with pytest.raises(WriteGraphError, match="value is final"):
            wg.remove_write("W1", "x")

    def test_remove_write_rejected_on_installed_node(self, initial_state):
        w1, w2 = make_ops(("W1", "x", 5), ("W2", "x", 9))
        wg = build([w1, w2])
        wg.install("W1")
        with pytest.raises(WriteGraphError, match="installed node"):
            wg.remove_write("W1", "x")

    def test_remove_write_missing_variable(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        with pytest.raises(WriteGraphError, match="does not write"):
            wg.remove_write("P", "x")


def scratch_corollary5(wg: WriteGraph) -> bool:
    """Corollary 5, recomputed from first principles: nothing the live
    graph caches (audit memo, exposure memo, running state) is used —
    just the definitional ``explains`` over the installed operations and
    the freshly-derived stable state."""
    installed = wg.installed_operations()
    if not wg.installation.is_prefix(installed):
        return False
    return explains(wg.installation, installed, wg.stable_state(), wg.initial)


def drive_randomly(wg: WriteGraph, rng, steps: int) -> None:
    """Apply ``steps`` random transformations (legal or rejected), and
    after *every* attempt — including rejected ones, which must leave
    every cache coherent — assert the live ``audit()`` agrees with the
    from-scratch Corollary 5 verdict."""
    for _ in range(steps):
        choice = rng.random()
        try:
            if choice < 0.35:
                candidates = wg.minimal_uninstalled_nodes()
                if candidates:
                    wg.install(rng.choice(candidates).node_id)
            elif choice < 0.55:
                ids = wg.node_ids()
                if len(ids) >= 2:
                    wg.collapse(rng.sample(ids, 2))
            elif choice < 0.7:
                ids = wg.node_ids()
                if len(ids) >= 2:
                    wg.add_edge(*rng.sample(ids, 2))
            elif choice < 0.85:
                node = rng.choice(wg.nodes())
                if node.writes:
                    wg.remove_write(node.node_id, rng.choice(sorted(node.writes)))
            else:
                wg.elide_unexposed()
        except WriteGraphError:
            pass  # illegal random move: rejected, state unchanged
        live = wg.audit()
        assert live == scratch_corollary5(wg), (
            "live audit() diverged from the from-scratch Corollary 5 check"
        )
        assert live, "a legal-or-rejected transformation broke explainability"


class TestLiveAuditAgreement:
    """The memoized incremental audit must be *the same function* as the
    definitional check, under every transformation order and under live
    appends arriving mid-evolution."""

    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_audit_agrees_with_scratch_check(self, seed, steps_seed):
        from random import Random

        ops = random_operations(
            seed, OpSequenceSpec(n_operations=7, n_variables=3, blind_ratio=0.4)
        )
        wg = WriteGraph(InstallationGraph(ConflictGraph(ops)), State())
        drive_randomly(wg, Random(steps_seed * 7919 + seed), steps=12)

    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_audit_agrees_under_live_appends(self, seed, steps_seed):
        """A write graph born before most of the log exists: operations
        are appended live (the feed extends the graph in O(degree)),
        interleaved with random transformations, and the incremental
        audit must track the from-scratch verdict throughout."""
        from random import Random

        ops = random_operations(
            seed, OpSequenceSpec(n_operations=8, n_variables=3, blind_ratio=0.4)
        )
        conflict = ConflictGraph(ops[:2])
        wg = WriteGraph(InstallationGraph(conflict), State())
        rng = Random(steps_seed * 104729 + seed)
        for operation in ops[2:]:
            conflict.append(operation)
            assert operation.name in wg.node_ids()
            assert wg.audit() == scratch_corollary5(wg)
            drive_randomly(wg, rng, steps=3)
        # Everything appended is accounted for exactly once.
        assert sum(len(node.ops) for node in wg.nodes()) == len(ops)


class TestCorollary5:
    @given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=0, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_random_write_graph_evolutions_stay_recoverable(self, seed, steps_seed):
        """Drive a write graph with random legal operations; after every
        step the stable state must be explainable (audit) and hence
        potentially recoverable — Corollary 5."""
        from random import Random

        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        installation = InstallationGraph(ConflictGraph(ops))
        initial = State()
        wg = WriteGraph(installation, initial)
        rng = Random(steps_seed * 7919 + seed)
        for _ in range(10):
            choice = rng.random()
            try:
                if choice < 0.45:
                    candidates = wg.minimal_uninstalled_nodes()
                    if candidates:
                        wg.install(rng.choice(candidates).node_id)
                elif choice < 0.7:
                    ids = wg.node_ids()
                    if len(ids) >= 2:
                        wg.collapse(rng.sample(ids, 2))
                elif choice < 0.85:
                    ids = wg.node_ids()
                    if len(ids) >= 2:
                        wg.add_edge(*rng.sample(ids, 2))
                else:
                    node = rng.choice(wg.nodes())
                    if node.writes:
                        wg.remove_write(node.node_id, rng.choice(sorted(node.writes)))
            except WriteGraphError:
                continue  # illegal random move: rejected, state unchanged
            assert wg.audit(), "write-graph evolution broke explainability"

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_flush_in_write_graph_order_recovers(self, seed):
        """Install minimal nodes one at a time (a cache flushing in write
        graph order); every intermediate stable state replays to the final
        state via Theorem 3."""
        from repro.core.replay import recovers

        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        wg = WriteGraph(installation, initial)
        while True:
            candidates = wg.minimal_uninstalled_nodes()
            if not candidates:
                break
            wg.install(candidates[0].node_id)
            stable = wg.stable_state()
            uninstalled = [
                op for op in conflict.operations
                if op not in wg.installed_operations()
            ]
            assert recovers(conflict, uninstalled, stable, initial)
        assert wg.stable_state() == conflict.final_state(initial)
