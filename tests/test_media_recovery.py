"""Media recovery: a stale backup is just an older explainable state.

The framework's take on archive recovery: a fuzzy online backup captures
the stable state at some instant; that state was explained by whatever
prefix was then installed, so Theorem 3 says replaying the surviving log
suffix recovers.  ``full_scan`` recovery makes it so even though the
backup is older than the latest checkpoint.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.methods import METHODS, Machine
from repro.workloads.kv import KVWorkloadSpec, apply_to_oracle, generate_kv_workload


def build(method):
    return METHODS[method](Machine(cache_capacity=4), n_pages=4)


@pytest.fixture(params=sorted(METHODS))
def method_name(request):
    return request.param


class TestMediaRecovery:
    def test_backup_plus_log_recovers_everything(self, method_name):
        kv = build(method_name)
        for i in range(10):
            kv.put(f"k{i}", i)
        kv.commit()
        kv.checkpoint()
        backup = kv.backup()          # fuzzy online backup, mid-history
        for i in range(10, 20):
            kv.put(f"k{i}", i)
        kv.commit()
        kv.checkpoint()               # checkpoint NEWER than the backup
        for i in range(20, 25):
            kv.put(f"k{i}", i)
        kv.commit()

        kv.media_failure()            # the disk is gone
        kv.restore_from_backup(backup)
        assert kv.dump() == {f"k{i}": i for i in range(25)}

    def test_media_recovery_with_read_modify_writes(self, method_name):
        kv = build(method_name)
        kv.put("counter", 0)
        kv.commit()
        backup = kv.backup()
        for _ in range(5):
            kv.add("counter", 10)
        kv.commit()
        kv.checkpoint()
        kv.media_failure()
        kv.restore_from_backup(backup)
        assert kv.get("counter") == 50

    def test_empty_backup_is_a_valid_archive(self, method_name):
        kv = build(method_name)
        backup = kv.backup()          # day-zero archive
        for i in range(8):
            kv.put(f"k{i}", i)
        kv.commit()
        kv.media_failure()
        kv.restore_from_backup(backup)
        assert kv.dump() == {f"k{i}": i for i in range(8)}

    def test_uncommitted_tail_is_lost_in_media_failure_too(self, method_name):
        kv = build(method_name)
        kv.put("durable", 1)
        kv.commit()
        backup = kv.backup()
        kv.put("volatile", 2)         # never committed
        kv.media_failure()
        kv.restore_from_backup(backup)
        assert kv.get("durable") == 1
        assert kv.get("volatile") is None

    def test_recovered_system_keeps_working(self, method_name):
        kv = build(method_name)
        kv.put("a", 1)
        kv.commit()
        backup = kv.backup()
        kv.put("b", 2)
        kv.commit()
        kv.media_failure()
        kv.restore_from_backup(backup)
        kv.put("c", 3)
        kv.commit()
        kv.crash()
        kv.recover()
        assert kv.dump() == {"a": 1, "b": 2, "c": 3}

    @given(st.integers(min_value=0, max_value=5_000), st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_random_backup_points(self, seed, cut):
        stream = generate_kv_workload(
            seed,
            KVWorkloadSpec(
                n_operations=30, n_keys=6, put_ratio=0.6, add_ratio=0.3,
                delete_ratio=0.1,
            ),
        )
        mutations = [c for c in stream if c[0] != "get"]
        for method in ("physical", "physiological"):
            kv = build(method)
            backup = None
            for index, command in enumerate(mutations):
                if index == cut:
                    kv.commit()
                    backup = kv.backup()
                kv.apply(command)
            kv.commit()
            if backup is None:
                kv.commit()
                backup = kv.backup()
            kv.media_failure()
            kv.restore_from_backup(backup)
            assert kv.dump() == apply_to_oracle(mutations)
