"""Unit tests for pages, the disk, and the shadow store."""

import pytest

from repro.storage import Disk, LostWriteFault, Page, ShadowStore, TornWriteFault
from repro.storage.page import UNTAGGED


class TestPage:
    def test_put_get_delete(self):
        page = Page("p1")
        page.put("k1", 10)
        assert page.get("k1") == 10
        assert page.get("missing") is None
        assert page.get("missing", -1) == -1
        page.delete("k1")
        assert page.get("k1") is None

    def test_lsn_stamping(self):
        page = Page("p1")
        assert page.lsn == UNTAGGED
        page.put("k", 1, lsn=5)
        assert page.lsn == 5
        page.put("k", 2, lsn=9)
        assert page.lsn == 9

    def test_lsn_cannot_regress(self):
        page = Page("p1")
        page.stamp(5)
        with pytest.raises(ValueError, match="regress"):
            page.stamp(3)

    def test_copy_is_independent(self):
        page = Page("p1", {"k": 1}, lsn=3)
        clone = page.copy()
        clone.put("k", 2)
        assert page.get("k") == 1
        assert clone.lsn == 3

    def test_equality_and_same_contents(self):
        a = Page("p1", {"k": 1}, lsn=3)
        b = Page("p1", {"k": 1}, lsn=3)
        c = Page("p1", {"k": 1}, lsn=9)
        assert a == b
        assert a != c
        assert a.same_contents(c)

    def test_size_bytes_grows_with_contents(self):
        small = Page("p1", {"k": 1})
        big = Page("p1", {"k": "a much longer value" * 4})
        assert big.size_bytes() > small.size_bytes()

    def test_iteration_sorted(self):
        page = Page("p1", {"b": 2, "a": 1})
        assert list(page) == [("a", 1), ("b", 2)]


class TestDisk:
    def test_write_read_roundtrip(self):
        disk = Disk()
        disk.write_page(Page("p1", {"k": 1}, lsn=4))
        stored = disk.read_page("p1")
        assert stored == Page("p1", {"k": 1}, lsn=4)

    def test_read_returns_snapshot(self):
        disk = Disk()
        disk.write_page(Page("p1", {"k": 1}))
        copy = disk.read_page("p1")
        copy.put("k", 99)
        assert disk.read_page("p1").get("k") == 1

    def test_write_takes_snapshot(self):
        disk = Disk()
        page = Page("p1", {"k": 1})
        disk.write_page(page)
        page.put("k", 99)  # later mutation must not leak to disk
        assert disk.read_page("p1").get("k") == 1

    def test_missing_page_raises(self):
        with pytest.raises(KeyError):
            Disk().read_page("nope")

    def test_counters(self):
        disk = Disk()
        disk.write_page(Page("p1", {"k": 1}))
        disk.write_page(Page("p2", {"k": 2}))
        assert disk.page_writes == 2
        assert disk.bytes_written > 0

    def test_crash_preserves_contents(self):
        disk = Disk()
        disk.write_page(Page("p1", {"k": 1}))
        disk.crash()
        assert disk.read_page("p1").get("k") == 1

    def test_lost_write_fault(self):
        disk = Disk()
        disk.write_page(Page("p1", {"k": 1}))
        disk.arm_fault(LostWriteFault("p1"))
        disk.write_page(Page("p1", {"k": 2}))
        assert disk.read_page("p1").get("k") == 1  # write silently lost
        disk.write_page(Page("p1", {"k": 3}))
        assert disk.read_page("p1").get("k") == 3  # fault fires once

    def test_torn_write_fault(self):
        disk = Disk()
        disk.write_page(Page("p1", {"a": 0, "b": 0}))
        disk.arm_fault(TornWriteFault("p1", keep_cells=1))
        disk.write_page(Page("p1", {"a": 1, "b": 1}))
        stored = disk.read_page("p1")
        assert stored.get("a") == 1   # first cell made it
        assert stored.get("b") == 0   # second did not

    def test_snapshot(self):
        disk = Disk()
        disk.write_page(Page("p1", {"k": 1}))
        snap = disk.snapshot()
        disk.write_page(Page("p1", {"k": 2}))
        assert snap["p1"].get("k") == 1


class TestShadowStore:
    def test_initial_directory(self):
        store = ShadowStore(Disk())
        assert store.current_directory() == "A"
        assert store.staging_directory() == "B"
        assert store.checkpoint_lsn() == -1

    def test_staging_does_not_touch_stable(self):
        store = ShadowStore(Disk())
        store.stage_page(Page("p1", {"k": 1}))
        assert not store.has_current("p1")

    def test_swing_installs_staged_pages(self):
        store = ShadowStore(Disk())
        store.stage_page(Page("p1", {"k": 1}))
        store.swing_pointer(checkpoint_lsn=7)
        assert store.current_directory() == "B"
        assert store.read_current("p1").get("k") == 1
        assert store.checkpoint_lsn() == 7

    def test_swing_carries_unstaged_pages(self):
        store = ShadowStore(Disk())
        store.stage_page(Page("p1", {"k": 1}))
        store.swing_pointer(0)
        # Second round only stages p2; p1 must survive the next swing.
        store.stage_page(Page("p2", {"k": 2}))
        store.swing_pointer(1)
        assert store.read_current("p1").get("k") == 1
        assert store.read_current("p2").get("k") == 2

    def test_crash_before_swing_loses_staging_only(self):
        disk = Disk()
        store = ShadowStore(disk)
        store.stage_page(Page("p1", {"k": 1}))
        store.swing_pointer(0)
        store.stage_page(Page("p1", {"k": 99}))  # staged, not swung
        disk.crash()
        recovered = ShadowStore(disk)
        recovered.abandon_staging()
        assert recovered.read_current("p1").get("k") == 1
        assert recovered.checkpoint_lsn() == 0

    def test_reswing_overwrites_staged_versions(self):
        store = ShadowStore(Disk())
        store.stage_page(Page("p1", {"k": 1}))
        store.swing_pointer(0)
        store.stage_page(Page("p1", {"k": 2}))
        store.swing_pointer(1)
        assert store.read_current("p1").get("k") == 2

    def test_current_page_ids(self):
        store = ShadowStore(Disk())
        store.stage_page(Page("p2", {}))
        store.stage_page(Page("p1", {}))
        store.swing_pointer(0)
        assert store.current_page_ids() == ["p1", "p2"]
