"""§7's frontier: recovery beyond the theory's sufficient condition.

The paper closes by noting "there have been interesting examples in
which operations can be replayed even when they are not applicable and
write different values during recovery.  The key is that these writes
are to the unexposed portion of the state, and hence the values written
are irrelevant."  These tests construct such examples and quantify the
gap between *explainable* (the theory's sufficient condition) and
*potentially recoverable* (the semantic property).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.explain import is_applicable, is_explainable
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.replay import is_potentially_recoverable, recovers
from repro.workloads.opgen import OpSequenceSpec, random_operations
from tests.conftest import make_ops
from repro.core.expr import Var


def frontier_example():
    """A: <x <- 5; y <- y+1>;  B: x <- x+3;  C: y <- x.

    Crash state: only A's write of *y* is installed (x=0, y=1) — a torn
    install of the multi-variable operation A.  No installation prefix
    explains this state ({A} would demand x=5; the empty prefix would
    demand y=0), yet replaying everything recovers: A re-reads y=1
    (wrong — it originally read 0) and writes the wrong y=2, but C
    blind-overwrites y before anything reads it.
    """
    a, b, c = make_ops(
        ("A", {"x": 5, "y": Var("y") + 1}),
        ("B", "x", Var("x") + 3),
        ("C", "y", Var("x") * 1),
    )
    return a, b, c


CRASHED = {"x": 0, "y": 1}


class TestFrontierExample:
    def test_state_is_not_explainable(self, initial_state):
        a, b, c = frontier_example()
        installation = InstallationGraph(ConflictGraph([a, b, c]))
        assert not is_explainable(installation, State(CRASHED), initial_state)

    def test_but_full_replay_recovers(self, initial_state):
        a, b, c = frontier_example()
        conflict = ConflictGraph([a, b, c])
        crashed = State(CRASHED)
        assert recovers(conflict, {a, b, c}, crashed, initial_state)
        assert is_potentially_recoverable(conflict, crashed, initial_state)

    def test_the_replayed_operation_was_not_applicable(self, initial_state):
        """A reads y=1 during the recovering replay instead of the 0 it
        read originally — exactly §7's 'not applicable' situation."""
        a, b, c = frontier_example()
        installation = InstallationGraph(ConflictGraph([a, b, c]))
        assert not is_applicable(installation, a, State(CRASHED), initial_state)

    def test_wrong_write_lands_unexposed(self, initial_state):
        """The wrong y value A writes is blind-overwritten by C before
        any operation reads it — the write is harmless."""
        a, b, c = frontier_example()
        after_a = a.apply(State(CRASHED))
        assert after_a["y"] == 2           # wrong (original execution wrote 1)
        after_all = c.apply(b.apply(after_a))
        final = ConflictGraph([a, b, c]).final_state(initial_state)
        assert after_all == final           # ...and it never mattered


class TestGapQuantification:
    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=10, deadline=None)
    def test_explainable_is_strictly_sufficient(self, seed):
        """Explainable => recoverable always; the converse fails on a
        measurable fraction of states (the §7 frontier)."""
        import itertools

        from repro.core.state_graph import StateGraph

        ops = random_operations(
            seed, OpSequenceSpec(n_operations=4, n_variables=2)
        )
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        sg = StateGraph.conflict_state_graph(conflict, initial)
        values = {"v0": {0}, "v1": {0}}
        for op in ops:
            for variable, value in sg.writes(op.name).items():
                values[variable].add(value)
        for v0, v1 in itertools.product(
            sorted(values["v0"], key=repr), sorted(values["v1"], key=repr)
        ):
            state = State({"v0": v0, "v1": v1})
            if is_explainable(installation, state, initial):
                assert is_potentially_recoverable(conflict, state, initial)
            # The reverse implication is deliberately NOT asserted: §7
            # gap states exist (see frontier_example); the benchmark
            # E11 measures how common they are.
