"""Operational telemetry over the wire: latency quantiles in ``stats``,
the ``health`` op, the ``top`` dashboard, cold-start progress reporting,
and the ``postmortem`` CLI — the observable surface this PR adds."""

import io

import pytest

from repro.engine import EngineSpec, KVDatabase
from repro.server import KVClient, KVServer
from repro.server.top import render_top, run_top
from repro.shard import ShardedDatabase


@pytest.fixture()
def served_engine(tmp_path):
    db = KVDatabase(
        method="physiological", log_dir=tmp_path / "wal", commit_pipeline=True
    )
    server = KVServer(db)
    server.serve_background()
    yield server
    server.close()


@pytest.fixture()
def served_deployment(tmp_path):
    sdb = ShardedDatabase.create(
        root=tmp_path / "dep",
        n_shards=4,
        spec=EngineSpec(method="physiological", commit_pipeline=True),
    )
    server = KVServer(sdb)
    server.serve_background()
    yield sdb, server
    server.close()


class TestLatencyQuantiles:
    def test_stats_carry_per_op_quantiles(self, served_engine):
        with KVClient(*served_engine.address) as client:
            for i in range(30):
                client.put(f"k{i}", i)
            client.commit()
            stats = client.stats()
        latency = stats["latency"]
        assert latency["put"]["count"] == 30
        for suffix in ("mean", "p50", "p95", "p99"):
            assert latency["put"][suffix] > 0.0
        assert latency["put"]["p50"] <= latency["put"]["p99"]
        assert latency["commit"]["count"] == 1

    def test_uptime_and_telemetry_flag_in_stats(self, served_engine):
        with KVClient(*served_engine.address) as client:
            stats = client.stats()
        assert stats["telemetry"] is True
        assert stats["uptime_s"] >= 0.0

    def test_telemetry_off_skips_latency(self, tmp_path):
        db = KVDatabase(method="physiological", log_dir=tmp_path / "wal")
        server = KVServer(db, telemetry=False)
        server.serve_background()
        try:
            with KVClient(*server.address) as client:
                client.put("a", 1)
                client.commit()
                stats = client.stats()
            assert stats["telemetry"] is False
            assert "latency" not in stats
            assert server.latency_summaries() == {}
        finally:
            server.close()

    def test_malformed_op_does_not_mint_arbitrary_metric_names(
        self, served_engine
    ):
        from repro.server.client import ServerError

        with KVClient(*served_engine.address) as client:
            with pytest.raises(ServerError):
                client.request(op=12345)
            client.ping()
        summaries = served_engine.latency_summaries()
        assert "malformed" in summaries
        assert summaries["malformed"]["count"] == 1


class TestHealthOp:
    def test_single_engine_health(self, served_engine):
        with KVClient(*served_engine.address) as client:
            client.put("a", 1)
            client.put("b", 2)
            client.commit()
            health = client.health()
        assert health["stable_lsn"] >= 1  # LSNs start at 0; two are stable
        assert health["pipeline_depth"] == 0  # quiesced after commit
        assert health["dirty_pages"] >= 0
        assert health["method"] == "physiological"
        assert health["uptime_s"] >= 0.0
        assert health["sessions_active"] >= 1

    def test_deployment_health_reports_every_shard(self, served_deployment):
        _, server = served_deployment
        with KVClient(*server.address) as client:
            for i in range(40):
                client.put(f"key{i}", i)
            client.commit()
            health = client.health()
        assert health["n_shards"] == 4
        assert len(health["shards"]) == 4
        for shard in health["shards"]:
            assert shard["stable_lsn"] >= 0
            assert shard["pipeline_depth"] == 0
            assert shard["dirty_pages"] >= 0
        assert health["stable_lsn_total"] == sum(
            s["stable_lsn"] for s in health["shards"]
        )
        assert health["dirty_pages_total"] == sum(
            s["dirty_pages"] for s in health["shards"]
        )

    def test_pipeline_depth_counts_unforced_suffix(self, tmp_path):
        db = KVDatabase(
            method="physiological",
            log_dir=tmp_path / "wal",
            group_commit=64,  # keep appends unforced until commit
        )
        server = KVServer(db, session_commit_every=0)
        server.serve_background()
        try:
            with KVClient(*server.address) as client:
                for i in range(5):
                    client.put(f"k{i}", i)
                health = client.health()
                assert health["pipeline_depth"] == 5
                client.sync()  # the hard barrier drains the tail
                assert client.health()["pipeline_depth"] == 0
        finally:
            server.close()


class TestHeartbeat:
    def test_heartbeats_carry_health_into_the_tracer(self, tmp_path):
        """The default serve telemetry: engine untraced, the server's
        own tracer emits a health snapshot every interval — the flight
        ring's steady-state diet."""
        import time

        from repro.obs import RingBufferSink, Tracer

        db = KVDatabase(
            method="physiological",
            log_dir=tmp_path / "wal",
            commit_pipeline=True,
        )
        sink = RingBufferSink()
        server = KVServer(db, tracer=Tracer(sink), heartbeat_interval=0.05)
        server.serve_background()
        try:
            with KVClient(*server.address) as client:
                client.put("a", 1)
                client.put("b", 2)
                client.commit()
            beats = []
            deadline = time.monotonic() + 5.0
            while not beats and time.monotonic() < deadline:
                beats = [
                    r
                    for r in sink
                    if r["type"] == "event" and r["name"] == "server.heartbeat"
                ]
                time.sleep(0.01)
            assert beats, "no heartbeat within 5s at a 50ms interval"
            fields = beats[-1]["fields"]
            assert fields["stable_lsn"] >= 1
            assert fields["dirty_pages"] >= 0
            assert fields["uptime_s"] >= 0.0
            assert "sessions" in fields
        finally:
            server.close()
        assert server._heartbeat_thread is None  # close() joined it

    def test_sharded_heartbeat_lists_per_shard_lsns(self, tmp_path):
        import time

        from repro.obs import RingBufferSink, Tracer

        sdb = ShardedDatabase.create(
            root=tmp_path / "dep",
            n_shards=3,
            spec=EngineSpec(method="physiological", commit_pipeline=True),
        )
        sink = RingBufferSink()
        server = KVServer(sdb, tracer=Tracer(sink), heartbeat_interval=0.05)
        server.serve_background()
        try:
            with KVClient(*server.address) as client:
                for i in range(30):
                    client.put(f"key{i}", i)
                client.commit()
            beats = []
            deadline = time.monotonic() + 5.0
            while not beats and time.monotonic() < deadline:
                beats = [
                    r
                    for r in sink
                    if r["type"] == "event"
                    and r["name"] == "server.heartbeat"
                    and sum(r["fields"].get("stable_lsns", [])) > 0
                ]
                time.sleep(0.01)
            assert beats, "no heartbeat with stable traffic within 5s"
            fields = beats[-1]["fields"]
            assert fields["n_shards"] == 3
            assert len(fields["stable_lsns"]) == 3
            assert fields["stable_lsn_total"] == sum(fields["stable_lsns"])
        finally:
            server.close()

    def test_no_tracer_means_no_heartbeat_thread(self, served_engine):
        # The fixture's db has no tracer: NULL_TRACER, no thread at all.
        assert served_engine._heartbeat_thread is None


class TestTopDashboard:
    def test_run_top_once_renders_a_frame(self, served_deployment):
        _, server = served_deployment
        with KVClient(*server.address) as client:
            for i in range(20):
                client.put(f"key{i}", i)
            client.commit()
        host, port = server.address
        out = io.StringIO()
        assert run_top(host, port, once=True, out=out) == 0
        frame = out.getvalue()
        assert f"{host}:{port}" in frame
        assert "telemetry on" in frame
        assert "shard" in frame
        assert "put" in frame  # the latency table

    def test_rates_come_from_deltas(self):
        stats0 = {"pipeline_commits": 100, "method_operations": 10,
                  "durable_fsyncs": 5, "log_forces": 0, "telemetry": True}
        stats1 = {"pipeline_commits": 300, "method_operations": 20,
                  "durable_fsyncs": 10, "log_forces": 0, "telemetry": True}
        frame = render_top(
            ("h", 1), stats1, {}, prev_stats=stats0, dt=2.0
        )
        assert "commits=300 (100/s)" in frame

    def test_totals_roll_up_shard_prefixes(self):
        stats = {
            "n_shards": 2,
            "telemetry": True,
            "shard00_pipeline_commits": 3,
            "shard01_pipeline_commits": 4,
        }
        frame = render_top(("h", 1), stats, {})
        assert "commits=7" in frame

    def test_cli_top_once_against_live_server(self, served_deployment, capsys):
        from repro.__main__ import main

        _, server = served_deployment
        host, port = server.address
        assert main(["top", "--host", host, "--port", str(port), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "\x1b[2J" not in out  # --once never clears the screen


class TestColdStartProgress:
    def _filled_root(self, tmp_path, n_shards=3):
        root = tmp_path / "dep"
        sdb = ShardedDatabase.create(
            root=root,
            n_shards=n_shards,
            spec=EngineSpec(method="physiological", commit_pipeline=True),
        )
        for i in range(60):
            sdb.execute(("put", f"key{i}", i))
        sdb.sync()
        sdb.close()
        return root

    def test_on_progress_fires_per_shard_with_time_to_ready(self, tmp_path):
        root = self._filled_root(tmp_path)
        seen = []
        sdb = ShardedDatabase.cold_start(
            root, processes=0, on_progress=seen.append
        )
        try:
            assert sorted(r["shard"] for r in seen) == [0, 1, 2]
            for result in seen:
                assert result["time_to_ready_s"] > 0.0
                assert "pages" not in result  # callbacks get the slim view
            report = sdb.cold_report
            assert all(
                r["time_to_ready_s"] > 0.0 for r in report["per_shard"]
            )
        finally:
            sdb.close()

    def test_progress_lines_print_from_spawned_children(self, tmp_path):
        """The ``serve --shards N`` cold-start path: each child prints
        its shard's phase lines to stderr."""
        root = self._filled_root(tmp_path, n_shards=2)
        from repro.shard.procs import recover_shard
        from repro.shard.sharded import read_manifest

        manifest = read_manifest(root)
        task = {
            "shard": 1,
            "dir": str(root / manifest["shard_dirs"][1]),
            "spec": manifest["spec"],
            "progress": True,
        }
        import contextlib
        import io as _io

        err = _io.StringIO()
        with contextlib.redirect_stderr(err):
            result = recover_shard(task)
        lines = err.getvalue().splitlines()
        assert any(line.startswith("[shard-01] ready:") for line in lines)
        assert result["replayed"] > 0


class TestPostmortemCli:
    def _crashed_root(self, tmp_path):
        """A deployment root + flight ring left behind by a 'crash':
        traffic traced into the ring, span never closed, no clean
        shutdown of the recorder (close flushes nothing anyway)."""
        from repro.obs import (
            FlightRecorder,
            FlightRecorderSink,
            RingBufferSink,
            TeeSink,
            Tracer,
            flight_ring_path,
        )

        root = tmp_path / "dep"
        recorder_path = None
        sdb = ShardedDatabase.create(
            root=root,
            n_shards=2,
            spec=EngineSpec(method="physiological", commit_pipeline=True),
        )
        recorder_path = flight_ring_path(root)
        recorder = FlightRecorder.create(recorder_path, n_slots=256)
        flight_sink = FlightRecorderSink(recorder)
        tracer = Tracer(TeeSink(RingBufferSink(), flight_sink))
        span = tracer.span("server.serve", port=1234)
        for shard in sdb.shards:
            shard.tracer = tracer
            shard.method.machine.tracer = tracer
            shard.method.machine.log.tracer = tracer
        for i in range(30):
            sdb.execute(("put", f"key{i}", i))
        sdb.sync()
        # simulate SIGKILL: no span.end(), no clean close of anything —
        # but let the write-behind queue reach the disk deterministically
        flight_sink.flush()
        return root

    def test_postmortem_joins_ring_and_wal(self, tmp_path, capsys):
        from repro.__main__ import main

        root = self._crashed_root(tmp_path)
        assert main(["postmortem", str(root)]) == 0
        out = capsys.readouterr().out
        assert "== postmortem:" in out
        assert "server.serve" in out
        assert "[INTERRUPTED]" in out
        assert "last stable LSN" in out
        assert "log.append" in out or "log.force" in out

    def test_postmortem_report_matches_logdump_lsn(self, tmp_path):
        from repro.obs.postmortem import collect_postmortem
        from repro.shard.sharded import read_manifest

        root = self._crashed_root(tmp_path)
        report = collect_postmortem(root)
        assert report["ok"]
        manifest = read_manifest(root)
        reborn = ShardedDatabase.cold_start(root, processes=0)
        try:
            for index, dirname in enumerate(manifest["shard_dirs"]):
                stable = reborn.shards[index].method.machine.log.stable_lsn
                assert report["logs"][dirname]["last_lsn"] == stable
        finally:
            reborn.close()

    def test_postmortem_without_ring_still_reports_wal(self, tmp_path, capsys):
        from repro.__main__ import main

        wal = tmp_path / "wal"
        db = KVDatabase(method="physiological", log_dir=wal)
        db.execute(("put", "a", 1))
        db.sync()
        db.close()
        assert main(["postmortem", str(wal)]) == 0
        out = capsys.readouterr().out
        assert "flight ring: none found" in out
        assert "last stable LSN" in out

    def test_postmortem_on_empty_dir_fails_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main

        empty = tmp_path / "nothing"
        empty.mkdir()
        assert main(["postmortem", str(empty)]) == 2
