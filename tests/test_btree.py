"""Unit and property tests for the recoverable B-tree and its split logging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BTree, BTreeError
from repro.btree.tree import data_cells, decode_key, encode_key
from repro.methods.base import Machine
from repro.workloads.btree_load import BTreeWorkloadSpec, generate_btree_keys


def fresh_tree(discipline="generalized", fanout=4, cache=8, unsafe=False) -> BTree:
    return BTree(
        Machine(cache_capacity=cache),
        fanout=fanout,
        split_discipline=discipline,
        unsafe_split_flush=unsafe,
    )


class TestEncoding:
    def test_roundtrip(self):
        for key in (0, 1, 999, 10**11):
            assert decode_key(encode_key(key)) == key

    def test_order_preserving(self):
        keys = [0, 5, 42, 1000, 99999]
        encoded = [encode_key(k) for k in keys]
        assert encoded == sorted(encoded)

    def test_out_of_range(self):
        with pytest.raises(BTreeError):
            encode_key(-1)
        with pytest.raises(BTreeError):
            encode_key(10**12)


class TestBasicOperations:
    def test_insert_search(self):
        tree = fresh_tree()
        tree.insert(5, b"five")
        tree.insert(3, b"three")
        assert tree.search(5) == b"five"
        assert tree.search(3) == b"three"
        assert tree.search(99) is None

    def test_overwrite(self):
        tree = fresh_tree()
        tree.insert(5, b"old")
        tree.insert(5, b"new")
        assert tree.search(5) == b"new"

    def test_delete(self):
        tree = fresh_tree()
        tree.insert(5, b"five")
        tree.delete(5)
        assert tree.search(5) is None

    def test_range_scan_sorted(self):
        tree = fresh_tree()
        for key in (50, 10, 30, 20, 40):
            tree.insert(key, str(key).encode())
        assert [k for k, _ in tree.range_scan(15, 45)] == [20, 30, 40]

    def test_items(self):
        tree = fresh_tree()
        pairs = {k: str(k).encode() for k in range(20)}
        for k, v in pairs.items():
            tree.insert(k, v)
        assert tree.items() == pairs

    def test_bad_discipline(self):
        with pytest.raises(BTreeError):
            BTree(split_discipline="quantum")

    def test_bad_fanout(self):
        with pytest.raises(BTreeError):
            BTree(fanout=1)


class TestSplits:
    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_splits_happen_and_invariants_hold(self, discipline):
        tree = fresh_tree(discipline)
        for key in range(40):
            tree.insert(key, str(key).encode())
        assert tree.splits > 0
        tree.check_invariants()
        assert tree.items() == {k: str(k).encode() for k in range(40)}

    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_node_sizes_bounded_after_splits(self, discipline):
        tree = fresh_tree(discipline, fanout=4)
        for key in range(60):
            tree.insert(key, b"v")
        for page_id in tree._all_node_ids():
            assert len(data_cells(tree.pool.get_page(page_id))) <= 4 + 1

    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_tree_grows_multiple_levels(self, discipline):
        tree = fresh_tree(discipline, fanout=3)
        pairs = [(k, str(k).encode()) for k in range(120)]
        for key, payload in pairs:
            tree.insert(key, payload)
        assert tree.height() >= 3
        assert tree.root_splits >= 2
        tree.check_invariants()
        assert tree.items() == dict(pairs)

    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_deep_tree_recovers(self, discipline):
        tree = fresh_tree(discipline, fanout=3, cache=8)
        pairs = [(k, str(k).encode()) for k in range(120)]
        for key, payload in pairs:
            tree.insert(key, payload)
        tree.commit()
        height_before = tree.height()
        tree.crash()
        tree.recover()
        tree.check_invariants()
        assert tree.height() == height_before >= 3
        assert tree.items() == dict(pairs)

    def test_generalized_registers_flush_constraint(self):
        tree = fresh_tree("generalized", fanout=2)
        for key in range(4):
            tree.insert(key, b"v")
        assert tree.splits >= 1
        assert tree.pool.pending_constraints() != []

    def test_physiological_needs_no_constraints(self):
        tree = fresh_tree("physiological", fanout=2)
        for key in range(4):
            tree.insert(key, b"v")
        assert tree.splits >= 1
        assert tree.pool.pending_constraints() == []

    def test_generalized_logs_fewer_bytes(self):
        """The §6.4 claim: split-move records avoid logging the moved half."""
        pairs = generate_btree_keys(11, BTreeWorkloadSpec(n_keys=150, payload_bytes=64))
        sizes = {}
        for discipline in ("generalized", "physiological"):
            tree = fresh_tree(discipline, fanout=6, cache=64)
            for key, payload in pairs:
                tree.insert(key, payload)
            sizes[discipline] = tree.log_bytes()
            assert tree.splits > 5
        assert sizes["generalized"] < sizes["physiological"]


class TestRecovery:
    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_crash_recover_roundtrip(self, discipline):
        tree = fresh_tree(discipline)
        pairs = generate_btree_keys(5, BTreeWorkloadSpec(n_keys=60))
        for key, payload in pairs:
            tree.insert(key, payload)
        tree.commit()
        tree.crash()
        tree.recover()
        tree.check_invariants()
        assert tree.items() == dict(pairs)

    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_uncommitted_tail_is_lost(self, discipline):
        tree = fresh_tree(discipline, cache=64)
        tree.insert(1, b"durable")
        tree.commit()
        tree.insert(2, b"volatile")
        tree.crash()
        tree.recover()
        items = tree.items()
        assert items.get(1) == b"durable"
        assert 2 not in items

    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_crash_sweep_with_small_cache(self, discipline):
        """Evictions force mid-split flushes; every crash point recovers
        the durable prefix exactly."""
        pairs = generate_btree_keys(7, BTreeWorkloadSpec(n_keys=40, pattern="sequential"))
        for cut in range(0, len(pairs) + 1, 4):
            tree = fresh_tree(discipline, fanout=4, cache=3)
            for key, payload in pairs[:cut]:
                tree.insert(key, payload)
                tree.commit()
            tree.crash()
            tree.recover()
            tree.check_invariants()
            durable = tree.durable_insert_count()
            assert tree.items() == dict(pairs[:durable]), (discipline, cut)

    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_checkpoint_shrinks_recovery_scan(self, discipline):
        pairs = generate_btree_keys(9, BTreeWorkloadSpec(n_keys=40))
        tree = fresh_tree(discipline, cache=64)
        for key, payload in pairs[:30]:
            tree.insert(key, payload)
        tree.checkpoint()
        for key, payload in pairs[30:]:
            tree.insert(key, payload)
        tree.commit()
        tree.crash()
        tree.recover()
        assert tree.items() == dict(pairs)
        # Replay work is bounded by the post-checkpoint suffix.
        assert tree.records_replayed <= (len(pairs) - 30) * 3

    def test_recovery_after_recovery(self):
        tree = fresh_tree("generalized", fanout=3, cache=4)
        pairs = generate_btree_keys(13, BTreeWorkloadSpec(n_keys=30))
        for key, payload in pairs[:15]:
            tree.insert(key, payload)
        tree.commit()
        tree.crash()
        tree.recover()
        for key, payload in pairs[15:]:
            tree.insert(key, payload)
        tree.commit()
        tree.crash()
        tree.recover()
        tree.check_invariants()
        assert tree.items() == dict(pairs)


class TestDeletes:
    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_deletes_survive_crash(self, discipline):
        tree = fresh_tree(discipline, fanout=4, cache=8)
        pairs = [(k, str(k).encode()) for k in range(30)]
        for key, payload in pairs:
            tree.insert(key, payload)
        for key in range(0, 30, 3):
            tree.delete(key)
        tree.commit()
        tree.crash()
        tree.recover()
        tree.check_invariants()
        expected = {k: v for k, v in pairs if k % 3 != 0}
        assert tree.items() == expected

    def test_delete_missing_key_is_harmless(self):
        tree = fresh_tree()
        tree.insert(1, b"one")
        tree.delete(99)
        tree.commit()
        tree.crash()
        tree.recover()
        assert tree.items() == {1: b"one"}

    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_mixed_insert_delete_interleaved_with_crashes(self, discipline):
        tree = fresh_tree(discipline, fanout=3, cache=4)
        alive = {}
        for round_number in range(3):
            base = round_number * 20
            for key in range(base, base + 20):
                tree.insert(key, str(key).encode())
                alive[key] = str(key).encode()
            for key in range(base, base + 20, 4):
                tree.delete(key)
                alive.pop(key)
            tree.commit()
            tree.crash()
            tree.recover()
            tree.check_invariants()
            assert tree.items() == alive


class TestCarefulWriteOrdering:
    def test_pool_refuses_old_before_new(self):
        from repro.cache import CachePolicyError

        tree = fresh_tree("generalized", fanout=2, cache=64)
        for key in range(4):
            tree.insert(key, b"v")
        constraint = tree.pool.pending_constraints()[0]
        tree.commit()
        with pytest.raises(CachePolicyError):
            tree.pool.flush_page(constraint.then_page)

    def test_violating_order_loses_data(self):
        """The E6 ablation: flush the truncated old page first, crash
        before the new page reaches disk, and the moved half is gone."""
        pairs = [(k, str(k).encode()) for k in range(12)]
        tree = fresh_tree("generalized", fanout=4, cache=64, unsafe=True)
        for key, payload in pairs:
            tree.insert(key, payload)
            tree.commit()
        assert tree.splits > 0
        tree.crash()
        tree.recover()
        durable = tree.durable_insert_count()
        assert durable == len(pairs)  # the log says everything is durable...
        assert tree.items() != dict(pairs)  # ...but data is lost

    def test_safe_ordering_preserves_data_same_scenario(self):
        pairs = [(k, str(k).encode()) for k in range(12)]
        tree = fresh_tree("generalized", fanout=4, cache=64, unsafe=False)
        for key, payload in pairs:
            tree.insert(key, payload)
            tree.commit()
        tree.crash()
        tree.recover()
        assert tree.items() == dict(pairs)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_workloads_roundtrip(self, seed):
        pairs = generate_btree_keys(seed, BTreeWorkloadSpec(n_keys=50))
        tree = fresh_tree("generalized", fanout=5, cache=6)
        for key, payload in pairs:
            tree.insert(key, payload)
        tree.commit()
        tree.crash()
        tree.recover()
        tree.check_invariants()
        assert tree.items() == dict(pairs)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=49),
    )
    @settings(max_examples=20, deadline=None)
    def test_crash_at_random_point_recovers_durable_prefix(self, seed, cut):
        pairs = generate_btree_keys(seed, BTreeWorkloadSpec(n_keys=50))
        cut = min(cut, len(pairs))
        tree = fresh_tree("generalized", fanout=4, cache=4)
        for key, payload in pairs[:cut]:
            tree.insert(key, payload)
            tree.commit()
        tree.crash()
        tree.recover()
        tree.check_invariants()
        durable = tree.durable_insert_count()
        assert tree.items() == dict(pairs[:durable])
