"""End-to-end tests of every worked example in the paper (Figures 1–5, 7, §5)."""

from repro.core.conflict import ConflictGraph
from repro.core.explain import explains, find_explaining_prefixes, is_explainable
from repro.core.installation import InstallationGraph
from repro.core.invariant import check_recovery_invariant
from repro.core.model import State
from repro.core.recovery import Log, recover
from repro.core.replay import is_potentially_recoverable, replay
from repro.core.write_graph import WriteGraph
from repro.workloads.opgen import scenario_library


class TestFigure1:
    """Scenario 1: read-write edges are important."""

    def test_state_is_unrecoverable(self, initial_state):
        scenario = scenario_library()["figure1"]
        conflict = ConflictGraph(list(scenario.operations))
        crashed = State(dict(scenario.crashed_values))
        assert not is_potentially_recoverable(conflict, crashed, initial_state)

    def test_no_explaining_prefix_exists(self, initial_state):
        scenario = scenario_library()["figure1"]
        installation = InstallationGraph(ConflictGraph(list(scenario.operations)))
        crashed = State(dict(scenario.crashed_values))
        assert not is_explainable(installation, crashed, initial_state)

    def test_installing_in_installation_order_would_have_worked(self, initial_state):
        """The failure is an ordering failure: installing A before B (the
        installation-graph order) keeps every intermediate state fine."""
        scenario = scenario_library()["figure1"]
        a, b = scenario.operations
        installation = InstallationGraph(ConflictGraph([a, b]))
        after_a = State({"x": 1, "y": 0})
        assert explains(installation, {a}, after_a, initial_state)
        assert is_potentially_recoverable(installation.conflict, after_a, initial_state)


class TestFigure2:
    """Scenario 2: write-read edges are unimportant."""

    def test_replaying_b_recovers(self, initial_state):
        scenario = scenario_library()["figure2"]
        b, a = scenario.operations
        conflict = ConflictGraph([b, a])
        crashed = State(dict(scenario.crashed_values))
        recovered = replay(conflict, {b}, crashed)
        assert recovered == conflict.final_state(initial_state)

    def test_installed_a_is_installation_prefix_not_conflict_prefix(self, initial_state):
        scenario = scenario_library()["figure2"]
        b, a = scenario.operations
        conflict = ConflictGraph([b, a])
        installation = InstallationGraph(conflict)
        assert installation.is_prefix({a})
        assert not conflict.is_prefix({a})

    def test_recover_procedure_with_checkpointed_a(self, initial_state):
        """Running the Figure 6 procedure with A checkpointed replays only
        B and reaches the final state."""
        scenario = scenario_library()["figure2"]
        b, a = scenario.operations
        log = Log.from_operations([b, a])
        crashed = State(dict(scenario.crashed_values))
        outcome = recover(crashed, log, checkpoint={a})
        assert outcome.redo_set == {b}
        assert outcome.state == ConflictGraph([b, a]).final_state(initial_state)


class TestFigure3:
    """Scenario 3: only exposed variables matter."""

    def test_partial_install_of_c_is_explainable(self, initial_state):
        scenario = scenario_library()["figure3"]
        c, d = scenario.operations
        installation = InstallationGraph(ConflictGraph([c, d]))
        crashed = State(dict(scenario.crashed_values))  # y=1 only
        assert explains(installation, {c}, crashed, initial_state)

    def test_replaying_d_recovers(self, initial_state):
        scenario = scenario_library()["figure3"]
        c, d = scenario.operations
        conflict = ConflictGraph([c, d])
        crashed = State(dict(scenario.crashed_values))
        recovered = replay(conflict, {d}, crashed)
        assert recovered == conflict.final_state(initial_state)

    def test_invariant_holds_for_checkpoint_c(self, initial_state):
        scenario = scenario_library()["figure3"]
        c, d = scenario.operations
        installation = InstallationGraph(ConflictGraph([c, d]))
        log = Log.from_operations([c, d])
        crashed = State(dict(scenario.crashed_values))
        report = check_recovery_invariant(
            installation, crashed, log, initial_state,
            checkpoint={c}, verify_outcome=True,
        )
        assert report.holds and report.recovered_correctly


class TestFigures4And5:
    """The O, P, Q running example."""

    def test_conflict_graph_shape(self, opq, opq_conflict):
        O, P, Q = opq
        edges = {(a.name, b.name): labels for a, b, labels in opq_conflict.edges()}
        assert set(edges) == {("O", "P"), ("O", "Q"), ("P", "Q")}

    def test_installation_graph_drops_only_o_p(self, opq, opq_installation):
        edges = {(a, b) for a, b, _ in opq_installation.dag.edges()}
        assert edges == {("O", "Q"), ("P", "Q")}

    def test_recoverable_states_of_figure5(self, opq, opq_installation, initial_state):
        """Each installation prefix determines a recoverable state; the
        dashed {P} line is the one the conflict graph misses."""
        O, P, Q = opq
        expected_states = {
            frozenset(): {"x": 0, "y": 0},
            frozenset({O}): {"x": 1, "y": 0},
            frozenset({P}): {"x": 0, "y": 2},
            frozenset({O, P}): {"x": 1, "y": 2},
            frozenset({O, P, Q}): {"x": 3, "y": 2},
        }
        for prefix, values in expected_states.items():
            determined = opq_installation.determined_state(prefix, initial_state)
            assert determined == State(values), sorted(op.name for op in prefix)
            assert is_potentially_recoverable(
                opq_installation.conflict, State(values), initial_state
            )

    def test_exactly_these_prefixes_exist(self, opq, opq_installation):
        assert sum(1 for _ in opq_installation.prefixes()) == 5


class TestFigure7:
    """Write graph with O and Q collapsed."""

    def test_collapse_forces_p_first(self, opq, opq_installation, initial_state):
        wg = WriteGraph(opq_installation, initial_state)
        wg.collapse(["O", "Q"], new_id="x-page")
        # The {P} node must be written to the state before the x page.
        installable = {n.node_id for n in wg.minimal_uninstalled_nodes()}
        assert installable == {"P"}

    def test_some_recoverable_states_become_inaccessible(self, opq, opq_installation, initial_state):
        """Collapsing makes the {O} state unreachable by any flush order,
        though it remains recoverable in principle."""
        wg = WriteGraph(opq_installation, initial_state)
        wg.collapse(["O", "Q"], new_id="x-page")
        reachable = set()
        # Enumerate all flush orders of this two-node write graph.
        wg.install("P")
        reachable.add(tuple(sorted(wg.stable_state().restrict(["x", "y"]).items())))
        wg.install("x-page")
        reachable.add(tuple(sorted(wg.stable_state().restrict(["x", "y"]).items())))
        assert (("x", 1), ("y", 0)) not in reachable  # the {O} state
        assert (("x", 0), ("y", 2)) in reachable       # the {P} state
        assert (("x", 3), ("y", 2)) in reachable       # final


class TestSection5Examples:
    def test_efg_requires_atomic_xy(self, initial_state):
        scenario = scenario_library()["section5_efg"]
        conflict = ConflictGraph(list(scenario.operations))
        crashed = State(dict(scenario.crashed_values))
        assert not is_potentially_recoverable(conflict, crashed, initial_state)
        # Installing x and y together (all three ops) is of course fine.
        final = conflict.final_state(initial_state)
        assert is_potentially_recoverable(conflict, final, initial_state)

    def test_hj_unexposed_shrinks_atomic_set(self, initial_state):
        scenario = scenario_library()["section5_hj"]
        h, j = scenario.operations
        installation = InstallationGraph(ConflictGraph([h, j]))
        # Installing only H's x (y untouched) explains the state via {H}.
        crashed = State(dict(scenario.crashed_values))
        assert explains(installation, {h}, crashed, initial_state)
        prefixes = list(find_explaining_prefixes(installation, crashed, initial_state))
        assert frozenset({h}) in prefixes
