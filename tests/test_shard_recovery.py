"""Cross-process recovery tests for sharded deployments: warm/cold
byte-identity per shard, the spawn-pool fan-out, per-shard torn-tail
handling, crash-during-cold-start (SIGKILL mid-replay), and
crash-during-*lazy*-restart (SIGKILL mid-background-replay)."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.engine import EngineSpec
from repro.shard import ShardedDatabase
from repro.sim.crash import canonical_state, sharded_cold_restart_states
from repro.workloads.kv import apply_to_oracle

ALL_METHODS = ["logical", "physical", "physiological", "generalized"]

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def mixed_stream(n):
    return [("put", f"k{i}", i) for i in range(n)] + [
        ("add", f"k{i}", 7) for i in range(0, n, 3)
    ]


def build_deployment(root, method, n_shards=3, **spec_kwargs):
    spec_kwargs.setdefault("commit_every", 3)
    spec_kwargs.setdefault("checkpoint_every", 20)
    spec_kwargs.setdefault("fsync", False)
    spec = EngineSpec(method=method, **spec_kwargs)
    return ShardedDatabase.create(root=root, n_shards=n_shards, spec=spec)


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_warm_equals_cold_per_shard(self, method, tmp_path):
        """Corollary 4 at deployment scale: warm recovery of the live
        deployment and a cold start from the root + survivor disks land
        on byte-identical per-shard states, for every method."""
        sdb = build_deployment(tmp_path, method)
        sdb.run(mixed_stream(45))
        warm, cold = sharded_cold_restart_states(sdb, tmp_path)
        assert warm == cold
        sdb.close()

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_repeated_cold_starts_converge(self, method, tmp_path):
        """Quiesce appends nothing, so every subsequent cold start sees
        the same segment bytes and lands on the same state."""
        sdb = build_deployment(tmp_path, method)
        sdb.run(mixed_stream(30))
        sdb.crash()
        survivors = [
            [page for page in shard.method.machine.disk.pages()]
            for shard in sdb.shards
        ]
        from repro.storage import Disk

        def survivor_disks():
            disks = []
            for pages in survivors:
                disk = Disk()
                for page in pages:
                    disk.write_page(page.copy())
                disks.append(disk)
            return disks

        first = ShardedDatabase.cold_start(
            tmp_path, disks=survivor_disks(), processes=0
        )
        state_a = [canonical_state(s) for s in first.shards]
        first.close()
        second = ShardedDatabase.cold_start(
            tmp_path,
            disks=[s.method.machine.disk for s in first.shards],
            processes=0,
        )
        state_b = [canonical_state(s) for s in second.shards]
        assert state_a == state_b
        second.close()

    def test_spawn_pool_matches_inline(self, tmp_path):
        """The real ProcessPoolExecutor fan-out must land exactly where
        inline recovery does — the pickled-disk handoff loses nothing."""
        sdb = build_deployment(tmp_path, "physiological")
        sdb.run(mixed_stream(40))
        sdb.sync()
        sdb.crash()
        from repro.storage import Disk

        def survivors():
            disks = []
            for shard in sdb.shards:
                disk = Disk()
                for page in shard.method.machine.disk.pages():
                    disk.write_page(page)
                disks.append(disk)
            return disks

        inline = ShardedDatabase.cold_start(
            tmp_path, disks=survivors(), processes=0
        )
        pooled = ShardedDatabase.cold_start(tmp_path, disks=survivors())
        assert [canonical_state(s) for s in inline.shards] == [
            canonical_state(s) for s in pooled.shards
        ]
        assert pooled.cold_report is not None
        assert len(pooled.cold_report["per_shard"]) == 3
        assert pooled.cold_report["critical_path_s"] > 0
        inline.close()
        pooled.close()
        sdb.close()

    def test_cold_report_accounts_replay_work(self, tmp_path):
        sdb = build_deployment(tmp_path, "physical", checkpoint_every=None)
        sdb.run(mixed_stream(30))
        sdb.sync()
        sdb.close()
        cold = ShardedDatabase.cold_start(tmp_path, processes=0)
        report = cold.cold_report
        assert report["wall_s"] > 0
        total_replayed = sum(r["replayed"] for r in report["per_shard"])
        assert total_replayed == 40  # every mutation of mixed_stream(30)
        assert all(r["torn_tails"] == 0 for r in report["per_shard"])
        cold.close()


class TestTornTails:
    def test_per_shard_torn_tail_is_truncated_independently(self, tmp_path):
        """Tear one shard's tail: that shard recovers its durable prefix
        minus the torn record; the others are untouched — per-shard
        torn-tail handling, not a deployment-wide reset."""
        sdb = build_deployment(
            tmp_path, "physical", commit_every=1, checkpoint_every=None
        )
        stream = [("put", f"k{i}", i) for i in range(30)]
        sdb.run(stream)
        sdb.sync()
        sdb.close()
        victim = 0
        tail = sorted((tmp_path / "shard-00").glob("segment-*.wal"))[-1]
        tail.write_bytes(tail.read_bytes()[:-2])
        cold = ShardedDatabase.cold_start(tmp_path, processes=0)
        per_shard = cold.cold_report["per_shard"]
        assert per_shard[victim]["torn_tails"] == 1
        assert all(r["torn_tails"] == 0 for r in per_shard[1:])
        # The victim lost exactly its last record; the others lost none.
        parts = cold.keymap.split(stream)
        assert cold.shards[victim].durable_count() == len(parts[victim]) - 1
        for index in range(1, 3):
            assert cold.shards[index].durable_count() == len(parts[index])
            assert cold.shards[index].method.dump() == apply_to_oracle(
                parts[index]
            )
        cold.close()


class TestCrashDuringColdStart:
    def test_sigkill_mid_recovery_then_converge(self, tmp_path):
        """SIGKILL a process in the middle of a sharded cold start, then
        cold-start twice more: both must land on identical bytes, and on
        the durable prefix.  Sound because recovery mutates the segment
        files only via the torn-tail truncation (idempotent) and quiesce
        appends nothing — the seed of the fault-campaign roadmap item."""
        sdb = build_deployment(
            tmp_path, "physiological", commit_every=1, checkpoint_every=None
        )
        stream = [("put", f"k{i}", i) for i in range(300)]
        sdb.run(stream)
        sdb.sync()
        sdb.close()
        # Tear one tail so the victim cold start has real repair to do.
        tail = sorted((tmp_path / "shard-01").glob("segment-*.wal"))[-1]
        tail.write_bytes(tail.read_bytes()[:-3])

        script = textwrap.dedent(
            """
            import sys
            from repro.shard import ShardedDatabase
            print("recovering", flush=True)
            ShardedDatabase.cold_start(sys.argv[1], processes=0)
            print("done", flush=True)
            """
        )
        script_path = tmp_path / "recover_once.py"
        script_path.write_text(script)
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.Popen(
            [sys.executable, str(script_path), str(tmp_path)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        assert proc.stdout.readline().strip() == "recovering"
        # Land the kill inside the replay window (best effort — any kill
        # point is a valid test of convergence).
        time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        first = ShardedDatabase.cold_start(tmp_path, processes=0)
        state_a = [canonical_state(s) for s in first.shards]
        first.close()
        second = ShardedDatabase.cold_start(tmp_path, processes=0)
        state_b = [canonical_state(s) for s in second.shards]
        second.close()
        assert state_a == state_b
        # And the converged state is the durable prefix: everything
        # except shard-01's torn last record.
        parts = second.keymap.split(stream)
        expected = sum(len(p) for p in parts) - 1
        assert second.durable_count() == expected
        merged = {}
        for index, part in enumerate(parts):
            cut = len(part) - 1 if index == 1 else len(part)
            merged.update(apply_to_oracle(part[:cut]))
        assert second.dump() == merged


class TestLazyRestartSharded:
    def test_lazy_cold_start_serves_and_converges(self, tmp_path):
        """``cold_start(lazy=True)``: every shard serves after analysis
        alone, health reports the backlog, and after the drain the
        deployment equals an eager cold start byte for byte."""
        sdb = build_deployment(tmp_path, "physiological", checkpoint_every=None)
        stream = mixed_stream(60)
        sdb.run(stream)
        sdb.sync()
        sdb.close()
        lazy = ShardedDatabase.cold_start(tmp_path, lazy=True)
        assert lazy.cold_report["lazy"] is True
        assert all(
            "replay_backlog" in r for r in lazy.cold_report["per_shard"]
        )
        # Serving immediately: the full oracle mapping is readable even
        # though the backlog may not have drained yet.
        assert lazy.dump() == apply_to_oracle(stream)
        lazy.drain_lazy()
        health = lazy.health()
        assert health["state"] == "ready"
        assert health["replay_backlog_total"] == 0
        assert all(s["state"] == "ready" for s in health["shards"])
        eager = ShardedDatabase.cold_start(tmp_path, processes=0)
        for shard in (*lazy.shards, *eager.shards):
            shard.quiesce()
        assert [canonical_state(s) for s in lazy.shards] == [
            canonical_state(s) for s in eager.shards
        ]
        lazy.close()
        eager.close()

    def test_sigkill_mid_background_replay_then_converge(self, tmp_path):
        """SIGKILL a process while its background replay threads are
        still draining, then cold-start again — once eagerly, once
        lazily — and both must land on the identical durable prefix.
        Sound because lazy replay mutates only the volatile pool: the
        log keeps every record until replay is complete, so the next
        incarnation re-derives the same backlog (Theorem 3's redo set
        is a function of the durable state alone)."""
        sdb = build_deployment(
            tmp_path, "physiological", commit_every=1, checkpoint_every=None
        )
        stream = [("put", f"k{i}", i) for i in range(300)]
        sdb.run(stream)
        sdb.sync()
        sdb.close()

        script = textwrap.dedent(
            """
            import sys, time
            from repro.shard import ShardedDatabase
            sdb = ShardedDatabase.cold_start(sys.argv[1], lazy=True)
            print("serving", sdb.replay_backlog(), flush=True)
            time.sleep(30)  # parent SIGKILLs us mid-drain
            """
        )
        script_path = tmp_path / "lazy_once.py"
        script_path.write_text(script)
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.Popen(
            [sys.executable, str(script_path), str(tmp_path)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        line = proc.stdout.readline().split()
        assert line and line[0] == "serving"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        eager = ShardedDatabase.cold_start(tmp_path, processes=0)
        lazy = ShardedDatabase.cold_start(tmp_path, lazy=True)
        lazy.drain_lazy()
        for shard in (*eager.shards, *lazy.shards):
            shard.quiesce()
        state_a = [canonical_state(s) for s in eager.shards]
        state_b = [canonical_state(s) for s in lazy.shards]
        assert state_a == state_b
        # And the converged state is the full durable prefix.
        assert lazy.durable_count() == len(stream)
        assert lazy.dump() == apply_to_oracle(stream)
        eager.close()
        lazy.close()
