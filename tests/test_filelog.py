"""Tests for the file-backed durable log tier.

Covers the :class:`~repro.logmgr.filelog.FileLogStore` write path
(stage → write → fsync), group-commit batching arithmetic, the crash
model (staged and written-but-unsynced bytes vanish), torn-tail cleanup
on cold start, segment eviction, and the archive rename.
"""

import pytest

from repro.logmgr import (
    CheckpointRecord,
    CodecError,
    FileLogStore,
    LogManager,
    LogicalRedo,
    PhysicalRedo,
)
from repro.logmgr.codec import (
    FILE_HEADER_SIZE,
    FRAME_PREFIX_SIZE,
    encode_file_header,
    encode_record,
    encode_seal,
    iter_record_views,
)
from repro.logmgr.filelog import (
    ARCHIVE_SUFFIX,
    SEGMENT_SUFFIX,
    iter_file_records,
    seal_path,
    segment_filename,
)
from repro.logmgr.records import LogRecord


def durable_log(tmp_path, **kwargs):
    """A LogManager over a FileLogStore in ``tmp_path``."""
    store = FileLogStore(tmp_path, fsync=kwargs.pop("fsync", True))
    return LogManager(store=store, **kwargs)


class TestFileLogStore:
    def test_begin_segment_writes_header(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.begin_segment(0)
        path = tmp_path / segment_filename(0)
        assert path.exists()
        assert path.stat().st_size == FILE_HEADER_SIZE

    def test_staged_frames_hit_disk_only_after_write(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.begin_segment(0)
        frame = encode_record(LogRecord(lsn=0, payload=LogicalRedo(("a",))))
        store.stage(0, frame)
        path = tmp_path / segment_filename(0)
        assert path.stat().st_size == FILE_HEADER_SIZE  # still staged
        store.write_up_to(0)
        assert path.stat().st_size == FILE_HEADER_SIZE + len(frame)

    def test_sync_keeps_handle_open_while_frames_staged(self, tmp_path):
        """Regression: an append can stage into a segment and rotate
        before any flush covers that tail, so a sealed fully-synced
        segment may still owe staged bytes.  sync() must not close its
        handle out from under the next write_up_to (the group-commit
        committer hit exactly this under fan-in: the window's target
        LSN trailed the staging front by a rotation)."""
        store = FileLogStore(tmp_path)
        store.begin_segment(0)
        frames = [
            encode_record(LogRecord(lsn=lsn, payload=LogicalRedo(("a",))))
            for lsn in range(2)
        ]
        store.stage(0, frames[0])
        store.stage(1, frames[1])
        store.begin_segment(2)  # rotate with LSN 1 still staged for seg 0
        store.write_up_to(0)
        store.sync()  # seg 0 is sealed and fully synced — but still owed
        handle = store._handle_for(0)
        assert handle.fh is not None  # not closed: staged frames remain
        store.write_up_to(1)  # raised AttributeError before the fix
        store.sync()
        assert [r.lsn for r in iter_file_records(tmp_path / segment_filename(0))] == [
            0,
            1,
        ]
        store.close()

    def test_stage_before_begin_raises(self, tmp_path):
        store = FileLogStore(tmp_path)
        with pytest.raises(CodecError, match="begin_segment"):
            store.stage(0, b"xx")

    def test_crash_loses_staged_and_unsynced_bytes(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.begin_segment(0)
        frames = [
            encode_record(LogRecord(lsn=lsn, payload=LogicalRedo((lsn,))))
            for lsn in range(3)
        ]
        store.stage(0, frames[0])
        store.write_up_to(0)
        store.sync()  # lsn 0 durable
        store.stage(1, frames[1])
        store.write_up_to(1)  # lsn 1 written, NOT synced
        store.stage(2, frames[2])  # lsn 2 only staged
        store.crash()
        path = tmp_path / segment_filename(0)
        assert path.stat().st_size == FILE_HEADER_SIZE + len(frames[0])
        survivors = list(iter_file_records(path))
        assert [r.lsn for r in survivors] == [0]

    def test_crash_deletes_file_with_no_synced_records(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.begin_segment(0)
        store.crash()
        assert not (tmp_path / segment_filename(0)).exists()
        assert store.is_empty()

    def test_attach_reopens_existing_files(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.begin_segment(0)
        frame = encode_record(LogRecord(lsn=0, payload=LogicalRedo(("a",))))
        store.stage(0, frame)
        store.write_up_to(0)
        store.sync()
        store.close()
        reopened = FileLogStore.attach(tmp_path)
        assert reopened.segment_base_lsns() == [0]
        assert [r.lsn for r in reopened.scan_segment(0)] == [0]

    def test_archive_renames_and_keeps_format(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.begin_segment(0)
        frame = encode_record(LogRecord(lsn=0, payload=LogicalRedo(("a",))))
        store.stage(0, frame)
        store.write_up_to(0)
        store.sync()
        target = store.archive_segment(0)
        assert target.suffix == ARCHIVE_SUFFIX
        assert not (tmp_path / segment_filename(0)).exists()
        assert store.archived_paths() == [target]
        # The archive is the same binary format: same decoder reads it.
        assert [r.lsn for r in iter_file_records(target)] == [0]


class TestGroupCommit:
    def test_batched_forces_share_one_fsync(self, tmp_path):
        log = durable_log(tmp_path, group_commit=4)
        base_fsyncs = log.store.fsyncs
        for i in range(8):
            log.append(LogicalRedo((i,)))
            log.flush()
        # 8 forces at group_commit=4 → 2 fsync points.  Each sync pays
        # one file fsync; the first also pays the directory fsync for
        # the segment file's creation.
        assert log.store.syncs == 2
        assert log.store.fsyncs - base_fsyncs == 3
        assert log.stable_lsn == 7

    def test_stable_lsn_advances_only_at_fsync(self, tmp_path):
        log = durable_log(tmp_path, group_commit=3)
        for i in range(2):
            log.append(LogicalRedo((i,)))
            log.flush()
        assert log.stable_lsn == -1  # batch not full: still volatile
        log.append(LogicalRedo((2,)))
        log.flush()
        assert log.stable_lsn == 2  # third force fills the batch

    def test_barrier_flush_cannot_wait_for_batch(self, tmp_path):
        log = durable_log(tmp_path, group_commit=100)
        entry = log.append(LogicalRedo(("a",)))
        log.ensure_stable(entry.lsn)
        assert log.stable_lsn == entry.lsn
        assert log.store.syncs == 1

    def test_pending_forces_vanish_on_crash(self, tmp_path):
        log = durable_log(tmp_path, group_commit=4)
        log.append(LogicalRedo(("a",)))
        log.flush()  # 1 pending force, no fsync yet
        log.crash()
        assert log.stable_lsn == -1
        assert len(log) == 0
        # The recovered incarnation can append and force normally.
        log.append(LogicalRedo(("b",)))
        log.flush(barrier=True)
        assert log.stable_lsn == 0

    def test_group_commit_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="group_commit"):
            durable_log(tmp_path, group_commit=0)


class TestEviction:
    def test_sealed_synced_segments_are_evicted(self, tmp_path):
        log = durable_log(tmp_path, segment_size=4)
        for i in range(10):
            log.append(LogicalRedo((i,)))
        log.flush(barrier=True)
        segments = log.segments()
        assert [s.evicted for s in segments] == [True, True, False]

    def test_evicted_segments_restream_from_files(self, tmp_path):
        log = durable_log(tmp_path, segment_size=4)
        for i in range(10):
            log.append(LogicalRedo((i,)))
        log.flush(barrier=True)
        assert [r.payload.description[0] for r in log.records_from(0)] == list(
            range(10)
        )
        assert log.entry(2).lsn == 2  # random access re-streams too

    def test_evicted_accounting_matches_resident(self, tmp_path):
        log = durable_log(tmp_path, segment_size=4)
        reference = LogManager(segment_size=4)
        for i in range(10):
            log.append(PhysicalRedo(f"p{i % 3}", {"k": i}))
            reference.append(PhysicalRedo(f"p{i % 3}", {"k": i}))
        log.flush(barrier=True)
        reference.flush()
        assert len(log) == len(reference)
        assert log.stable_count_of(PhysicalRedo) == reference.stable_count_of(
            PhysicalRedo
        )
        assert log.stable_bytes() == reference.stable_bytes()
        assert log.total_bytes() == reference.total_bytes()


class TestColdStart:
    def test_empty_directory_yields_fresh_manager(self, tmp_path):
        log = LogManager.open(tmp_path)
        assert len(log) == 0
        assert log.stable_lsn == -1
        entry = log.append(LogicalRedo(("first",)))
        log.flush(barrier=True)
        assert log.stable_lsn == entry.lsn

    def test_cold_start_recovers_synced_records(self, tmp_path):
        warm = durable_log(tmp_path, segment_size=4)
        for i in range(9):
            warm.append(LogicalRedo((i,)))
        warm.flush(barrier=True)
        warm.append(LogicalRedo(("volatile",)))  # never forced
        warm.store.close()
        cold = LogManager.open(tmp_path, segment_size=4)
        assert cold.stable_lsn == 8
        assert cold.next_lsn == 9
        assert [r.payload.description[0] for r in cold.stable_records_from(0)] == list(
            range(9)
        )

    def test_cold_start_appends_continue_the_lsn_sequence(self, tmp_path):
        warm = durable_log(tmp_path)
        warm.append(LogicalRedo(("a",)))
        warm.flush(barrier=True)
        warm.store.close()
        cold = LogManager.open(tmp_path)
        entry = cold.append(LogicalRedo(("b",)))
        assert entry.lsn == 1
        cold.flush(barrier=True)
        assert cold.stable_lsn == 1

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        warm = durable_log(tmp_path)
        for i in range(3):
            warm.append(LogicalRedo((i,)))
        warm.flush(barrier=True)
        warm.store.close()
        path = tmp_path / segment_filename(0)
        clean = path.read_bytes()
        path.write_bytes(clean[:-2])  # tear mid-frame, as a crash would
        cold = LogManager.open(tmp_path)
        assert cold.stable_lsn == 1  # record 2 was torn
        assert path.stat().st_size < len(clean) - 2  # file cut at the tear
        assert cold.store.torn_tails == 1
        # The log is appendable right where the tear was.
        entry = cold.append(LogicalRedo(("again",)))
        assert entry.lsn == 2
        cold.flush(barrier=True)
        assert cold.stable_lsn == 2

    def test_segments_after_a_tear_are_deleted(self, tmp_path):
        warm = durable_log(tmp_path, segment_size=2)
        for i in range(6):
            warm.append(LogicalRedo((i,)))
        warm.flush(barrier=True)
        warm.store.close()
        middle = tmp_path / segment_filename(2)
        middle.write_bytes(middle.read_bytes()[:-1])
        cold = LogManager.open(tmp_path, segment_size=2)
        assert cold.stable_lsn == 2  # lsn 3 torn; 4,5 beyond the hole
        assert not (tmp_path / segment_filename(4)).exists()

    def test_checkpoints_survive_cold_start(self, tmp_path):
        warm = durable_log(tmp_path)
        warm.append(LogicalRedo(("a",)))
        warm.append(CheckpointRecord(("logical", 0)))
        warm.flush(barrier=True)
        warm.store.close()
        cold = LogManager.open(tmp_path)
        assert cold.last_stable_checkpoint_lsn == 1

    def test_archived_files_fold_into_accounting(self, tmp_path):
        warm = durable_log(tmp_path, segment_size=2)
        for i in range(6):
            warm.append(LogicalRedo((i,)))
        warm.flush(barrier=True)
        warm.truncate_until(4)  # retires segments [0..1] and [2..3]
        assert len(list(tmp_path.glob(f"*{ARCHIVE_SUFFIX}"))) == 2
        warm_len, warm_bytes = len(warm), warm.stable_bytes()
        warm_count = warm.stable_count_of(LogicalRedo)
        warm.store.close()
        cold = LogManager.open(tmp_path, segment_size=2)
        assert len(cold) == warm_len
        assert cold.stable_bytes() == warm_bytes
        assert cold.stable_count_of(LogicalRedo) == warm_count
        assert cold.head_lsn == 4

    def test_non_dense_segment_files_rejected(self, tmp_path):
        warm = durable_log(tmp_path, segment_size=2)
        for i in range(6):
            warm.append(LogicalRedo((i,)))
        warm.flush(barrier=True)
        warm.store.close()
        (tmp_path / segment_filename(2)).unlink()  # punch a hole
        with pytest.raises(CodecError, match="not dense"):
            LogManager.open(tmp_path, segment_size=2)

    def test_fsync_disabled_keeps_the_format(self, tmp_path):
        log = durable_log(tmp_path, fsync=False)
        log.append(LogicalRedo(("a",)))
        log.flush(barrier=True)
        assert log.store.fsyncs == 0
        assert log.stable_lsn == 0
        paths = list(tmp_path.glob(f"*{SEGMENT_SUFFIX}"))
        assert len(paths) == 1
        assert [r.lsn for r in iter_file_records(paths[0])] == [0]


class TestSegmentSeal:
    """The sidecar seal is a pure accelerator: removing, corrupting, or
    staling it must never change what a scan returns."""

    def _filled_log(self, tmp_path, n=20, segment_size=8):
        log = durable_log(tmp_path, segment_size=segment_size)
        for i in range(n):
            log.append(LogicalRedo((i,)))
        log.flush(barrier=True)
        return log

    def test_filled_segments_gain_seal_sidecars(self, tmp_path):
        self._filled_log(tmp_path)
        assert seal_path(tmp_path / segment_filename(0)).exists()
        assert seal_path(tmp_path / segment_filename(8)).exists()
        # The active tail is still growing — never sealed.
        assert not seal_path(tmp_path / segment_filename(16)).exists()

    def test_corrupt_seal_falls_back_to_frame_walk(self, tmp_path):
        log = self._filled_log(tmp_path)
        good = [(r.lsn, r.payload) for r in log.store.scan_segment(0)]
        sidecar = seal_path(tmp_path / segment_filename(0))
        sidecar.write_bytes(bytes(len(sidecar.read_bytes())))
        again = [(r.lsn, r.payload) for r in log.store.scan_segment(0)]
        assert again == good
        assert [lsn for lsn, _ in good] == list(range(8))

    def test_stale_seal_is_ignored(self, tmp_path):
        # A seal whose region length doesn't match the file is treated
        # exactly like a missing one (the file grew or shrank since).
        log = self._filled_log(tmp_path)
        good = [(r.lsn, r.payload) for r in log.store.scan_segment(0)]
        sidecar = seal_path(tmp_path / segment_filename(0))
        sidecar.write_bytes(encode_seal(0, 1, 1))
        assert [(r.lsn, r.payload) for r in log.store.scan_segment(0)] == good

    def test_short_seal_is_ignored(self, tmp_path):
        log = self._filled_log(tmp_path)
        good = [(r.lsn, r.payload) for r in log.store.scan_segment(0)]
        seal_path(tmp_path / segment_filename(0)).write_bytes(b"RS")
        assert [(r.lsn, r.payload) for r in log.store.scan_segment(0)] == good

    def test_damage_under_a_seal_is_still_caught(self, tmp_path):
        # Flipping a record byte breaks the seal CRC, so the scan
        # degrades to per-frame checks and stops at the damaged record.
        log = self._filled_log(tmp_path)
        path = tmp_path / segment_filename(0)
        buf = path.read_bytes()
        frames = list(iter_record_views(buf))
        _lsn, lo, _hi = frames[3]
        damaged = bytearray(buf)
        damaged[lo] ^= 0xFF
        path.write_bytes(bytes(damaged))
        assert [r.lsn for r in log.store.scan_segment(0)] == [0, 1, 2]

    def test_seal_travels_with_archive(self, tmp_path):
        log = self._filled_log(tmp_path)
        target = log.store.archive_segment(0)
        assert target.suffix == ARCHIVE_SUFFIX
        assert seal_path(target).exists()
        assert not seal_path(tmp_path / segment_filename(0)).exists()
        assert [r.lsn for r in iter_file_records(target)] == list(range(8))


class TestScanSeek:
    def _filled_log(self, tmp_path, n=20, segment_size=8):
        log = durable_log(tmp_path, segment_size=segment_size)
        for i in range(n):
            log.append(LogicalRedo((i,)))
        log.flush(barrier=True)
        return log

    def test_scan_segment_seeks_mid_segment(self, tmp_path):
        log = self._filled_log(tmp_path)
        records = list(log.store.scan_segment(0, start_lsn=3))
        assert [r.lsn for r in records] == [3, 4, 5, 6, 7]
        assert [r.payload for r in records] == [LogicalRedo((i,)) for i in range(3, 8)]

    def test_scan_segment_seek_past_the_end_is_empty(self, tmp_path):
        log = self._filled_log(tmp_path)
        assert list(log.store.scan_segment(0, start_lsn=8)) == []

    def test_records_from_mid_log_after_cold_start(self, tmp_path):
        self._filled_log(tmp_path)
        log = LogManager.open(tmp_path, segment_size=8)
        records = list(log.records_from(5))
        assert [r.lsn for r in records] == list(range(5, 20))
        assert records[0].payload == LogicalRedo((5,))
        assert records[-1].payload == LogicalRedo((19,))

    def test_seal_fallback_reports_the_same_tear_offset(self, tmp_path):
        # Whether the walk degrades from a broken seal or never had one,
        # the torn-tail offset is a property of the frame bytes alone.
        log = self._filled_log(tmp_path)
        path = tmp_path / segment_filename(0)
        buf = path.read_bytes()
        frames = list(iter_record_views(buf))
        _lsn, lo, _hi = frames[5]
        frame_start = lo - FRAME_PREFIX_SIZE - 9  # frame + body prefixes
        damaged = bytearray(buf)
        damaged[lo + 1] ^= 0x55
        path.write_bytes(bytes(damaged))
        _records, tear_with_seal, _ = log.store.load_segment(0)
        seal_path(path).unlink()
        _records, tear_without_seal, _ = log.store.load_segment(0)
        assert tear_with_seal == tear_without_seal == frame_start


class TestPreSealCompat:
    """Directories written before segment seals existed (no ``.seal``
    sidecars anywhere) must stay fully readable — the wire format never
    changed, only the accelerator beside it."""

    def test_directory_without_seals_cold_starts(self, tmp_path):
        log = durable_log(tmp_path, segment_size=8)
        for i in range(20):
            log.append(LogicalRedo((i,)))
        log.flush(barrier=True)
        for sidecar in tmp_path.glob("*.seal"):
            sidecar.unlink()
        reopened = LogManager.open(tmp_path, segment_size=8)
        assert reopened.stable_lsn == 19
        records = list(reopened.stable_records_from(0))
        assert [r.lsn for r in records] == list(range(20))
        assert [r.payload for r in records] == [LogicalRedo((i,)) for i in range(20)]

    def test_handwritten_v1_segment_file_streams(self, tmp_path):
        # A fixture file built from nothing but the v1 primitives —
        # header plus concatenated frames, no sidecar.
        records = [
            LogRecord(lsn=i, payload=LogicalRedo(("op", i)), labels={"n": i})
            for i in range(5)
        ]
        path = tmp_path / segment_filename(0)
        path.write_bytes(
            encode_file_header(0)
            + b"".join(encode_record(record) for record in records)
        )
        streamed = list(iter_file_records(path))
        assert [r.lsn for r in streamed] == [0, 1, 2, 3, 4]
        assert [r.payload for r in streamed] == [r.payload for r in records]
        assert [r.labels for r in streamed] == [r.labels for r in records]
