"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "NO" in out
        assert "figure2" in out

    def test_graphs(self, capsys):
        assert main(["graphs"]) == 0
        out = capsys.readouterr().out
        assert "removed: O -> P" in out
        assert "prefix {P}" in out

    @pytest.mark.parametrize(
        "method", ["logical", "physical", "physiological", "generalized"]
    )
    def test_demo(self, method, capsys):
        assert main(["demo", method]) == 0
        out = capsys.readouterr().out
        assert "recovered exactly" in out

    @pytest.mark.parametrize(
        "method", ["logical", "physical", "physiological", "generalized"]
    )
    def test_audit(self, method, capsys):
        assert main(["audit", method]) == 0
        out = capsys.readouterr().out
        assert "0 invariant violations" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
