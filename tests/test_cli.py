"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "NO" in out
        assert "figure2" in out

    def test_graphs(self, capsys):
        assert main(["graphs"]) == 0
        out = capsys.readouterr().out
        assert "removed: O -> P" in out
        assert "prefix {P}" in out

    @pytest.mark.parametrize(
        "method", ["logical", "physical", "physiological", "generalized"]
    )
    def test_demo(self, method, capsys):
        assert main(["demo", method]) == 0
        out = capsys.readouterr().out
        assert "recovered exactly" in out

    @pytest.mark.parametrize(
        "method", ["logical", "physical", "physiological", "generalized"]
    )
    def test_audit(self, method, capsys):
        assert main(["audit", method]) == 0
        out = capsys.readouterr().out
        assert "0 invariant violations" in out

    @pytest.mark.parametrize("method", ["physiological", "generalized"])
    def test_demo_crash_at_midstream(self, method, capsys):
        assert main(["demo", method, "--seed", "7", "--crash-at", "20"]) == 0
        out = capsys.readouterr().out
        assert "seed 7" in out and "crash at 20" in out
        assert "recovered exactly" in out
        assert "state verified" in out

    def test_demo_crash_at_zero(self, capsys):
        """Crashing before any command durably loses everything — and
        the recovered incarnation still runs the full stream."""
        assert main(["demo", "physiological", "--crash-at", "0"]) == 0
        out = capsys.readouterr().out
        assert "recovered exactly 0 durable operations" in out
        assert "state verified" in out

    def test_demo_crash_at_out_of_range(self, capsys):
        assert main(["demo", "physiological", "--crash-at", "10000"]) == 2
        assert "--crash-at must be in" in capsys.readouterr().err

    def test_demo_seed_changes_workload(self, capsys):
        assert main(["demo", "physiological", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["demo", "physiological", "--seed", "4"]) == 0
        second = capsys.readouterr().out
        assert "seed 3" in first and "seed 4" in second

    def test_audit_seed_flag(self, capsys):
        assert main(["audit", "generalized", "--seed", "11"]) == 0
        assert "0 invariant violations" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
