"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "NO" in out
        assert "figure2" in out

    def test_graphs(self, capsys):
        assert main(["graphs"]) == 0
        out = capsys.readouterr().out
        assert "removed: O -> P" in out
        assert "prefix {P}" in out

    @pytest.mark.parametrize(
        "method", ["logical", "physical", "physiological", "generalized"]
    )
    def test_demo(self, method, capsys):
        assert main(["demo", method]) == 0
        out = capsys.readouterr().out
        assert "recovered exactly" in out

    @pytest.mark.parametrize(
        "method", ["logical", "physical", "physiological", "generalized"]
    )
    def test_audit(self, method, capsys):
        assert main(["audit", method]) == 0
        out = capsys.readouterr().out
        assert "0 invariant violations" in out

    @pytest.mark.parametrize("method", ["physiological", "generalized"])
    def test_demo_crash_at_midstream(self, method, capsys):
        assert main(["demo", method, "--seed", "7", "--crash-at", "20"]) == 0
        out = capsys.readouterr().out
        assert "seed 7" in out and "crash at 20" in out
        assert "recovered exactly" in out
        assert "state verified" in out

    def test_demo_crash_at_zero(self, capsys):
        """Crashing before any command durably loses everything — and
        the recovered incarnation still runs the full stream."""
        assert main(["demo", "physiological", "--crash-at", "0"]) == 0
        out = capsys.readouterr().out
        assert "recovered exactly 0 durable operations" in out
        assert "state verified" in out

    def test_demo_crash_at_out_of_range(self, capsys):
        assert main(["demo", "physiological", "--crash-at", "10000"]) == 2
        assert "--crash-at must be in" in capsys.readouterr().err

    def test_demo_seed_changes_workload(self, capsys):
        assert main(["demo", "physiological", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["demo", "physiological", "--seed", "4"]) == 0
        second = capsys.readouterr().out
        assert "seed 3" in first and "seed 4" in second

    def test_audit_seed_flag(self, capsys):
        assert main(["audit", "generalized", "--seed", "11"]) == 0
        assert "0 invariant violations" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestLogdump:
    """The ``logdump`` command over real segment files."""

    def _durable_run(self, tmp_path, method="physiological", **db_kwargs):
        from repro.engine import KVDatabase
        from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

        db = KVDatabase(method=method, log_dir=tmp_path, **db_kwargs)
        db.run(
            generate_kv_workload(
                5, KVWorkloadSpec(n_operations=30, n_keys=8, put_ratio=0.7)
            )
        )
        db.sync()
        return db

    def test_demo_log_dir_writes_segments(self, tmp_path, capsys):
        log_dir = tmp_path / "wal"
        assert main(["demo", "physiological", "--log-dir", str(log_dir)]) == 0
        out = capsys.readouterr().out
        assert "durable log:" in out and "fsyncs" in out
        assert list(log_dir.glob("segment-*.wal"))

    def test_logdump_directory_golden(self, tmp_path, capsys):
        """The golden-format check: one header line per file, one
        ``lsn=... type=... page=... size=...B crc=ok`` line per record,
        and a record-count footer that matches the log."""
        db = self._durable_run(tmp_path)
        record_count = len(db.method.machine.log)
        assert main(["logdump", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("== segment-0000000000000000.wal (segment, base_lsn=0, ")
        body = [line for line in lines if line.startswith("  lsn=")]
        assert len(body) == record_count
        assert body[0].split() == [
            "lsn=0",
            "type=PhysiologicalRedo",
            f"page={db.method.machine.log.entry(0).payload.page_id}",
            f"size={db.method.machine.log.entry(0).size_bytes()}B",
            "crc=ok",
        ]
        assert lines[-1] == f"{record_count} records in 1 file(s)"

    def test_logdump_single_file_and_archive(self, tmp_path, capsys):
        db = self._durable_run(
            tmp_path,
            method="logical",  # its truncation point tracks the root pointer
            log_segment_size=8,
            checkpoint_every=10,
            truncate_on_checkpoint=True,
        )
        store = db.method.machine.log.store
        assert store.segments_archived > 0
        archive = store.archived_paths()[0]
        assert main(["logdump", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "(archive, base_lsn=0," in out
        assert "crc=ok" in out
        # A directory dump lists archives before live segments.
        assert main(["logdump", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.index("(archive,") < out.index("(segment,")

    def test_logdump_reports_torn_tail(self, tmp_path, capsys):
        self._durable_run(tmp_path)
        path = next(tmp_path.glob("segment-*.wal"))
        path.write_bytes(path.read_bytes()[:-3])
        # A torn tail is reported in the exit status (1), not just text.
        assert main(["logdump", str(path)]) == 1
        out = capsys.readouterr().out
        assert "torn tail at byte" in out
        assert "1 torn tail(s)" in out

    def test_logdump_missing_path(self, tmp_path, capsys):
        assert main(["logdump", str(tmp_path / "nope")]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_logdump_empty_directory(self, tmp_path, capsys):
        assert main(["logdump", str(tmp_path)]) == 2
        assert "no segment files" in capsys.readouterr().err


class TestCliTracing:
    """The ``--trace`` flags and the ``trace`` sub-command."""

    def test_demo_trace_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.obs import load_trace

        path = tmp_path / "demo.jsonl"
        assert main(["demo", "physiological", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out
        records = load_trace(str(path))  # raises if malformed
        assert any(r["type"] == "span_start" and r["name"] == "recovery" for r in records)

    def test_audit_trace_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.obs import load_trace

        path = tmp_path / "audit.jsonl"
        assert main(["audit", "generalized", "--trace", str(path)]) == 0
        assert f"trace written to {path}" in capsys.readouterr().out
        records = load_trace(str(path))
        assert any(r["name"] == "engine.command" for r in records if r["type"] == "event")

    def test_trace_command_renders_timeline(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert (
            main(["trace", "--out", str(path), "demo", "--crash-at", "30"]) == 0
        )
        out = capsys.readouterr().out
        assert "== recovery timeline ==" in out
        assert "recovery #1" in out
        assert "redo_start=" in out
        assert "segment [" in out
        assert path.exists()

    def test_trace_command_audit(self, tmp_path, capsys):
        path = tmp_path / "a.jsonl"
        assert main(["trace", "--out", str(path), "audit", "physical"]) == 0
        out = capsys.readouterr().out
        assert "== recovery timeline ==" in out

    def test_traced_crash_run_matches_report_counters(self, tmp_path, capsys):
        """The golden-file check: a traced crash run produces a
        well-formed JSON-lines trace whose recovery span totals equal the
        engine's report()/registry counters."""
        from repro.engine import KVDatabase
        from repro.obs import JsonLinesSink, RecoveryTimeline, Tracer
        from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

        path = tmp_path / "golden.jsonl"
        tracer = Tracer(JsonLinesSink(str(path)))
        db = KVDatabase(
            method="physiological",
            cache_capacity=4,
            commit_every=3,
            checkpoint_every=10,
            tracer=tracer,
        )
        stream = generate_kv_workload(
            5, KVWorkloadSpec(n_operations=50, n_keys=10, put_ratio=0.6, add_ratio=0.2)
        )
        db.run(stream)
        db.crash_and_recover()
        db.verify_against()
        report = db.report()
        tracer.close()

        timeline = RecoveryTimeline.from_file(str(path))  # validates every line
        assert len(timeline.recoveries()) == 1
        totals = timeline.totals()
        # MethodStats survives the crash, so the per-record trace events
        # must add up to exactly what the registry/report publishes.
        assert totals["method.records_scanned"] == report["method_records_scanned"]
        assert totals["method.records_replayed"] == report["method_records_replayed"]
        assert totals["method.records_skipped"] == report["method_records_skipped"]
        # And the recovery span's own end fields agree too.
        recovery = timeline.recoveries()[0]
        assert recovery.field("scanned") == report["method_records_scanned"]
        assert recovery.field("redo_start") is not None


class TestShardedLogdump:
    """``logdump`` over a sharded deployment root (DEPLOY.json)."""

    def _deployment(self, tmp_path, n_shards=3):
        from repro.engine import EngineSpec
        from repro.shard import ShardedDatabase

        sdb = ShardedDatabase.create(
            root=tmp_path,
            n_shards=n_shards,
            spec=EngineSpec(
                method="physiological", commit_every=1, fsync=False
            ),
        )
        sdb.run([("put", f"k{i}", i) for i in range(24)])
        sdb.sync()
        sdb.close()
        return sdb

    def test_sharded_root_dumps_every_shard(self, tmp_path, capsys):
        self._deployment(tmp_path)
        assert main(["logdump", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        # Every line except the footer carries its shard-directory prefix.
        for line in lines[:-1]:
            assert line.startswith("[shard-0")
        for shard in ("shard-00", "shard-01", "shard-02"):
            assert any(line.startswith(f"[{shard}] ==") for line in lines)
        assert lines[-1].endswith("across 3 shard(s)")
        # The per-shard record counts add up to the footer's total.
        body = [line for line in lines if "crc=" in line]
        assert lines[-1].startswith(f"{len(body)} records in")

    def test_sharded_root_torn_tail_drives_exit_code(self, tmp_path, capsys):
        self._deployment(tmp_path)
        tail = sorted((tmp_path / "shard-01").glob("segment-*.wal"))[-1]
        tail.write_bytes(tail.read_bytes()[:-3])
        assert main(["logdump", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[shard-01]" in out and "torn tail at byte" in out
        assert "1 torn tail(s)" in out

    def test_sharded_root_corrupt_manifest(self, tmp_path, capsys):
        self._deployment(tmp_path)
        (tmp_path / "DEPLOY.json").write_text("{not json")
        assert main(["logdump", str(tmp_path)]) == 2
        assert capsys.readouterr().err.strip()

    def test_plain_directory_output_is_unchanged(self, tmp_path, capsys):
        """No DEPLOY.json → the original single-log format, no prefixes."""
        from repro.engine import KVDatabase

        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_every=1
        )
        db.run([("put", "a", 1), ("put", "b", 2)])
        db.sync()
        db.close()
        assert main(["logdump", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[shard-" not in out
        assert "across" not in out
