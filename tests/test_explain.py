"""Unit and property tests for explainable states and applicability (§3.2–3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.explain import (
    explains,
    extend_prefix,
    find_explaining_prefixes,
    is_applicable,
    is_explainable,
    replay_step_preserves_explanation,
)
from repro.core.expr import Var
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.graphs import all_prefixes
from repro.workloads.opgen import OpSequenceSpec, random_operations
from tests.conftest import make_ops


class TestExplains:
    def test_full_prefix_explains_final_state(self, opq, opq_installation, initial_state):
        final = opq_installation.conflict.final_state(initial_state)
        assert explains(opq_installation, set(opq), final, initial_state)

    def test_empty_prefix_explains_initial_state(self, opq, opq_installation, initial_state):
        # Under the empty prefix, x is exposed (O reads it) and must be 0.
        assert explains(opq_installation, set(), initial_state, initial_state)
        assert not explains(opq_installation, set(), State({"x": 5}), initial_state)

    def test_unexposed_variables_are_dont_care(self, opq, opq_installation, initial_state):
        """With {O, P} installed, Q blind-writes nothing — Q reads x, so x
        stays exposed; but after installing everything but a blind write,
        its target may hold garbage."""
        c, d = make_ops(
            ("C", {"x": Var("x") + 1, "y": Var("y") + 1}),
            ("D", "x", Var("y") + 1),
        )
        installation = InstallationGraph(ConflictGraph([c, d]))
        # {C}: x unexposed (D blind-writes it) -> any x value is explained.
        for garbage in (0, 1, 99):
            assert explains(installation, {c}, State({"x": garbage, "y": 1}), initial_state)
        # but y is exposed and must hold C's value 1.
        assert not explains(installation, {c}, State({"x": 0, "y": 7}), initial_state)

    def test_non_prefix_rejected(self, opq, opq_installation, initial_state):
        O, P, Q = opq
        with pytest.raises(ValueError):
            explains(opq_installation, {Q}, initial_state, initial_state)

    def test_figure5_prefix_p(self, opq, opq_installation, initial_state):
        """The Figure 5 dashed line: {P} explains the state y=2, x=0."""
        O, P, Q = opq
        assert explains(opq_installation, {P}, State({"x": 0, "y": 2}), initial_state)
        # x stays exposed under {P} (O reads x next), so x=1 is NOT explained
        # by {P} — that state is explained by {O} or {O,P} instead.
        assert not explains(opq_installation, {P}, State({"x": 1, "y": 2}), initial_state)


class TestFindExplainingPrefixes:
    def test_scenario2(self, initial_state):
        b, a = make_ops(("B", "y", 2), ("A", "x", Var("y") + 1))
        installation = InstallationGraph(ConflictGraph([b, a]))
        crashed = State({"x": 3, "y": 0})
        found = {
            frozenset(op.name for op in prefix)
            for prefix in find_explaining_prefixes(installation, crashed, initial_state)
        }
        assert found == {frozenset(), frozenset({"A"})}

    def test_unexplainable_state_yields_nothing(self, initial_state):
        a, b = make_ops(("A", "x", Var("y") + 1), ("B", "y", 2))
        installation = InstallationGraph(ConflictGraph([a, b]))
        crashed = State({"x": 0, "y": 2})  # Scenario 1
        assert list(find_explaining_prefixes(installation, crashed, initial_state)) == []
        assert not is_explainable(installation, crashed, initial_state)


class TestApplicability:
    def test_minimal_uninstalled_is_applicable(self, opq, opq_installation, initial_state):
        """§3.3: O sees x=0 even when P is installed before it."""
        O, P, Q = opq
        state_with_p = State({"x": 0, "y": 2})
        assert is_applicable(opq_installation, O, state_with_p, initial_state)

    def test_wrong_read_values_not_applicable(self, opq, opq_installation, initial_state):
        O, P, Q = opq
        # P reads x and expects O's value 1; x=0 makes it inapplicable.
        assert not is_applicable(opq_installation, P, State({"x": 0}), initial_state)
        assert is_applicable(opq_installation, P, State({"x": 1}), initial_state)

    def test_blind_write_always_applicable(self, initial_state):
        b, a = make_ops(("B", "y", 2), ("A", "x", Var("y") + 1))
        installation = InstallationGraph(ConflictGraph([b, a]))
        for y in (0, 5, -3):
            assert is_applicable(installation, b, State({"y": y}), initial_state)


class TestExtendPrefix:
    def test_valid_extension(self, opq, opq_installation):
        O, P, Q = opq
        assert extend_prefix(opq_installation, {O}, P) == frozenset({O, P})
        assert extend_prefix(opq_installation, {P}, O) == frozenset({O, P})

    def test_non_minimal_rejected(self, opq, opq_installation):
        O, P, Q = opq
        with pytest.raises(ValueError, match="minimal"):
            extend_prefix(opq_installation, set(), Q)


class TestStepLemma:
    def test_opq_both_minimal_paths(self, opq, opq_installation, initial_state):
        O, P, Q = opq
        assert replay_step_preserves_explanation(
            opq_installation, set(), O, initial_state, initial_state
        )
        # From the installation-only prefix {P} (state x=0, y=2): O is the
        # minimal uninstalled operation and replaying it lands on {O, P}.
        assert replay_step_preserves_explanation(
            opq_installation, {P}, O, State({"x": 0, "y": 2}), initial_state
        )

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=30, deadline=None)
    def test_step_lemma_on_determined_states(self, seed):
        """For every installation prefix σ and every minimal uninstalled O:
        the state determined by σ is explained by σ, O is applicable, and
        σ;O explains S;O."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=5, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        for prefix_names in all_prefixes(installation.dag):
            prefix = {conflict.operation(name) for name in prefix_names}
            state = installation.determined_state(prefix, initial)
            assert explains(installation, prefix, state, initial)
            for minimal in installation.minimal_uninstalled(prefix):
                assert replay_step_preserves_explanation(
                    installation, prefix, minimal, state, initial
                ), (
                    f"step lemma failed for prefix {sorted(prefix_names)} "
                    f"and operation {minimal.name}"
                )
