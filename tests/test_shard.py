"""Tests for the sharded deployment layer: keymap, engine spec,
router, sessions, manifest, merged metrics, and the whole-deployment
audit (the in-memory and inline-recovery paths; the cross-process
paths live in test_shard_recovery.py)."""

import json

import pytest

from repro.engine import EngineSpec, KVDatabase
from repro.obs.metrics import MetricsError, MetricsRegistry
from repro.shard import (
    MANIFEST_NAME,
    DeploymentError,
    Keymap,
    ShardedDatabase,
    ShardRoutingError,
    is_deployment_root,
    read_manifest,
    shard_dirname,
)
from repro.workloads.kv import KVWorkloadSpec, apply_to_oracle, generate_kv_workload

ALL_METHODS = ["logical", "physical", "physiological", "generalized"]


def put_stream(n, prefix="k"):
    return [("put", f"{prefix}{i}", i) for i in range(n)]


class TestKeymap:
    def test_deterministic_and_in_range(self):
        keymap = Keymap(4, seed=7)
        again = Keymap(4, seed=7)
        for i in range(200):
            shard = keymap.shard_of(f"key{i}")
            assert 0 <= shard < 4
            assert shard == again.shard_of(f"key{i}")

    def test_seed_changes_placement(self):
        a, b = Keymap(8, seed=0), Keymap(8, seed=1)
        keys = [f"key{i}" for i in range(100)]
        assert any(a.shard_of(k) != b.shard_of(k) for k in keys)

    def test_all_shards_reachable(self):
        keymap = Keymap(4)
        owners = {keymap.shard_of(f"key{i}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        keymap = Keymap(1)
        assert keymap.shard_of("anything") == 0

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            Keymap(0)

    def test_split_preserves_per_shard_order(self):
        keymap = Keymap(3)
        stream = put_stream(50)
        parts = keymap.split(stream)
        assert sum(len(p) for p in parts) == len(stream)
        for index, part in enumerate(parts):
            assert all(keymap.shard_of(c[1]) == index for c in part)
            # relative order within a shard matches the original stream
            positions = [stream.index(c) for c in part]
            assert positions == sorted(positions)

    def test_cross_shard_copyadd_refused(self):
        keymap = Keymap(4)
        keys = [f"key{i}" for i in range(100)]
        dst = keys[0]
        src = next(k for k in keys if keymap.shard_of(k) != keymap.shard_of(dst))
        with pytest.raises(ShardRoutingError):
            keymap.owner(("copyadd", dst, (src, 1)))

    def test_colocated_copyadd_allowed(self):
        keymap = Keymap(4)
        keys = [f"key{i}" for i in range(100)]
        dst = keys[0]
        src = next(
            k
            for k in keys[1:]
            if keymap.shard_of(k) == keymap.shard_of(dst)
        )
        assert keymap.owner(("copyadd", dst, (src, 1))) == keymap.shard_of(dst)

    def test_round_trip(self):
        keymap = Keymap(5, seed=3)
        assert Keymap.from_dict(keymap.as_dict()) == keymap


class TestEngineSpec:
    def test_round_trip(self):
        spec = EngineSpec(
            method="logical", commit_every=4, checkpoint_every=10, fsync=False
        )
        assert EngineSpec.from_dict(spec.as_dict()) == spec

    def test_round_trip_is_json_safe(self):
        spec = EngineSpec(method_options={})
        assert EngineSpec.from_dict(json.loads(json.dumps(spec.as_dict()))) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            EngineSpec.from_dict({"method": "physical", "nope": 1})

    def test_build_applies_config(self):
        db = EngineSpec(method="physical", commit_every=5, n_pages=4).build()
        assert db.method_name == "physical"
        assert db.commit_every == 5
        assert db.method.n_pages == 4

    def test_build_durable_and_cold_start(self, tmp_path):
        spec = EngineSpec(method="physiological", fsync=False)
        db = spec.build(log_dir=tmp_path)
        db.run(put_stream(10))
        db.sync()
        db.crash()
        reopened = spec.cold_start(tmp_path)
        assert reopened.durable_count() == 10
        assert reopened.method.dump() == apply_to_oracle(put_stream(10))


class TestQuiesce:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_quiesce_makes_disk_self_sufficient(self, method, tmp_path):
        """After quiesce, a cold start with recover=False over the disk
        image sees the full state — no replay needed."""
        spec = EngineSpec(method=method, fsync=False, commit_every=3)
        db = spec.build(log_dir=tmp_path)
        db.run(put_stream(20))
        db.quiesce()
        expected = db.method.dump()
        disk = db.method.machine.disk
        cold = spec.cold_start(tmp_path, disk=disk, recover=False)
        assert cold.method.dump() == expected

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_quiesce_appends_nothing(self, method):
        db = EngineSpec(method=method).build()
        db.run(put_stream(15))
        before = len(db.method.machine.log)
        db.quiesce()
        db.quiesce()
        assert len(db.method.machine.log) == before

    def test_quiesce_is_idempotent_for_logical(self):
        db = EngineSpec(method="logical").build()
        db.run(put_stream(15))
        db.quiesce()
        root_lsn = db.method.shadow.checkpoint_lsn()
        db.quiesce()
        assert db.method.shadow.checkpoint_lsn() == root_lsn
        assert db.method.dump() == apply_to_oracle(put_stream(15))


class TestShardedDatabase:
    def test_routes_and_reads(self):
        sdb = ShardedDatabase.create(n_shards=4)
        stream = put_stream(40)
        sdb.run(stream)
        for _, key, value in stream:
            assert sdb.get(key) == value
        assert sdb.dump() == apply_to_oracle(stream)
        sdb.close()

    def test_commands_land_on_owning_shard(self):
        sdb = ShardedDatabase.create(n_shards=4)
        sdb.run(put_stream(40))
        for index, shard in enumerate(sdb.shards):
            for key in shard.method.dump():
                assert sdb.keymap.shard_of(key) == index
        sdb.close()

    def test_shard_count_respects_keymap(self):
        keymap = Keymap(3)
        with pytest.raises(DeploymentError):
            ShardedDatabase([KVDatabase(), KVDatabase()], keymap, EngineSpec())

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_crash_recover_verify(self, method):
        spec = EngineSpec(method=method, commit_every=3, checkpoint_every=15)
        sdb = ShardedDatabase.create(n_shards=3, spec=spec)
        stream = put_stream(45) + [("add", f"k{i}", 2) for i in range(0, 45, 4)]
        sdb.run(stream)
        sdb.crash()
        sdb.recover()
        durable = sdb.verify_against(stream)
        assert durable <= len(stream)
        sdb.close()

    def test_durable_count_sums_shards(self):
        sdb = ShardedDatabase.create(n_shards=3)
        sdb.run(put_stream(30))
        assert sdb.durable_count() == sum(
            s.durable_count() for s in sdb.shards
        ) == 30
        sdb.close()

    def test_verify_against_splits_stream(self):
        sdb = ShardedDatabase.create(n_shards=3)
        stream = put_stream(30)
        sdb.run(stream)
        assert sdb.verify_against(stream) == 30
        sdb.close()

    def test_report_is_namespaced_per_shard(self):
        sdb = ShardedDatabase.create(n_shards=2)
        sdb.run(put_stream(10))
        report = sdb.report()
        assert report["n_shards"] == 2
        assert "shard00_method_operations" in report
        assert "shard01_method_operations" in report
        total = (
            report["shard00_method_operations"]
            + report["shard01_method_operations"]
        )
        assert total == 10
        sdb.close()

    def test_theory_audit_holds(self):
        sdb = ShardedDatabase.create(
            n_shards=3, spec=EngineSpec(method="physiological", commit_every=2)
        )
        sdb.run(put_stream(30))
        sdb.commit()
        verdict = sdb.theory_audit()
        assert verdict.holds
        assert len(verdict.shard_audits) == 3
        assert not verdict.misplaced
        sdb.close()

    def test_theory_audit_catches_misplaced_key(self):
        """A write that bypasses the router voids the Theorem 3 stitch —
        the deployment audit must say so even though every per-shard
        invariant still holds."""
        sdb = ShardedDatabase.create(n_shards=2)
        sdb.run(put_stream(10))
        sdb.commit()
        key = "k0"
        wrong = 1 - sdb.keymap.shard_of(key)
        sdb.shards[wrong].execute(("put", key, 99))  # around the router
        sdb.shards[wrong].commit()
        verdict = sdb.theory_audit()
        assert not verdict.holds
        assert key in verdict.misplaced[wrong]
        assert "misplaced" in verdict.detail
        sdb.close()


class TestShardedSession:
    def test_session_routes_and_commits_touched_shards(self):
        sdb = ShardedDatabase.create(n_shards=3)
        session = sdb.session(commit_every=5)
        stream = put_stream(23)
        for command in stream:
            session.execute(command)
        session.commit()
        assert session.ops == 23
        assert sdb.durable_count() == 23
        for _, key, value in stream:
            assert session.get(key) == value
        sdb.close()

    def test_last_lsn_tracks_owning_shard(self):
        sdb = ShardedDatabase.create(n_shards=3)
        session = sdb.session()
        session.execute(("put", "a", 1))
        shard = sdb.keymap.shard_of("a")
        assert session.last_shard == shard
        assert session.last_lsn >= 0
        sdb.close()

    def test_commit_returns_covering_stable_lsn(self):
        sdb = ShardedDatabase.create(n_shards=3)
        session = sdb.session(commit_every=100)
        session.execute(("put", "a", 1))
        stable = session.commit()
        shard = sdb.keymap.shard_of("a")
        assert stable >= session.last_lsn
        assert (
            sdb.shards[shard].method.machine.log.stable_lsn
            >= session.last_lsn
        )
        sdb.close()

    def test_sync_barriers_every_shard(self):
        sdb = ShardedDatabase.create(n_shards=3)
        session = sdb.session(commit_every=100)  # no auto-commit
        session.run(put_stream(12))
        session.sync()
        assert sdb.durable_count() == 12
        sdb.close()

    def test_sessions_are_independent(self):
        sdb = ShardedDatabase.create(n_shards=2)
        a, b = sdb.session(), sdb.session()
        assert a.session_id != b.session_id
        a.execute(("put", "x", 1))
        assert b.ops == 0
        sdb.close()

    def test_cross_shard_copyadd_refused_at_session(self):
        sdb = ShardedDatabase.create(n_shards=4, spec=EngineSpec(method="logical"))
        keymap = sdb.keymap
        keys = [f"key{i}" for i in range(100)]
        dst = keys[0]
        src = next(k for k in keys if keymap.shard_of(k) != keymap.shard_of(dst))
        session = sdb.session()
        with pytest.raises(ShardRoutingError):
            session.execute(("copyadd", dst, (src, 1)))
        sdb.close()


class TestManifest:
    def test_create_writes_manifest(self, tmp_path):
        root = tmp_path / "dep"
        sdb = ShardedDatabase.create(root=root, n_shards=3, seed=9)
        sdb.close()
        assert is_deployment_root(root)
        manifest = read_manifest(root)
        assert manifest["n_shards"] == 3
        assert manifest["keymap"] == {"n_shards": 3, "seed": 9}
        assert manifest["shard_dirs"] == [shard_dirname(i) for i in range(3)]
        assert EngineSpec.from_dict(manifest["spec"]) == EngineSpec()
        for dirname in manifest["shard_dirs"]:
            assert (root / dirname).is_dir()

    def test_create_refuses_existing_deployment(self, tmp_path):
        ShardedDatabase.create(root=tmp_path, n_shards=2).close()
        with pytest.raises(DeploymentError, match="already holds"):
            ShardedDatabase.create(root=tmp_path, n_shards=2)

    def test_cold_start_requires_manifest(self, tmp_path):
        with pytest.raises(DeploymentError, match=MANIFEST_NAME):
            ShardedDatabase.cold_start(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DeploymentError, match="corrupt"):
            ShardedDatabase.cold_start(tmp_path)

    def test_wrong_version_rejected(self, tmp_path):
        manifest = {"version": 99, "n_shards": 1, "shard_dirs": ["shard-00"]}
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(DeploymentError, match="version"):
            ShardedDatabase.cold_start(tmp_path)

    def test_cold_start_honors_keymap_seed(self, tmp_path):
        sdb = ShardedDatabase.create(root=tmp_path, n_shards=2, seed=5)
        sdb.run(put_stream(10))
        sdb.sync()
        sdb.close()
        cold = ShardedDatabase.cold_start(tmp_path, processes=0)
        assert cold.keymap == Keymap(2, seed=5)
        assert cold.dump() == apply_to_oracle(put_stream(10))
        cold.close()


class TestMetricsMerge:
    def test_merge_namespaces_and_stays_live(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        counter = child.counter("log.forces")
        counter.inc()
        parent.merge("shard00", child)
        assert parent.snapshot()["shard00.log.forces"] == 1
        counter.inc(4)  # late-bound: the merge reads the child live
        assert parent.snapshot()["shard00.log.forces"] == 5

    def test_merge_two_children_cannot_collide(self):
        parent = MetricsRegistry()
        for index in range(2):
            child = MetricsRegistry()
            child.counter("log.forces").inc(index + 1)
            parent.merge(f"shard{index:02d}", child)
        snapshot = parent.snapshot()
        assert snapshot["shard00.log.forces"] == 1
        assert snapshot["shard01.log.forces"] == 2

    def test_duplicate_prefix_rejected(self):
        parent = MetricsRegistry()
        parent.merge("shard00", MetricsRegistry())
        with pytest.raises(MetricsError):
            parent.merge("shard00", MetricsRegistry())

    def test_self_merge_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.merge("loop", registry)


class TestShardedWorkloads:
    @pytest.mark.parametrize("method", ["logical", "physical"])
    def test_generated_workload_with_colocated_copyadds(self, method):
        """Generated workloads include cross-key copyadds; dropping the
        cross-shard ones (the router refuses them) must leave a stream
        the deployment runs and verifies."""
        spec = KVWorkloadSpec(
            n_operations=80,
            n_keys=12,
            put_ratio=0.5,
            add_ratio=0.2,
            copyadd_ratio=0.2,
            delete_ratio=0.05,
        )
        stream = generate_kv_workload(11, spec)
        sdb = ShardedDatabase.create(
            n_shards=3, spec=EngineSpec(method=method, commit_every=2)
        )
        runnable = []
        for command in stream:
            try:
                sdb.keymap.owner(command)
            except ShardRoutingError:
                continue
            runnable.append(command)
        sdb.run(runnable)
        sdb.crash()
        sdb.recover()
        sdb.verify_against(runnable)
        sdb.close()
