"""Tests for the threaded server front-end, its client, and the
simulated-client harness (the E19 load path)."""

import json
import socket
import threading

import pytest

from repro.engine import KVDatabase
from repro.server import KVClient, KVServer, run_simulated_clients
from repro.server.client import ServerError
from repro.server.harness import client_key


@pytest.fixture()
def served_db(tmp_path):
    db = KVDatabase(
        method="physiological", log_dir=tmp_path / "wal", commit_pipeline=True
    )
    server = KVServer(db)
    server.serve_background()
    yield db, server
    server.close()


class TestProtocol:
    def test_put_commit_get_roundtrip(self, served_db):
        _, server = served_db
        with KVClient(*server.address) as client:
            assert client.ping()
            client.put("a", 1)
            client.add("a", 5)
            stable = client.commit()
            assert stable >= 0
            assert client.get("a") == 6
            client.delete("a")
            client.commit()
            assert client.get("a") is None

    def test_copyadd_and_sync(self, tmp_path):
        # copyadd is cross-key, which physiological refuses; serve the
        # logical method for this one.
        db = KVDatabase(
            method="logical", log_dir=tmp_path, commit_pipeline=True
        )
        server = KVServer(db)
        server.serve_background()
        try:
            with KVClient(*server.address) as client:
                client.put("src", 10)
                client.copyadd("dst", "src", 7)
                client.sync()
                assert client.get("dst") == 17
        finally:
            server.close()

    def test_unknown_op_is_error_reply_not_disconnect(self, served_db):
        _, server = served_db
        with KVClient(*server.address) as client:
            with pytest.raises(ServerError, match="unknown op"):
                client.request(op="frobnicate")
            assert client.ping()  # connection survived

    def test_malformed_json_is_error_reply(self, served_db):
        _, server = served_db
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False

    def test_stats_expose_sessions_and_pipeline(self, served_db):
        _, server = served_db
        with KVClient(*server.address) as client:
            client.put("a", 1)
            client.commit()
            stats = client.stats()
        assert stats["sessions_served"] >= 1
        assert stats["pipeline_commits"] >= 1
        assert stats["method"] == "physiological"


class TestConcurrentClients:
    def test_disjoint_keyspaces_commit_concurrently(self, served_db):
        db, server = served_db
        n_clients, errors = 8, []

        def one_client(i):
            try:
                with KVClient(*server.address) as client:
                    for j in range(4):
                        client.put(client_key(i, j), 100 * i + j)
                    client.commit()
                    for j in range(4):
                        assert client.get(client_key(i, j)) == 100 * i + j
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(i,))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert server.sessions_served >= n_clients
        db.verify_against()  # applied order == log order under concurrency

    def test_committed_data_survives_cold_start(self, tmp_path):
        wal = tmp_path / "wal"
        db = KVDatabase(
            method="physiological", log_dir=wal, commit_pipeline=True
        )
        server = KVServer(db)
        server.serve_background()
        with KVClient(*server.address) as client:
            client.put("durable", 42)
            client.commit()
        server.close()
        reborn = KVDatabase.cold_start(wal, method="physiological")
        assert reborn.get("durable") == 42


class TestHarness:
    def test_simulated_clients_all_durable(self, tmp_path):
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=True
        )
        result = run_simulated_clients(
            db, n_clients=25, ops_per_client=4, workers=8
        )
        assert result.clients == 25
        assert result.ops == 100
        assert result.commits == 50  # commit_every=2 + final commit folds in
        assert result.commits_per_sec > 0
        assert db.durable_count() == 100  # every client committed at the end
        db.verify_against()
        db.close()

    def test_harness_works_without_pipeline(self, tmp_path):
        """The per-session-forcing baseline path the E19 bench compares
        against."""
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=False
        )
        result = run_simulated_clients(
            db, n_clients=10, ops_per_client=2, workers=4
        )
        assert result.commits == 10
        assert db.durable_count() == 20
        db.verify_against()
        db.close()

    def test_pipeline_coalesces_under_harness_load(self, tmp_path):
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=True
        )
        run_simulated_clients(db, n_clients=40, ops_per_client=2, workers=16)
        stats = db.pipeline.stats()
        assert stats["windows"] + stats["fast_path"] < stats["commits"]
        db.close()
