"""Tests for the threaded server front-end, its client, and the
simulated-client harness (the E19 load path)."""

import json
import socket
import threading
import time

import pytest

from repro.engine import KVDatabase
from repro.server import KVClient, KVServer, run_simulated_clients
from repro.server.client import ServerError
from repro.server.harness import client_key


@pytest.fixture()
def served_db(tmp_path):
    db = KVDatabase(
        method="physiological", log_dir=tmp_path / "wal", commit_pipeline=True
    )
    server = KVServer(db)
    server.serve_background()
    yield db, server
    server.close()


class TestProtocol:
    def test_put_commit_get_roundtrip(self, served_db):
        _, server = served_db
        with KVClient(*server.address) as client:
            assert client.ping()
            client.put("a", 1)
            client.add("a", 5)
            stable = client.commit()
            assert stable >= 0
            assert client.get("a") == 6
            client.delete("a")
            client.commit()
            assert client.get("a") is None

    def test_copyadd_and_sync(self, tmp_path):
        # copyadd is cross-key, which physiological refuses; serve the
        # logical method for this one.
        db = KVDatabase(
            method="logical", log_dir=tmp_path, commit_pipeline=True
        )
        server = KVServer(db)
        server.serve_background()
        try:
            with KVClient(*server.address) as client:
                client.put("src", 10)
                client.copyadd("dst", "src", 7)
                client.sync()
                assert client.get("dst") == 17
        finally:
            server.close()

    def test_unknown_op_is_error_reply_not_disconnect(self, served_db):
        _, server = served_db
        with KVClient(*server.address) as client:
            with pytest.raises(ServerError, match="unknown op"):
                client.request(op="frobnicate")
            assert client.ping()  # connection survived

    def test_malformed_json_is_error_reply(self, served_db):
        _, server = served_db
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False

    def test_stats_expose_sessions_and_pipeline(self, served_db):
        _, server = served_db
        with KVClient(*server.address) as client:
            client.put("a", 1)
            client.commit()
            stats = client.stats()
        assert stats["sessions_served"] >= 1
        assert stats["pipeline_commits"] >= 1
        assert stats["method"] == "physiological"


class TestConcurrentClients:
    def test_disjoint_keyspaces_commit_concurrently(self, served_db):
        db, server = served_db
        n_clients, errors = 8, []

        def one_client(i):
            try:
                with KVClient(*server.address) as client:
                    for j in range(4):
                        client.put(client_key(i, j), 100 * i + j)
                    client.commit()
                    for j in range(4):
                        assert client.get(client_key(i, j)) == 100 * i + j
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(i,))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert server.sessions_served >= n_clients
        db.verify_against()  # applied order == log order under concurrency

    def test_committed_data_survives_cold_start(self, tmp_path):
        wal = tmp_path / "wal"
        db = KVDatabase(
            method="physiological", log_dir=wal, commit_pipeline=True
        )
        server = KVServer(db)
        server.serve_background()
        with KVClient(*server.address) as client:
            client.put("durable", 42)
            client.commit()
        server.close()
        reborn = KVDatabase.cold_start(wal, method="physiological")
        assert reborn.get("durable") == 42


class TestHarness:
    def test_simulated_clients_all_durable(self, tmp_path):
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=True
        )
        result = run_simulated_clients(
            db, n_clients=25, ops_per_client=4, workers=8
        )
        assert result.clients == 25
        assert result.ops == 100
        assert result.commits == 50  # commit_every=2 + final commit folds in
        assert result.commits_per_sec > 0
        assert db.durable_count() == 100  # every client committed at the end
        db.verify_against()
        db.close()

    def test_harness_works_without_pipeline(self, tmp_path):
        """The per-session-forcing baseline path the E19 bench compares
        against."""
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=False
        )
        result = run_simulated_clients(
            db, n_clients=10, ops_per_client=2, workers=4
        )
        assert result.commits == 10
        assert db.durable_count() == 20
        db.verify_against()
        db.close()

    def test_pipeline_coalesces_under_harness_load(self, tmp_path):
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=True
        )
        run_simulated_clients(db, n_clients=40, ops_per_client=2, workers=16)
        stats = db.pipeline.stats()
        assert stats["windows"] + stats["fast_path"] < stats["commits"]
        db.close()


class TestShardedServer:
    """The same front-end over a ShardedDatabase: per-command routing,
    deployment stats, and durability across a cold start."""

    @pytest.fixture()
    def sharded_server(self, tmp_path):
        from repro.engine import EngineSpec
        from repro.shard import ShardedDatabase

        sdb = ShardedDatabase.create(
            root=tmp_path / "dep",
            n_shards=3,
            spec=EngineSpec(method="physiological", commit_pipeline=True),
        )
        server = KVServer(sdb)
        server.serve_background()
        yield sdb, server
        server.close()

    def test_roundtrip_routes_by_key(self, sharded_server):
        sdb, server = sharded_server
        with KVClient(*server.address) as client:
            for i in range(12):
                client.put(f"key{i}", i)
            client.commit()
            for i in range(12):
                assert client.get(f"key{i}") == i
        # every key landed on the shard the keymap names
        for index, shard in enumerate(sdb.shards):
            for key in shard.method.dump():
                assert sdb.keymap.shard_of(key) == index

    def test_stats_report_deployment_shape(self, sharded_server):
        _, server = sharded_server
        with KVClient(*server.address) as client:
            client.put("a", 1)
            client.commit()
            stats = client.stats()
        assert stats["n_shards"] == 3
        assert stats["sessions_served"] >= 1
        assert any(key.startswith("shard02_") for key in stats)

    def test_concurrent_clients_spread_across_shards(self, sharded_server):
        sdb, server = sharded_server
        errors = []

        def one_client(i):
            try:
                with KVClient(*server.address) as client:
                    for j in range(4):
                        client.put(client_key(i, j), 100 * i + j)
                    client.commit()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sdb.durable_count() == 32
        sdb.verify_against(
            [c for shard in sdb.shards for c in shard.applied]
        )

    def test_committed_data_survives_deployment_cold_start(self, tmp_path):
        from repro.engine import EngineSpec
        from repro.shard import ShardedDatabase

        root = tmp_path / "dep"
        sdb = ShardedDatabase.create(
            root=root, n_shards=2, spec=EngineSpec(commit_pipeline=True)
        )
        server = KVServer(sdb)
        server.serve_background()
        with KVClient(*server.address) as client:
            client.put("durable", 42)
            client.put("other", 7)
            client.commit()
        server.close()
        reborn = ShardedDatabase.cold_start(root, processes=0)
        assert reborn.get("durable") == 42
        assert reborn.get("other") == 7
        reborn.close()


def _sever(client) -> None:
    """Sever the client's socket end.  Tolerates the race where closing
    the listener already RST a connection still sitting unaccepted in
    the backlog — shutdown then raises ENOTCONN, which *is* the severed
    state the caller wanted."""
    try:
        client._sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass


class TestClientRetries:
    def test_retries_off_by_default(self, tmp_path):
        # A closed listener does not kill established connections (each
        # handler runs on its own daemon thread), so sever the client's
        # socket too — the observable form of a server dying under it.
        db = KVDatabase(method="physiological", commit_pipeline=True)
        server = KVServer(db)
        server.serve_background()
        client = KVClient(*server.address)
        assert client.retries == 0
        server.close()
        _sever(client)
        with pytest.raises((ConnectionError, OSError)):
            client.put("a", 1)
        client.close()

    def test_retry_rides_over_a_server_restart(self, tmp_path):
        """Kill the listener mid-conversation, restart it on the same
        port, and watch a retries>0 client reconnect and finish."""
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=True
        )
        server = KVServer(db)
        server.serve_background()
        host, port = server.address
        client = KVClient(host, port, retries=8, backoff=0.01)
        client.put("before", 1)
        client.commit()
        server.close()
        _sever(client)  # the old peer is gone

        def restart():
            time.sleep(0.05)
            reborn_db = KVDatabase.cold_start(
                tmp_path, method="physiological", commit_pipeline=True
            )
            reborn = KVServer(reborn_db, host=host, port=port)
            reborn.serve_background()
            return reborn

        restarter = ThreadWithResult(restart)
        restarter.start()
        # The listener is down right now: this request must survive the
        # refused-connect window via backoff, then land on the reborn
        # server's fresh session.
        client.put("after", 2)
        client.commit()
        assert client.reconnects >= 1
        assert client.get("before") == 1
        assert client.get("after") == 2
        client.close()
        restarter.join()
        restarter.result.close()

    def test_retry_budget_exhausts(self):
        """With the listener gone for good, every redial is refused: the
        budget burns down and the last failure propagates."""
        db = KVDatabase(method="physiological", commit_pipeline=True)
        server = KVServer(db)
        server.serve_background()
        client = KVClient(*server.address, retries=2, backoff=0.01)
        server.close()
        _sever(client)
        with pytest.raises((ConnectionError, OSError)):
            client.put("a", 1)
        assert client.reconnects == 0  # no redial ever succeeded
        client.close()

    def test_server_errors_are_never_retried(self, tmp_path):
        db = KVDatabase(method="physiological", commit_pipeline=True)
        server = KVServer(db)
        server.serve_background()
        client = KVClient(*server.address, retries=5, backoff=0.01)
        with pytest.raises(ServerError):
            client.request(op="frobnicate")
        assert client.reconnects == 0
        client.close()
        server.close()


class ThreadWithResult(threading.Thread):
    def __init__(self, fn):
        super().__init__()
        self.fn = fn
        self.result = None

    def run(self):
        self.result = self.fn()
