"""Tests for partial-order logs (§4.1)."""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.polog import PartialOrderLog, first_by_name, recover_partial
from repro.core.recovery import Log, recover
from repro.graphs import all_prefixes
from repro.workloads.opgen import OpSequenceSpec, random_operations

SPEC = OpSequenceSpec(n_operations=6, n_variables=3)


class TestStructure:
    def test_consistent_by_construction(self, opq, opq_conflict):
        assert PartialOrderLog(opq_conflict).is_consistent()

    def test_extra_edges_allowed(self, initial_state):
        from tests.conftest import make_ops

        # Two non-conflicting operations: the log may order them freely.
        a, b = make_ops(("A", "x", 1), ("B", "y", 2))
        conflict = ConflictGraph([a, b])
        free = PartialOrderLog(conflict)
        assert set(free.minimal_unrecovered({a, b})) == {a, b}
        pinned = PartialOrderLog(conflict, extra_edges=[(b, a)])
        assert pinned.is_consistent()
        assert pinned.minimal_unrecovered({a, b}) == [b]

    def test_minimal_unrecovered(self, opq, opq_conflict):
        O, P, Q = opq
        log = PartialOrderLog(opq_conflict)
        # O -> P is a conflict (wr) edge, so the log must order them.
        assert set(log.minimal_unrecovered({O, P, Q})) == {O}
        assert set(log.minimal_unrecovered({P, Q})) == {P}
        assert set(log.minimal_unrecovered({Q})) == {Q}


class TestRecoverPartial:
    def test_matches_linear_recovery(self, opq, initial_state):
        conflict = ConflictGraph(list(opq))
        linear = recover(initial_state, Log.from_operations(list(opq)))
        partial = recover_partial(initial_state, PartialOrderLog(conflict))
        assert partial.state == linear.state
        assert partial.redo_set == linear.redo_set

    def test_tie_break_does_not_change_result(self, opq, initial_state):
        O, P, Q = opq
        conflict = ConflictGraph(list(opq))
        log = PartialOrderLog(conflict)
        by_name = recover_partial(initial_state, log, tie_break=first_by_name)
        reverse = recover_partial(
            initial_state, log, tie_break=lambda cands: max(cands, key=lambda o: o.name)
        )
        assert by_name.state == reverse.state

    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_tie_breaks_all_recover(self, seed, tie_seed):
        """§4.1's point at scale: for every installation-prefix crash
        state, recovery over the partial-order log with *random* minimal
        choices reaches the final state."""
        ops = random_operations(seed, SPEC)
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        final = conflict.final_state(initial)
        variables = set()
        for op in ops:
            variables |= op.variables()
        polog = PartialOrderLog(conflict)
        rng = Random(tie_seed * 131 + seed)

        def random_tie(candidates):
            return rng.choice(sorted(candidates, key=lambda o: o.name))

        for prefix_names in all_prefixes(installation.dag, limit=12):
            prefix = {conflict.operation(name) for name in prefix_names}
            state = installation.determined_state(prefix, initial)
            outcome = recover_partial(
                state, polog, checkpoint=prefix, tie_break=random_tie
            )
            assert outcome.state.agrees_with(final, variables)

    def test_bad_tie_break_rejected(self, opq, initial_state):
        import pytest

        O, P, Q = opq
        conflict = ConflictGraph(list(opq))
        log = PartialOrderLog(conflict)
        with pytest.raises(ValueError, match="non-candidate"):
            recover_partial(
                initial_state, log, tie_break=lambda cands: Q
            )  # Q is never minimal first
