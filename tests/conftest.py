"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.conflict import ConflictGraph
from repro.core.expr import Var, assign, blind_write
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State
from repro.workloads.opgen import scenario_library


@pytest.fixture
def initial_state() -> State:
    return State()


@pytest.fixture
def scenarios():
    return scenario_library()


@pytest.fixture
def opq():
    """The paper's running example (Figures 4, 5, 7): O, P, Q."""
    O = assign("O", "x", Var("x") + 1)
    P = assign("P", "y", Var("x") + 1)
    Q = assign("Q", "x", Var("x") + 2)
    return O, P, Q


@pytest.fixture
def opq_conflict(opq) -> ConflictGraph:
    return ConflictGraph(list(opq))


@pytest.fixture
def opq_installation(opq_conflict) -> InstallationGraph:
    return InstallationGraph(opq_conflict)


def make_ops(*specs: tuple) -> list[Operation]:
    """Compact operation builder for tests.

    Each spec is ``(name, target, expr_or_value)`` for a single assignment
    or ``(name, {target: expr_or_value, ...})`` for multi-assignments.
    Plain values become blind writes.
    """
    from repro.core.expr import Const, Expr

    operations = []
    for spec in specs:
        if len(spec) == 2:
            name, assignments = spec
            lifted = {
                target: value if isinstance(value, Expr) else Const(value)
                for target, value in assignments.items()
            }
            operations.append(Operation.from_assignments(name, lifted))
        else:
            name, target, value = spec
            if isinstance(value, Expr):
                operations.append(assign(name, target, value))
            else:
                operations.append(blind_write(name, target, value))
    return operations
