"""Unit and property tests for exposed variables (§2.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.exposed import (
    all_variables,
    exposed_variables,
    is_exposed,
    is_unexposed,
    strictly_exposed_variables,
    unexposed_variables,
)
from repro.core.expr import Var
from repro.workloads.opgen import OpSequenceSpec, random_operations
from tests.conftest import make_ops


class TestDefinition:
    def test_untouched_variable_is_exposed(self):
        ops = make_ops(("A", "x", 1))
        graph = ConflictGraph(ops)
        # No operation outside I accesses z -> exposed.
        assert is_exposed(graph, [], "z")

    def test_all_installed_means_everything_exposed(self):
        ops = make_ops(("A", "x", 1), ("B", "y", Var("x")))
        graph = ConflictGraph(ops)
        assert exposed_variables(graph, ops) == {"x", "y"}

    def test_minimal_reader_outside_means_exposed(self):
        w, r = make_ops(("W", "x", 1), ("R", "y", Var("x") + 1))
        graph = ConflictGraph([w, r])
        # I = {W}: R is outside and reads x -> x exposed.
        assert is_exposed(graph, [w], "x")

    def test_minimal_blind_writer_means_unexposed(self):
        r, w = make_ops(("R", "y", Var("x") + 1), ("W", "x", 7))
        graph = ConflictGraph([r, w])
        # I = {R}: W is the only outside accessor of x and blind-writes it.
        assert is_unexposed(graph, [r], "x")

    def test_reader_behind_blind_writer_stays_unexposed(self):
        # I = {}: accessors of x are W (blind write) then R (read).
        # Minimal is W, which blind-writes -> unexposed: the replay of W
        # will fix x before R reads it.
        w, r = make_ops(("W", "x", 7), ("R", "y", Var("x") + 1))
        graph = ConflictGraph([w, r])
        assert is_unexposed(graph, [], "x")

    def test_reading_writer_keeps_variable_exposed(self):
        inc, = make_ops(("I", "x", Var("x") + 1))
        graph = ConflictGraph([inc])
        # Minimal accessor reads x before writing -> exposed.
        assert is_exposed(graph, [], "x")

    def test_scenario3_x_unexposed_after_partial_c(self):
        """Figure 3: with I = {C}, D blind-writes x, so x is unexposed,
        while y (read by D) is exposed."""
        c, d = make_ops(
            ("C", {"x": Var("x") + 1, "y": Var("y") + 1}),
            ("D", "x", Var("y") + 1),
        )
        graph = ConflictGraph([c, d])
        assert unexposed_variables(graph, [c]) == {"x"}
        assert exposed_variables(graph, [c]) == {"y"}


class TestMonotonicity:
    """§2.3's flip claims, tested on the H,J example and at random."""

    def test_growing_installed_set_can_flip_both_ways(self):
        h, j = make_ops(
            ("H", {"x": Var("x") + 1, "y": Var("y") + 1}),
            ("J", "y", 0),
        )
        graph = ConflictGraph([h, j])
        # I = {}: minimal accessor of y is H, which reads y -> exposed.
        assert is_exposed(graph, [], "y")
        # I = {H}: minimal outside accessor is J, blind write -> unexposed.
        assert is_unexposed(graph, [h], "y")
        # I = {H, J}: nothing outside -> exposed again.
        assert is_exposed(graph, [h, j], "y")

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=40, deadline=None)
    def test_growing_conflict_graph_keeps_unexposed_unexposed(self, seed):
        """Appending operations while I stays fixed can flip exposed ->
        unexposed but never unexposed -> exposed."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=7, n_variables=3))
        for cut in range(1, len(ops)):
            smaller = ConflictGraph(ops[:cut])
            larger = ConflictGraph(ops[: cut + 1])
            installed = []  # fixed I
            for variable in all_variables(smaller):
                if is_unexposed(smaller, installed, variable):
                    assert is_unexposed(larger, installed, variable)


class TestStrictVariant:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=40, deadline=None)
    def test_some_equals_all_minimal_readers(self, seed):
        """Because accessors of a variable where one writes are always
        conflict-ordered, 'some minimal accessor reads' and 'all minimal
        accessors read' coincide — the paper's wording is unambiguous."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        graph = ConflictGraph(ops)
        for cut in range(len(ops) + 1):
            installed = ops[:cut]
            assert exposed_variables(graph, installed) == strictly_exposed_variables(
                graph, installed
            )
