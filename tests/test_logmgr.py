"""Unit tests for log records and the log manager."""

import pytest

from repro.logmgr import (
    CheckpointRecord,
    LogManager,
    LogicalRedo,
    MultiPageRedo,
    PageAction,
    PhysicalRedo,
    PhysiologicalRedo,
    WalViolation,
)
from repro.storage.page import Page


class TestPageAction:
    def test_put(self):
        page = Page("p1")
        PageAction("put", ("k", 5)).apply_to(page, lsn=3)
        assert page.get("k") == 5
        assert page.lsn == 3

    def test_delete(self):
        page = Page("p1", {"k": 5})
        PageAction("delete", ("k",)).apply_to(page)
        assert page.get("k") is None

    def test_add_reads_current_value(self):
        page = Page("p1", {"k": 10})
        PageAction("add", ("k", 7)).apply_to(page)
        assert page.get("k") == 17

    def test_add_missing_cell_starts_at_zero(self):
        page = Page("p1")
        PageAction("add", ("k", 7)).apply_to(page)
        assert page.get("k") == 7

    def test_truncate(self):
        page = Page("p1", {"a": 1, "m": 2, "z": 3})
        PageAction("truncate", ("m",)).apply_to(page, lsn=4)
        assert page.cells == {"a": 1}
        assert page.lsn == 4

    def test_split_move_requires_reader(self):
        page = Page("p2")
        with pytest.raises(ValueError, match="reader"):
            PageAction("split-move", ("p1", "m")).apply_to(page)

    def test_split_move(self):
        source = Page("p1", {"a": 1, "m": 2, "z": 3})
        target = Page("p2", {"stale": 9})
        PageAction("split-move", ("p1", "m")).apply_to(
            target, lsn=5, reader=lambda pid: source
        )
        assert target.cells == {"m": 2, "z": 3}
        assert target.lsn == 5

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            PageAction("explode", ()).apply_to(Page("p1"))


class TestRecordSizes:
    def test_all_payloads_have_positive_size(self):
        payloads = [
            PhysicalRedo("p1", {"k": 1}),
            PhysiologicalRedo("p1", PageAction("put", ("k", 1))),
            LogicalRedo(("kv-put", "k", 1)),
            MultiPageRedo(("p1",), {"p2": (PageAction("split-move", ("p1", "m")),)}),
            CheckpointRecord(("A",)),
        ]
        for payload in payloads:
            assert payload.size_bytes() > 0

    def test_physical_size_grows_with_payload(self):
        small = PhysicalRedo("p1", {"k": 1})
        big = PhysicalRedo("p1", {"k": "x" * 200})
        assert big.size_bytes() > small.size_bytes()

    def test_multipage_smaller_than_physical_image_of_moved_half(self):
        """The heart of §6.4: a split-move record costs O(1) while the
        physical image of the moved half costs O(contents)."""
        moved_half = {f"key{i}": f"value-{i}" * 3 for i in range(50)}
        physical = PhysicalRedo("new-page", moved_half, whole_page=True)
        generalized = MultiPageRedo(
            ("old-page",),
            {"new-page": (PageAction("split-move", ("old-page", "key25")),)},
        )
        assert generalized.size_bytes() < physical.size_bytes() / 5


class TestEncodedSizeBytes:
    """``LogRecord.size_bytes`` reports the true on-wire frame length."""

    PAYLOADS = [
        PhysicalRedo("p1", {"k": 1}),
        PhysicalRedo("data003", {"key0001": "value-123" * 3}, whole_page=True),
        PhysiologicalRedo("p1", PageAction("put", ("k", 1))),
        PhysiologicalRedo("data005", PageAction("copycell", ("a", "b", 42))),
        LogicalRedo(("kv-put", "k0001", 12345)),
        MultiPageRedo(("p1",), {"p2": (PageAction("split-move", ("p1", "m")),)}),
        CheckpointRecord(("physiological", {"data001": 5, "data002": 9})),
        CheckpointRecord(("physical",)),
    ]

    def test_size_bytes_is_exact_encoded_length(self):
        from repro.logmgr import encode_record
        from repro.logmgr.records import LogRecord

        for payload in self.PAYLOADS:
            record = LogRecord(lsn=123, payload=payload, labels={"page": "p1"})
            assert record.size_bytes() == len(encode_record(record))

    def test_size_bytes_is_cached(self):
        from repro.logmgr.records import LogRecord

        record = LogRecord(lsn=0, payload=PhysicalRedo("p1", {"k": "v" * 50}))
        first = record.size_bytes()
        assert record.size_bytes() == first
        assert record.__dict__["_encoded_size"] == first

    def test_unencodable_payload_falls_back_to_estimate(self):
        from repro.core.model import Operation
        from repro.logmgr.records import LogRecord

        op = Operation("w1", frozenset(), frozenset({"x"}), lambda env: {"x": 1})
        record = LogRecord(lsn=0, payload=op)
        assert record.size_bytes() == record.estimated_size_bytes()

    def test_legacy_estimate_within_stated_bound(self):
        """The legacy repr-proportional estimate stays within a factor
        of 4 (either way) of the true encoded frame length — the stated
        bound under which the E6/E6b log-volume *trends* measured with
        the estimate remain honest for encoded logs."""
        from repro.logmgr.records import LogRecord

        for payload in self.PAYLOADS:
            record = LogRecord(lsn=123, payload=payload)
            encoded = record.size_bytes()
            estimate = record.estimated_size_bytes()
            assert encoded / 4 <= estimate <= encoded * 4, (
                payload,
                encoded,
                estimate,
            )


class TestLogManager:
    def test_lsns_are_dense_and_increasing(self):
        log = LogManager()
        lsns = [log.append(LogicalRedo(("noop",))).lsn for _ in range(5)]
        assert lsns == [0, 1, 2, 3, 4]
        assert log.next_lsn == 5

    def test_nothing_stable_before_flush(self):
        log = LogManager()
        log.append(LogicalRedo(("a",)))
        assert log.stable_lsn == -1
        assert log.stable_entries() == []

    def test_flush_all(self):
        log = LogManager()
        for i in range(3):
            log.append(LogicalRedo((i,)))
        log.flush()
        assert log.stable_lsn == 2
        assert len(log.stable_entries()) == 3

    def test_partial_flush(self):
        log = LogManager()
        for i in range(5):
            log.append(LogicalRedo((i,)))
        log.flush(up_to_lsn=2)
        assert log.stable_lsn == 2
        assert [e.lsn for e in log.stable_entries()] == [0, 1, 2]

    def test_wal_check(self):
        log = LogManager()
        entry = log.append(LogicalRedo(("a",)))
        with pytest.raises(WalViolation):
            log.wal_check(entry.lsn)
        log.flush()
        log.wal_check(entry.lsn)  # now fine

    def test_crash_truncates_volatile_tail(self):
        log = LogManager()
        log.append(LogicalRedo(("a",)))
        log.flush()
        log.append(LogicalRedo(("b",)))
        log.crash()
        assert len(log) == 1
        assert log.entries()[0].payload == LogicalRedo(("a",))

    def test_entries_from(self):
        log = LogManager()
        for i in range(4):
            log.append(LogicalRedo((i,)))
        log.flush()
        assert [e.lsn for e in log.entries_from(2)] == [2, 3]

    def test_byte_accounting(self):
        log = LogManager()
        log.append(PhysicalRedo("p1", {"k": "v" * 50}))
        assert log.total_bytes() > 50
        assert log.stable_bytes() == 0
        log.flush()
        assert log.stable_bytes() == log.total_bytes()
