"""Edge-case tests sweeping the corners the main suites skim over."""

import pytest

from repro.core.expr import Concat, Const, Sub, Var
from repro.core.model import State
from repro.logmgr import LogManager, LogicalRedo, PageAction
from repro.methods import Machine, PhysiologicalKV
from repro.storage import Disk, Page


class TestMachineOptions:
    def test_wal_can_be_disabled(self):
        """A machine without WAL enforcement flushes pages freely — the
        configuration exists so experiments can show why WAL matters."""
        machine = Machine(enforce_wal=False)
        assert machine.pool.log_manager is None
        entry = machine.log.append(LogicalRedo(("x",)))
        machine.pool.update(
            "p", lambda p: p.put("k", 1, lsn=entry.lsn), create=True
        )
        machine.pool.flush_page("p")  # no log force happened
        assert machine.log.stable_lsn == -1
        assert machine.disk.read_page("p").get("k") == 1

    def test_reboot_preserves_capacity_and_policy(self):
        machine = Machine(cache_capacity=7, cache_policy="clock")
        machine.crash()
        machine.reboot_pool()
        assert machine.pool.capacity == 7
        assert machine.pool.policy == "clock"
        assert not machine.crashed


class TestStateEdges:
    def test_none_default_state(self):
        state = State(default=None)
        assert state["anything"] is None
        updated = state.updated({"x": 0})
        assert updated["x"] == 0 and updated["y"] is None

    def test_bound_variables(self):
        state = State({"x": 1})
        state.set("y", 2)
        assert state.bound_variables() == {"x", "y"}


class TestExprEdges:
    def test_sub_and_rsub(self):
        assert Sub(Const(10), Var("x")).evaluate({"x": 3}) == 7
        assert (1 - Var("x")).evaluate({"x": 3}) == -2

    def test_concat_variables(self):
        expr = Concat(Var("a"), Concat(Const("-"), Var("b")))
        assert expr.evaluate({"a": "x", "b": "y"}) == "x-y"
        assert expr.variables() == frozenset({"a", "b"})


class TestPageActionEdges:
    def test_set_meta_is_put(self):
        page = Page("p")
        PageAction("set-meta", ("__type__", "leaf")).apply_to(page, lsn=1)
        assert page.get("__type__") == "leaf"
        assert page.lsn == 1

    def test_copycell_missing_source(self):
        page = Page("p")
        PageAction("copycell", ("dst", "ghost", 4)).apply_to(page)
        assert page.get("dst") == 4

    def test_truncate_empty_page(self):
        page = Page("p")
        PageAction("truncate", ("k",)).apply_to(page, lsn=2)
        assert len(page) == 0 and page.lsn == 2

    def test_action_str(self):
        assert str(PageAction("put", ("k", 1))) == "put('k', 1)"


class TestLogManagerEdges:
    def test_flush_beyond_end_is_clamped(self):
        log = LogManager()
        log.append(LogicalRedo(("a",)))
        log.flush(up_to_lsn=99)
        assert log.stable_lsn == 0

    def test_repeated_flush_counts_once_per_advance(self):
        log = LogManager()
        log.append(LogicalRedo(("a",)))
        log.flush()
        flushes = log.forced_flushes
        log.flush()  # nothing new to force
        assert log.forced_flushes == flushes

    def test_crash_on_empty_log(self):
        log = LogManager()
        log.crash()
        assert len(log) == 0


class TestDiskEdges:
    def test_faults_fire_in_arming_order(self):
        from repro.storage import LostWriteFault

        disk = Disk()
        disk.write_page(Page("p", {"k": 0}))
        disk.arm_fault(LostWriteFault("p"))
        disk.arm_fault(LostWriteFault("p"))
        disk.write_page(Page("p", {"k": 1}))  # lost
        disk.write_page(Page("p", {"k": 2}))  # lost
        disk.write_page(Page("p", {"k": 3}))  # lands
        assert disk.read_page("p").get("k") == 3

    def test_fault_for_other_page_does_not_fire(self):
        from repro.storage import LostWriteFault

        disk = Disk()
        disk.arm_fault(LostWriteFault("other"))
        disk.write_page(Page("p", {"k": 1}))
        assert disk.read_page("p").get("k") == 1


class TestMethodEdges:
    def test_get_before_any_write(self):
        kv = PhysiologicalKV(Machine(), n_pages=2)
        assert kv.get("nothing") is None

    def test_dump_empty(self):
        kv = PhysiologicalKV(Machine(), n_pages=2)
        assert kv.dump() == {}

    def test_recover_on_empty_log(self):
        kv = PhysiologicalKV(Machine(), n_pages=2)
        kv.crash()
        kv.recover()
        assert kv.dump() == {}

    def test_checkpoint_on_empty_history(self):
        kv = PhysiologicalKV(Machine(), n_pages=2)
        kv.checkpoint()
        kv.put("k", 1)
        kv.commit()
        kv.crash()
        kv.recover()
        assert kv.get("k") == 1
