"""Tests for the ARIES-style analysis phase (§4.3 made concrete)."""

from repro.logmgr import (
    CheckpointRecord,
    LogEntry,
    MultiPageRedo,
    PageAction,
    PhysiologicalRedo,
)
from repro.methods import Machine, PhysiologicalKV
from repro.methods.physiological import analysis_pass


def phys(lsn, page):
    return LogEntry(lsn, PhysiologicalRedo(page, PageAction("put", ("k", lsn))))


def ckpt(lsn, table: dict):
    return LogEntry(
        lsn, CheckpointRecord(("physiological", tuple(sorted(table.items()))))
    )


class TestAnalysisPass:
    def test_empty_log(self):
        table, redo_start = analysis_pass([])
        assert table == {} and redo_start == 0

    def test_no_checkpoint_scans_from_zero(self):
        table, redo_start = analysis_pass([phys(0, "a"), phys(1, "b")])
        assert table == {"a": 0, "b": 1}
        assert redo_start == 0

    def test_checkpoint_table_is_seed(self):
        entries = [phys(0, "a"), ckpt(1, {"a": 0}), phys(2, "b")]
        table, redo_start = analysis_pass(entries)
        assert table == {"a": 0, "b": 2}
        assert redo_start == 0  # a's recLSN is before the checkpoint

    def test_clean_table_starts_after_checkpoint(self):
        entries = [phys(0, "a"), ckpt(1, {}), phys(2, "b")]
        table, redo_start = analysis_pass(entries)
        assert table == {"b": 2}
        assert redo_start == 2

    def test_empty_table_and_no_tail(self):
        entries = [phys(0, "a"), ckpt(1, {})]
        table, redo_start = analysis_pass(entries)
        assert table == {}
        assert redo_start == 2  # nothing to redo: start past the checkpoint

    def test_later_checkpoint_wins(self):
        entries = [
            ckpt(0, {"stale": 0}),
            phys(1, "a"),
            ckpt(2, {"a": 1}),
            phys(3, "a"),  # already in table: recLSN stays 1
            phys(4, "b"),
        ]
        table, redo_start = analysis_pass(entries)
        assert table == {"a": 1, "b": 4}
        assert redo_start == 1

    def test_multipage_records_dirty_written_pages(self):
        record = LogEntry(
            0,
            MultiPageRedo(
                ("src",), {"dst": (PageAction("copyfrom", ("src", "s", "d", 1)),)}
            ),
        )
        table, redo_start = analysis_pass([record])
        assert table == {"dst": 0}
        assert "src" not in table  # read pages are not dirtied


class TestAnalysisDrivesRecovery:
    def test_recovery_scans_only_from_reconstructed_start(self):
        kv = PhysiologicalKV(Machine(cache_capacity=32), n_pages=4)
        for i in range(6):
            kv.put(f"k{i}", i)
        kv.commit()
        kv.machine.pool.flush_all()  # dirty table drains
        kv.checkpoint()              # snapshot: empty table
        kv.put("late1", 1)
        kv.put("late2", 2)
        kv.commit()
        kv.crash()
        kv.recover()
        assert kv.dump()["late1"] == 1 and kv.dump()["late2"] == 2
        assert kv.stats.records_replayed == 2

    def test_fuzzy_checkpoint_keeps_old_reclsn(self):
        """A page dirty across the checkpoint keeps its pre-checkpoint
        recLSN in the snapshot, so redo starts early enough."""
        kv = PhysiologicalKV(Machine(cache_capacity=32), n_pages=1)
        kv.put("early", 1)   # dirties the single page at LSN 0
        kv.checkpoint()      # fuzzy: page still dirty, snapshot has recLSN 0
        kv.put("later", 2)
        kv.commit()
        kv.crash()
        kv.recover()
        assert kv.dump() == {"early": 1, "later": 2}
        assert kv.stats.records_replayed == 2  # both records redone
