"""Round-trip and torn-tail tests for the binary wire format.

The property half generates randomized instances of every payload type
(all ``PageAction`` kinds, labels, checkpoints) from seeded ``Random``
streams and asserts encode→decode is the identity.  The adversarial half
flips bytes, truncates frames, and checks the torn-tail rule: a damaged
record ends the stable log, cleanly, every time.
"""

import random

import pytest

from repro.logmgr.codec import (
    FILE_HEADER_SIZE,
    FRAME_PREFIX_SIZE,
    CodecError,
    TornTail,
    decode_file_header,
    decode_frame,
    decode_record_body,
    encode_file_header,
    encode_record,
    encode_value,
    encode_window,
    encoded_size,
    decode_value,
    iter_frames,
    iter_record_views,
)
from repro.logmgr.records import (
    CheckpointRecord,
    LogRecord,
    LogicalRedo,
    MultiPageRedo,
    PageAction,
    PhysicalRedo,
    PhysiologicalRedo,
)

ACTION_KINDS = (
    "put",
    "delete",
    "add",
    "split-move",
    "truncate",
    "set-meta",
    "copycell",
    "copyfrom",
)


def random_value(rng: random.Random, depth: int = 0):
    """One random codec-representable value (bounded nesting)."""
    scalar_makers = [
        lambda: None,
        lambda: rng.choice([True, False]),
        lambda: rng.randint(-(2**62), 2**62),
        lambda: rng.randint(2**64, 2**80),  # forces the bigint path
        lambda: rng.random() * 1e6 - 5e5,
        lambda: "".join(rng.choices("abcxyz-éλ0123", k=rng.randint(0, 12))),
        lambda: bytes(rng.randbytes(rng.randint(0, 16))),
    ]
    makers = list(scalar_makers)
    if depth < 2:
        makers += [
            lambda: tuple(random_value(rng, depth + 1) for _ in range(rng.randint(0, 3))),
            lambda: [random_value(rng, depth + 1) for _ in range(rng.randint(0, 3))],
            lambda: {
                rng.choice(["a", "b", "c", 1, 2]): random_value(rng, depth + 1)
                for _ in range(rng.randint(0, 3))
            },
        ]
    return rng.choice(makers)()


def random_action(rng: random.Random) -> PageAction:
    """A random action of a random kind with shape-correct args."""
    kind = rng.choice(ACTION_KINDS)
    if kind in ("put", "set-meta"):
        args = (f"k{rng.randint(0, 99)}", random_value(rng))
    elif kind == "delete":
        args = (f"k{rng.randint(0, 99)}",)
    elif kind == "add":
        args = (f"k{rng.randint(0, 99)}", rng.randint(-50, 50))
    elif kind == "split-move":
        args = (f"page{rng.randint(0, 9)}", f"k{rng.randint(0, 99)}")
    elif kind == "truncate":
        args = (f"k{rng.randint(0, 99)}",)
    elif kind == "copycell":
        args = (f"a{rng.randint(0, 9)}", f"b{rng.randint(0, 9)}", rng.randint(-9, 9))
    else:  # copyfrom
        args = (
            f"page{rng.randint(0, 9)}",
            f"src{rng.randint(0, 9)}",
            f"dst{rng.randint(0, 9)}",
            rng.randint(-9, 9),
        )
    return PageAction(kind, args)


def random_payload(rng: random.Random):
    """A random instance of a random §6 payload type."""
    choice = rng.randrange(5)
    if choice == 0:
        cells = {
            f"k{rng.randint(0, 99)}": random_value(rng)
            for _ in range(rng.randint(0, 5))
        }
        return PhysicalRedo(
            f"page{rng.randint(0, 9)}", cells, whole_page=rng.random() < 0.3
        )
    if choice == 1:
        return PhysiologicalRedo(f"page{rng.randint(0, 9)}", random_action(rng))
    if choice == 2:
        return LogicalRedo(
            tuple(random_value(rng) for _ in range(rng.randint(1, 4)))
        )
    if choice == 3:
        writes = {
            f"page{rng.randint(0, 9)}": tuple(
                random_action(rng) for _ in range(rng.randint(1, 3))
            )
            for _ in range(rng.randint(1, 3))
        }
        reads = tuple(f"page{rng.randint(0, 9)}" for _ in range(rng.randint(0, 2)))
        return MultiPageRedo(reads, writes)
    return CheckpointRecord(
        tuple(random_value(rng) for _ in range(rng.randint(0, 3)))
    )


def random_record(rng: random.Random, lsn: int) -> LogRecord:
    """A random record with random labels."""
    labels = {
        rng.choice(["page", "note", "image", "origin"]): random_value(rng)
        for _ in range(rng.randint(0, 2))
    }
    return LogRecord(lsn=lsn, payload=random_payload(rng), labels=labels)


class TestValueRoundTrip:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_values_round_trip(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            value = random_value(rng)
            out = bytearray()
            encode_value(value, out)
            decoded, end = decode_value(bytes(out), 0)
            assert decoded == value
            assert end == len(out)

    def test_bool_is_not_confused_with_int(self):
        for value in (True, False, 0, 1):
            out = bytearray()
            encode_value(value, out)
            decoded, _ = decode_value(bytes(out), 0)
            assert decoded == value and type(decoded) is type(value)

    def test_bigint_beyond_i64(self):
        for value in (2**63, -(2**63) - 1, 10**40, -(10**40)):
            out = bytearray()
            encode_value(value, out)
            decoded, _ = decode_value(bytes(out), 0)
            assert decoded == value

    def test_unencodable_value_raises(self):
        with pytest.raises(CodecError, match="no wire encoding"):
            encode_value(object(), bytearray())

    def test_truncated_value_raises_codec_error(self):
        out = bytearray()
        encode_value("hello world", out)
        with pytest.raises(CodecError, match="truncated"):
            decode_value(bytes(out[:-3]), 0)


class TestRecordRoundTrip:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_records_round_trip(self, seed):
        rng = random.Random(1000 + seed)
        for lsn in range(30):
            record = random_record(rng, lsn)
            frame = encode_record(record)
            decoded, end = decode_frame(frame, 0)
            assert end == len(frame)
            assert decoded.lsn == record.lsn
            assert decoded.payload == record.payload
            assert decoded.labels == record.labels

    def test_every_action_kind_round_trips(self):
        rng = random.Random(7)
        kinds_seen = set()
        for _ in range(400):
            action = random_action(rng)
            kinds_seen.add(action.kind)
            record = LogRecord(lsn=0, payload=PhysiologicalRedo("p", action))
            decoded, _ = decode_frame(encode_record(record), 0)
            assert decoded.payload.action == action
        assert kinds_seen == set(ACTION_KINDS)

    def test_unencodable_payload_raises(self):
        record = LogRecord(lsn=0, payload=("not", "a", "payload"))
        with pytest.raises(CodecError, match="no wire encoding"):
            encode_record(record)


class TestTornTail:
    def _frames(self, n=5):
        rng = random.Random(42)
        return [encode_record(random_record(rng, lsn)) for lsn in range(n)]

    def test_clean_buffer_decodes_fully(self):
        frames = self._frames()
        buf = b"".join(frames)
        assert [r.lsn for r in iter_frames(buf)] == [0, 1, 2, 3, 4]

    def test_truncated_last_frame_ends_stream(self):
        frames = self._frames()
        buf = b"".join(frames)[:-3]  # tear inside the last frame
        assert [r.lsn for r in iter_frames(buf)] == [0, 1, 2, 3]

    def test_corrupted_byte_ends_stream_at_that_record(self):
        frames = self._frames()
        # Flip a byte in the body of frame 2.
        offset = len(frames[0]) + len(frames[1]) + FRAME_PREFIX_SIZE + 2
        buf = bytearray(b"".join(frames))
        buf[offset] ^= 0xFF
        assert [r.lsn for r in iter_frames(bytes(buf))] == [0, 1]

    def test_decode_frame_reports_tear_offset_and_reason(self):
        frames = self._frames(2)
        buf = b"".join(frames)[:-1]
        _, offset = decode_frame(buf, 0)
        with pytest.raises(TornTail) as info:
            decode_frame(buf, offset)
        assert info.value.offset == offset
        assert "truncated" in info.value.reason

    def test_crc_mismatch_is_a_tear_not_an_error(self):
        frame = bytearray(self._frames(1)[0])
        frame[-1] ^= 0x01
        with pytest.raises(TornTail, match="crc mismatch"):
            decode_frame(bytes(frame), 0)

    def test_bytes_after_a_tear_are_never_decoded(self):
        """The torn-tail rule: even a perfectly valid frame after a torn
        one is firmware noise, not history."""
        frames = self._frames(3)
        damaged = bytearray(frames[1])
        damaged[FRAME_PREFIX_SIZE] ^= 0xFF
        buf = frames[0] + bytes(damaged) + frames[2]
        assert [r.lsn for r in iter_frames(buf)] == [0]


class TestFileHeader:
    def test_round_trip(self):
        header = encode_file_header(123456)
        assert len(header) == FILE_HEADER_SIZE
        assert decode_file_header(header) == 123456

    def test_bad_magic_raises(self):
        header = bytearray(encode_file_header(0))
        header[0] ^= 0xFF
        with pytest.raises(CodecError, match="magic"):
            decode_file_header(bytes(header))

    def test_short_header_raises(self):
        with pytest.raises(CodecError, match="shorter"):
            decode_file_header(b"RL")


class TestWindowEncoding:
    """The batch encoder is a pure packing optimization: its output must
    be byte-identical to the per-record encoder's frames, concatenated."""

    def _random_records(self, seed: int, n: int = 40) -> list:
        rng = random.Random(seed)
        return [random_record(rng, lsn) for lsn in range(n)]

    @pytest.mark.parametrize("seed", range(6))
    def test_window_bytes_identical_to_per_record_frames(self, seed):
        records = self._random_records(seed)
        window = bytes(encode_window(records))
        assert window == b"".join(encode_record(record) for record in records)

    def test_window_round_trips_every_payload_kind(self):
        payloads = [PhysiologicalRedo("p1", PageAction(kind, args)) for kind, args in [
            ("put", ("k1", 7)),
            ("delete", ("k1",)),
            ("add", ("k2", -3)),
            ("split-move", ("p2", "k9")),
            ("truncate", ("k5",)),
            ("set-meta", ("root", "p3")),
            ("copycell", ("a1", "b1", 4)),
            ("copyfrom", ("p4", "src", "dst", 2)),
        ]]
        payloads += [
            PhysicalRedo("p9", {"k": [1, "x", None]}, whole_page=True),
            LogicalRedo(("op", ("nested",), {"m": 2})),
            MultiPageRedo(("p1",), {"p2": (PageAction("put", ("k", 1)),)}),
            CheckpointRecord(("state", 42)),
        ]
        records = [
            LogRecord(lsn=i, payload=p, labels={"page": f"p{i}"} if i % 2 else {})
            for i, p in enumerate(payloads)
        ]
        buf = encode_file_header(0) + bytes(encode_window(records))
        decoded = [
            decode_record_body(lsn, buf[lo:hi])
            for lsn, lo, hi in iter_record_views(buf)
        ]
        assert decoded == records
        assert [r.labels for r in decoded] == [r.labels for r in records]

    @pytest.mark.parametrize("seed", range(3))
    def test_window_annotates_exact_frame_sizes(self, seed):
        records = self._random_records(seed, n=25)
        encode_window(records)
        for record in records:
            assert record.size_bytes() == len(encode_record(record))

    def test_empty_window_raises(self):
        with pytest.raises(CodecError, match="empty window"):
            encode_window([])


class TestEncodedSizeProperty:
    """``encoded_size(record) == len(encode_record(record))`` — the
    batch encoder's pre-sizing and the log's byte accounting both lean
    on the analytic size being exact, for every value and payload kind."""

    @pytest.mark.parametrize("seed", range(10))
    def test_analytic_size_matches_wire_for_random_records(self, seed):
        rng = random.Random(1000 + seed)
        for lsn in range(30):
            record = random_record(rng, lsn)
            assert encoded_size(record) == len(encode_record(record))

    def test_analytic_size_matches_for_every_action_kind(self):
        cases = [
            ("put", ("k1", {"nested": (1, 2.5, None, True)})),
            ("delete", ("k1",)),
            ("add", ("k2", 10**25)),
            ("split-move", ("p2", "k9")),
            ("truncate", ("k5",)),
            ("set-meta", ("root", b"\x00\xff")),
            ("copycell", ("a1", "b1", 4)),
            ("copyfrom", ("p4", "src", "dst", 2)),
        ]
        for lsn, (kind, args) in enumerate(cases):
            record = LogRecord(
                lsn=lsn,
                payload=PhysiologicalRedo("p1", PageAction(kind, args)),
                labels={"origin": "test"},
            )
            assert encoded_size(record) == len(encode_record(record))

    def test_analytic_size_matches_for_every_payload_class(self):
        payloads = [
            PhysicalRedo("p1", {"k": "v"}, whole_page=False),
            PhysiologicalRedo("p1", PageAction("put", ("k", 1))),
            LogicalRedo(("op", [1, 2], {"a": "b"})),
            MultiPageRedo(("p1", "p2"), {"p3": (PageAction("delete", ("k",)),)}),
            CheckpointRecord((("dirty", "p1"),)),
        ]
        for lsn, payload in enumerate(payloads):
            record = LogRecord(lsn=lsn, payload=payload, labels={})
            assert encoded_size(record) == len(encode_record(record))

    def test_analytic_size_matches_for_every_value_kind(self):
        values = [None, True, False, 0, -1, 2**40, -(2**70), 3.14, "", "héλ",
                  b"", b"\x01\x02", (), (1, (2,)), [], [1, [2]], {}, {"k": {"n": 1}}]
        for lsn, value in enumerate(values):
            record = LogRecord(
                lsn=lsn,
                payload=PhysiologicalRedo("p1", PageAction("put", ("k", value))),
                labels={"v": value},
            )
            assert encoded_size(record) == len(encode_record(record))
