"""Quality gates on the public API surface.

- every public module, class, and function carries a docstring;
- ``repro.__all__`` re-exports resolve and are importable;
- module docstrings exist everywhere (they are the architecture docs).
"""

import importlib
import inspect
import pathlib
import pkgutil

import repro

SRC = pathlib.Path(repro.__file__).parent


def all_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__
            for module in all_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in all_modules():
            for name, member in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(member) or inspect.isfunction(member)):
                    continue
                if getattr(member, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        """Docstrings may be inherited: an override of a documented base
        method (e.g. a RecoveryMethodKV implementation) is documented by
        its interface (inspect.getdoc follows the MRO)."""
        undocumented = []
        for module in all_modules():
            for name, cls in vars(module).items():
                if name.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != module.__name__:
                    continue
                for method_name, method in vars(cls).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (inspect.getdoc(getattr(cls, method_name)) or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
        assert undocumented == []


class TestExports:
    def test_dunder_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None or name == "__version__"

    def test_core_all_resolves(self):
        from repro import core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_version_matches_pyproject(self):
        pyproject = (SRC.parent.parent / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject
