"""Equivalence tests for the incremental theory core.

The conflict graph, installation graph, exposure memo, and variable
partition are all maintained incrementally (append-at-a-time) in the
library.  These tests pin them to independent from-scratch references:

- a definitional O(N^2) backward-scan conflict-graph builder written
  here, sharing no code with the library's single-pass construction;
- the batch constructors (``ConflictGraph(ops)``,
  ``InstallationGraph(conflict)``), which must agree with a graph grown
  one :meth:`ConflictGraph.append` at a time under subscription;
- the uncached exposure functions and the definitional
  :func:`strictly_exposed_variables`, which the memoized
  :class:`ExposureMemo` must match across random interleavings of
  appends, installs, and uninstalls;
- a plain BFS component grouping for :class:`VariablePartition`.

Lemma 1 is what makes these equivalences theorems rather than accidents:
any linear extension regenerates the same conflict graph, so in
particular the generating order does, one operation at a time.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import RW, WR, WW, ConflictGraph
from repro.core.exposed import (
    ExposureMemo,
    exposed_variables,
    is_exposed,
    strictly_exposed_variables,
)
from repro.core.explain import explains
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.partition import VariablePartition, partition_operations
from repro.graphs import Dag
from repro.workloads.opgen import OpSequenceSpec, random_operations

SPEC = OpSequenceSpec(n_operations=12, n_variables=4)
DENSE = OpSequenceSpec(n_operations=10, n_variables=2, read_extra=0.8)
SPARSE = OpSequenceSpec(n_operations=14, n_variables=8, blind_ratio=0.7)
SPECS = [SPEC, DENSE, SPARSE]

seeds = st.integers(min_value=0, max_value=5_000)


def reference_conflict_dag(ops):
    """The §2.2 conflict graph by definitional backward scan.

    For each operation, scan the prefix right-to-left: ``wr`` from the
    last writer of each read variable, ``ww`` from the last writer of
    each written variable, ``rw`` from every accessor that read the
    variable at or after that write (an operation that reads and writes
    a variable reads first, so it counts as a reader after its own
    write).  Deliberately quadratic and index-based — it shares nothing
    with the library's single-pass scan-state construction.
    """
    dag = Dag()
    for op in ops:
        dag.add_node(op.name)
    for j, op in enumerate(ops):
        incoming: dict[str, set[str]] = {}

        def last_write_index(variable):
            for i in range(j - 1, -1, -1):
                if ops[i].writes(variable):
                    return i
            return None

        for variable in op.read_set:
            i = last_write_index(variable)
            if i is not None:
                incoming.setdefault(ops[i].name, set()).add(WR)
        for variable in op.write_set:
            i = last_write_index(variable)
            if i is not None:
                incoming.setdefault(ops[i].name, set()).add(WW)
            for k in range(0 if i is None else i, j):
                if ops[k].reads(variable) and ops[k] is not op:
                    incoming.setdefault(ops[k].name, set()).add(RW)
        for source, labels in incoming.items():
            dag.add_edge(source, op.name, labels=labels, check_acyclic=False)
    return dag


class TestIncrementalConflictGraph:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_append_equals_batch_equals_definition(self, seed):
        for spec in SPECS:
            ops = random_operations(seed, spec)
            batch = ConflictGraph(ops)
            grown = ConflictGraph()
            for op in ops:
                grown.append(op)
            assert grown.dag.same_structure(batch.dag, with_labels=True)
            assert grown.dag.same_structure(
                reference_conflict_dag(ops), with_labels=True
            )

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_append_feed_carries_the_complete_edge_delta(self, seed):
        """Rebuilding a dag purely from the subscription feed must
        reproduce the graph — the contract installation graphs rely on."""
        ops = random_operations(seed, SPEC)
        conflict = ConflictGraph()
        shadow = Dag()

        def listen(operation, incoming):
            shadow.add_node(operation.name)
            for source, labels in incoming.items():
                shadow.add_edge(
                    source, operation.name, labels=labels, check_acyclic=False
                )

        conflict.subscribe(listen)
        conflict.extend(ops)
        assert shadow.same_structure(conflict.dag, with_labels=True)


class TestIncrementalInstallationGraph:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_subscription_equals_filter_construction(self, seed):
        for spec in SPECS:
            ops = random_operations(seed, spec)
            conflict = ConflictGraph()
            incremental = InstallationGraph(conflict)  # built via _on_append
            conflict.extend(ops)
            batch = InstallationGraph(ConflictGraph(ops))  # built via filter
            assert incremental.dag.same_structure(batch.dag, with_labels=True)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_prefixes_agree_between_constructions(self, seed):
        ops = random_operations(seed, OpSequenceSpec(n_operations=7, n_variables=3))
        conflict = ConflictGraph()
        incremental = InstallationGraph(conflict)
        conflict.extend(ops)
        batch = InstallationGraph(ConflictGraph(ops))
        grown_prefixes = {frozenset(op.name for op in p) for p in incremental.prefixes()}
        batch_prefixes = {frozenset(op.name for op in p) for p in batch.prefixes()}
        assert grown_prefixes == batch_prefixes


class TestExposureMemo:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_memo_agrees_with_uncached_across_interleavings(self, seed):
        """Random append/install/uninstall/replace interleavings: after
        every step, every memoized verdict must equal the uncached one
        and the exposed set must equal the definitional strict one."""
        rng = random.Random(seed)
        pool = random_operations(seed, OpSequenceSpec(n_operations=16, n_variables=4))
        graph = ConflictGraph()
        memo = ExposureMemo(graph)
        appended = []
        next_op = 0
        for _ in range(40):
            action = rng.random()
            if (action < 0.4 or not appended) and next_op < len(pool):
                graph.append(pool[next_op])
                appended.append(pool[next_op])
                next_op += 1
            elif action < 0.6 and appended:
                memo.install(rng.choice(appended))
            elif action < 0.8 and appended:
                memo.uninstall(rng.choice(appended))
            elif appended:
                memo.set_installed(rng.sample(appended, rng.randrange(len(appended) + 1)))
            installed = memo.installed
            for variable in graph.variable_index.variables():
                assert memo.is_exposed(variable) == is_exposed(
                    graph, installed, variable
                )
            assert memo.exposed_variables() == exposed_variables(graph, installed)
            assert memo.exposed_variables() == strictly_exposed_variables(
                graph, installed
            )

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_memo_tracks_appends_after_memoization(self, seed):
        """A memoized verdict must be invalidated by a later append that
        touches the variable."""
        ops = random_operations(seed, SPEC)
        graph = ConflictGraph(ops[: len(ops) // 2])
        memo = ExposureMemo(graph)
        memo.exposed_variables()  # populate the memo
        for op in ops[len(ops) // 2 :]:
            graph.append(op)
            assert memo.exposed_variables() == exposed_variables(
                graph, memo.installed
            )


class TestExplainabilityAgreement:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_explains_agrees_between_constructions(self, seed):
        ops = random_operations(seed, OpSequenceSpec(n_operations=7, n_variables=3))
        initial = State()
        conflict = ConflictGraph()
        incremental = InstallationGraph(conflict)
        conflict.extend(ops)
        batch = InstallationGraph(ConflictGraph(ops))
        for prefix in incremental.prefixes(limit=40):
            determined = incremental.determined_state(prefix, initial)
            perturbed = determined.updated(
                {variable: 10_000 for variable in list(determined.bound_variables())[:1]}
            )
            for state in (determined, perturbed):
                assert explains(incremental, prefix, state, initial) == explains(
                    batch, prefix, state, initial
                )


class TestLogGraphs:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_log_conflict_graph_tracks_appends(self, seed):
        ops = random_operations(seed, SPEC)
        from repro.core.recovery import Log

        half = len(ops) // 2
        log = Log(ops[:half])
        first = log.conflict_graph()
        assert first.dag.same_structure(
            ConflictGraph(ops[:half]).dag, with_labels=True
        )
        installation = log.installation_graph()
        for op in ops[half:]:
            log.append(op)
        # Same live objects, extended past the watermark — no rebuild.
        assert log.conflict_graph() is first
        assert log.installation_graph() is installation
        assert first.dag.same_structure(ConflictGraph(ops).dag, with_labels=True)
        assert installation.dag.same_structure(
            InstallationGraph(ConflictGraph(ops)).dag, with_labels=True
        )

    def test_graph_analysis_feeds_the_recovery_loop(self):
        from repro.core.recovery import Log, graph_analysis, recover

        ops = random_operations(7, OpSequenceSpec(n_operations=5, n_variables=3))
        log = Log(ops)
        outcome = recover(State(), log, analyze=graph_analysis())
        baseline = recover(State(), Log(ops))
        assert outcome.state == baseline.state
        assert outcome.redo_set == baseline.redo_set
        analysis = outcome.decisions[0].analysis
        assert analysis["conflict"] is log.conflict_graph()
        assert analysis["installation"] is log.installation_graph()


class TestVariablePartition:
    @staticmethod
    def reference_components(ops):
        """Plain BFS over the shares-a-variable relation."""
        variable_ops: dict[str, list[int]] = {}
        for index, op in enumerate(ops):
            for variable in op.variables():
                variable_ops.setdefault(variable, []).append(index)
        seen: set[int] = set()
        components = []
        for start in range(len(ops)):
            if start in seen:
                continue
            frontier, members = [start], set()
            while frontier:
                index = frontier.pop()
                if index in members:
                    continue
                members.add(index)
                for variable in ops[index].variables():
                    frontier.extend(
                        other
                        for other in variable_ops[variable]
                        if other not in members
                    )
            seen |= members
            components.append([ops[i] for i in sorted(members)])
        return components

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_incremental_union_find_matches_bfs(self, seed):
        for spec in SPECS:
            ops = random_operations(seed, spec)
            partition = VariablePartition()
            for op in ops:
                partition.add(op)
            assert partition.components() == self.reference_components(ops)
            assert partition.components() == partition_operations(ops)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_components_memo_survives_interleaved_queries(self, seed):
        ops = random_operations(seed, SPARSE)
        partition = VariablePartition()
        for index, op in enumerate(ops):
            partition.add(op)
            prefix = ops[: index + 1]
            assert partition.components() == partition_operations(prefix)
            assert partition.component_count() == len(partition.components())
