"""Integration tests: the KV database and the crash simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import KVDatabase, VerificationError
from repro.sim import crash_once, crash_sweep, repeated_crashes
from repro.workloads.kv import (
    KVWorkloadSpec,
    apply_to_oracle,
    generate_kv_workload,
)

METHOD_NAMES = ["logical", "physical", "physiological", "generalized"]


def small_stream(seed=1, n=40):
    return generate_kv_workload(seed, KVWorkloadSpec(n_operations=n, n_keys=10))


class TestKVDatabase:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            KVDatabase(method="hopes-and-dreams")

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_run_matches_oracle_without_crash(self, method):
        stream = small_stream()
        db = KVDatabase(method=method, cache_capacity=4)
        db.run(stream)
        db.commit()
        oracle = apply_to_oracle(stream)
        for key, value in oracle.items():
            assert db.get(key) == value

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_verify_after_crash(self, method):
        stream = small_stream()
        db = KVDatabase(method=method, cache_capacity=4)
        db.run(stream)
        db.crash_and_recover()
        durable = db.verify_against()
        mutations = [c for c in stream if c[0] != "get"]
        assert durable == len(mutations)  # commit_every=1: everything durable

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_group_commit_can_lose_tail(self, method):
        stream = [("put", f"k{i}", i) for i in range(10)]
        db = KVDatabase(method=method, commit_every=4)
        db.run(stream)
        db.crash_and_recover()
        durable = db.verify_against()
        assert durable == 8  # two full groups of 4; the tail of 2 lost
        assert durable % 4 == 0

    def test_checkpoint_cadence_fires(self):
        db = KVDatabase(method="physiological", checkpoint_every=5)
        db.run([("put", f"k{i}", i) for i in range(12)])
        assert db.method.stats.checkpoints == 2

    def test_report_keys(self):
        db = KVDatabase(method="physical")
        db.run(small_stream(n=10))
        report = db.report()
        for key in (
            "method",
            "log_bytes",
            "disk_page_writes",
            "method_operations",
            "scheduler_installs",
        ):
            assert key in report

    def test_verification_error_is_loud(self):
        db = KVDatabase(method="physiological")
        db.run([("put", "k", 1)])
        db.crash_and_recover()
        # Sabotage the recovered state to prove verify catches divergence.
        db.method.machine.pool.update(
            db.method.page_of("k"), lambda p: p.put("k", 999), create=True
        )
        with pytest.raises(VerificationError):
            db.verify_against()


class TestCrashSim:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_sweep_every_point_recovers(self, method):
        stream = small_stream(seed=3, n=30)
        make = lambda: KVDatabase(method=method, cache_capacity=4)
        results = crash_sweep(make, stream)
        assert all(r.recovered for r in results), [
            (r.crash_point, r.error) for r in results if not r.recovered
        ]

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_sweep_with_checkpoints(self, method):
        stream = small_stream(seed=4, n=30)
        make = lambda: KVDatabase(
            method=method, cache_capacity=4, checkpoint_every=7
        )
        results = crash_sweep(make, stream, crash_points=range(0, 31, 3))
        assert all(r.recovered for r in results)

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_sweep_with_group_commit(self, method):
        stream = small_stream(seed=5, n=30)
        make = lambda: KVDatabase(method=method, commit_every=5, cache_capacity=4)
        results = crash_sweep(make, stream, crash_points=range(0, 31, 4))
        assert all(r.recovered for r in results)

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_repeated_crashes(self, method):
        stream = small_stream(seed=6, n=40)
        make = lambda: KVDatabase(method=method, cache_capacity=4)
        result = repeated_crashes(make, stream, crash_points=[10, 20, 30])
        assert result.recovered, result.error

    def test_crash_once_reports_replay_counts(self):
        stream = small_stream(seed=7, n=20)
        make = lambda: KVDatabase(method="physiological", cache_capacity=4)
        result = crash_once(make, stream, crash_point=20, continue_after=False)
        assert result.recovered
        assert result.scanned >= result.replayed

    def test_physiological_replays_less_after_flush(self):
        """The LSN redo test's payoff: flushed pages are bypassed."""
        stream = [("put", f"k{i}", i) for i in range(20)]

        def make_flushing():
            return KVDatabase(method="physiological", cache_capacity=2)

        def make_roomy():
            return KVDatabase(method="physiological", cache_capacity=64)

        flushing = crash_once(make_flushing, stream, 20, continue_after=False)
        roomy = crash_once(make_roomy, stream, 20, continue_after=False)
        assert flushing.replayed < roomy.replayed


class TestPropertySweeps:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_streams_all_methods(self, seed):
        stream = generate_kv_workload(
            seed, KVWorkloadSpec(n_operations=25, n_keys=6)
        )
        for method in METHOD_NAMES:
            make = lambda m=method: KVDatabase(method=m, cache_capacity=3)
            results = crash_sweep(
                make, stream, crash_points=[0, 7, 13, 25], continue_after=True
            )
            assert all(r.recovered for r in results), method

    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=1, max_value=8),
        st.sampled_from(METHOD_NAMES),
    )
    @settings(max_examples=15, deadline=None)
    def test_durable_horizon_respects_commit_groups(self, seed, group, method):
        stream = generate_kv_workload(
            seed, KVWorkloadSpec(n_operations=20, n_keys=5, put_ratio=1.0)
        )
        db = KVDatabase(method=method, commit_every=group, cache_capacity=4)
        db.run(stream)
        db.crash_and_recover()
        durable = db.verify_against()
        mutations = [c for c in stream if c[0] != "get"]
        # Durable horizon never regresses below the last full group and
        # never exceeds what was issued.
        assert durable >= (len(mutations) // group) * group or durable == len(mutations)
        assert durable <= len(mutations)
