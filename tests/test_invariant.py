"""Unit and property tests for the Recovery Invariant checker (§4.5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.installation import InstallationGraph
from repro.core.invariant import (
    audit_normal_operation,
    check_recovery_invariant,
    installed_set,
)
from repro.core.model import State
from repro.core.recovery import Log
from repro.graphs import all_prefixes
from repro.workloads.opgen import OpSequenceSpec, random_operations
from tests.conftest import make_ops


class TestCheckInvariant:
    def test_holds_with_full_replay_from_initial(self, opq, opq_installation, initial_state):
        log = Log.from_operations(list(opq))
        report = check_recovery_invariant(
            opq_installation, initial_state, log, initial_state, verify_outcome=True
        )
        assert report.holds
        assert report.recovered_correctly
        assert report.installed == frozenset()

    def test_holds_with_checkpoint_matching_state(self, opq, opq_installation, initial_state):
        O, P, Q = opq
        log = Log.from_operations(list(opq))
        report = check_recovery_invariant(
            opq_installation,
            State({"x": 1}),  # O's effect present
            log,
            initial_state,
            checkpoint={O},
            verify_outcome=True,
        )
        assert report.holds and report.recovered_correctly
        assert report.installed == frozenset({O})

    def test_violated_when_checkpoint_lies(self, opq, opq_installation, initial_state):
        """Checkpointing O while the state lacks O's effect: the installed
        set is a prefix but does not explain the state, and recovery
        produces the wrong final state — Corollary 4's contrapositive."""
        O, P, Q = opq
        log = Log.from_operations(list(opq))
        report = check_recovery_invariant(
            opq_installation,
            initial_state,  # x = 0, O's effect missing
            log,
            initial_state,
            checkpoint={O},
            verify_outcome=True,
        )
        assert not report.holds
        assert report.is_prefix
        assert not report.explains_state
        assert "x" in report.mismatched_variables
        assert report.recovered_correctly is False

    def test_violated_when_installed_not_a_prefix(self, opq, opq_installation, initial_state):
        """Checkpointing Q alone: {Q} is not an installation prefix."""
        O, P, Q = opq
        log = Log.from_operations(list(opq))
        report = check_recovery_invariant(
            opq_installation,
            State({"x": 3}),
            log,
            initial_state,
            checkpoint={Q},
            verify_outcome=True,
        )
        assert not report.holds
        assert not report.is_prefix

    def test_installation_only_prefix_is_legal(self, opq, opq_installation, initial_state):
        """Checkpointing P alone is fine — {P} is an installation prefix
        (the whole point of Figure 5)."""
        O, P, Q = opq
        log = Log.from_operations(list(opq))
        report = check_recovery_invariant(
            opq_installation,
            State({"x": 0, "y": 2}),
            log,
            initial_state,
            checkpoint={P},
            verify_outcome=True,
        )
        assert report.holds and report.recovered_correctly

    def test_describe_mentions_verdict(self, opq, opq_installation, initial_state):
        log = Log.from_operations(list(opq))
        report = check_recovery_invariant(
            opq_installation, initial_state, log, initial_state
        )
        assert "HOLDS" in report.describe()

    def test_installed_set_helper(self, opq):
        O, P, Q = opq
        log = Log.from_operations(list(opq))
        assert installed_set(log, {P, Q}) == {O}


class TestCorollary4:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_invariant_implies_correct_recovery(self, seed):
        """Corollary 4 over random sequences: checkpoint any installation
        prefix, set the state to that prefix's determined state, and
        recovery must reach the final state."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        log = Log.from_operations(ops)
        for prefix_names in all_prefixes(installation.dag):
            prefix = {conflict.operation(name) for name in prefix_names}
            state = installation.determined_state(prefix, initial)
            report = check_recovery_invariant(
                installation, state, log, initial,
                checkpoint=prefix, verify_outcome=True,
            )
            assert report.holds, f"invariant failed for prefix {sorted(prefix_names)}"
            assert report.recovered_correctly

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_invariant_violations_are_flagged(self, seed):
        """Checkpointing a random non-prefix (or a prefix whose effects are
        absent) must be reported as a violation whenever recovery would
        actually fail.  (The converse need not hold: a violated invariant
        can still luck into the right state, so we only assert one way.)"""
        ops = random_operations(seed, OpSequenceSpec(n_operations=5, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        log = Log.from_operations(ops)
        # Claim the LAST operation alone is installed without its effects.
        last = ops[-1]
        report = check_recovery_invariant(
            installation, initial, log, initial,
            checkpoint={last}, verify_outcome=True,
        )
        if report.recovered_correctly is False:
            assert not report.holds


class TestAuditNormalOperation:
    def test_snapshots_along_an_execution(self, opq, initial_state):
        """Simulate normal operation installing operations one at a time in
        conflict order, checkpointing as it goes; every snapshot satisfies
        the invariant."""
        O, P, Q = opq
        ops = list(opq)
        log = Log.from_operations(ops)
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        snapshots = []
        for cut in range(len(ops) + 1):
            prefix = set(ops[:cut])
            state = installation.determined_state(prefix, initial_state)
            snapshots.append((state, log, prefix))
        reports = audit_normal_operation(ops, initial_state, snapshots)
        assert all(report.holds for report in reports)
        assert all(report.recovered_correctly for report in reports)

    def test_partial_log_snapshot(self, opq, initial_state):
        """A snapshot where the log only covers executed operations."""
        O, P, Q = opq
        partial_log = Log.from_operations([O, P])
        reports = audit_normal_operation(
            list(opq),
            initial_state,
            [(State({"x": 1}), partial_log, {O})],
        )
        assert reports[0].holds
