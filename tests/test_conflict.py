"""Unit and property tests for conflict graphs (§2.2) including Lemma 1."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import RW, WR, WW, ConflictGraph
from repro.core.expr import Var
from repro.core.model import State, run_sequence
from repro.graphs.algorithms import is_linear_extension
from repro.workloads.opgen import OpSequenceSpec, random_operations
from tests.conftest import make_ops


class TestEdgeConstruction:
    def test_write_read_edge(self):
        # W writes x; R reads x.
        ops = make_ops(("W", "x", 1), ("R", "y", Var("x") + 1))
        graph = ConflictGraph(ops)
        assert graph.edge_labels(*ops) == {WR}

    def test_read_write_edge(self):
        # R reads x; W then overwrites x.
        ops = make_ops(("R", "y", Var("x") + 1), ("W", "x", 1))
        graph = ConflictGraph(ops)
        assert graph.edge_labels(*ops) == {RW}

    def test_write_write_edge(self):
        ops = make_ops(("W1", "x", 1), ("W2", "x", 2))
        graph = ConflictGraph(ops)
        assert graph.edge_labels(*ops) == {WW}

    def test_no_edge_between_disjoint_ops(self):
        ops = make_ops(("A", "x", 1), ("B", "y", 2))
        graph = ConflictGraph(ops)
        assert graph.dag.edge_count() == 0

    def test_read_read_no_edge(self):
        ops = make_ops(("R1", "a", Var("x") + 1), ("R2", "b", Var("x") + 2))
        graph = ConflictGraph(ops)
        assert not graph.has_edge(ops[0], ops[1])
        assert not graph.has_edge(ops[1], ops[0])

    def test_update_chain_gets_all_three_labels(self):
        # Two successive increments of x: wr + ww + rw all apply.
        ops = make_ops(("I1", "x", Var("x") + 1), ("I2", "x", Var("x") + 1))
        graph = ConflictGraph(ops)
        assert graph.edge_labels(*ops) == {WW, WR, RW}

    def test_preceding_write_only(self):
        # W1 then W2 then R: only W2 -> R write-read edge, W1 -> W2 ww.
        w1, w2, r = make_ops(("W1", "x", 1), ("W2", "x", 2), ("R", "y", Var("x")))
        graph = ConflictGraph([w1, w2, r])
        assert graph.edge_labels(w1, w2) == {WW}
        assert graph.edge_labels(w2, r) == {WR}
        assert not graph.has_edge(w1, r)

    def test_following_write_only(self):
        # R then W1 then W2: rw edge only to the following write W1.
        r, w1, w2 = make_ops(("R", "y", Var("x")), ("W1", "x", 1), ("W2", "x", 2))
        graph = ConflictGraph([r, w1, w2])
        assert graph.edge_labels(r, w1) == {RW}
        assert not graph.has_edge(r, w2)

    def test_opq_running_example(self, opq, opq_conflict):
        """Figure 4: O -> P (wr), O -> Q (ww + rw + wr), P -> Q (rw)."""
        O, P, Q = opq
        assert opq_conflict.edge_labels(O, P) == {WR}
        assert opq_conflict.edge_labels(O, Q) == {WW, WR, RW}
        assert opq_conflict.edge_labels(P, Q) == {RW}


class TestOrder:
    def test_ordered_before_transitive(self, opq, opq_conflict):
        O, P, Q = opq
        assert opq_conflict.ordered_before(O, Q)
        assert not opq_conflict.ordered_before(Q, O)
        assert not opq_conflict.ordered_before(O, O)

    def test_minimal_operations(self, opq, opq_conflict):
        O, P, Q = opq
        assert opq_conflict.minimal_operations() == {O}
        assert opq_conflict.minimal_operations({P, Q}) == {P}

    def test_prefix_detection(self, opq, opq_conflict):
        O, P, Q = opq
        assert opq_conflict.is_prefix(set())
        assert opq_conflict.is_prefix({O})
        assert opq_conflict.is_prefix({O, P})
        assert not opq_conflict.is_prefix({P})

    def test_linear_extension_of_subset_preserves_order(self, opq, opq_conflict):
        O, P, Q = opq
        assert opq_conflict.linear_extension({Q, P}) == [P, Q]

    def test_all_linear_extensions(self):
        ops = make_ops(("A", "x", 1), ("B", "y", 2))
        graph = ConflictGraph(ops)
        orders = [tuple(o.name for o in ext) for ext in graph.all_linear_extensions()]
        assert sorted(orders) == [("A", "B"), ("B", "A")]


class TestLemma1:
    def test_opq(self, opq_conflict):
        assert opq_conflict.check_lemma1()

    def test_scenarios(self, scenarios):
        for scenario in scenarios.values():
            graph = ConflictGraph(list(scenario.operations))
            assert graph.check_lemma1(), scenario.name

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_sequences(self, seed):
        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        graph = ConflictGraph(ops)
        assert graph.check_lemma1(limit=30)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_all_extensions_reach_same_final_state(self, seed):
        """The semantic heart of Lemma 1 + Lemma 2: execution order among
        non-conflicting operations cannot change the final state."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        graph = ConflictGraph(ops)
        initial = State()
        final = graph.final_state(initial)
        for extension in graph.all_linear_extensions(limit=20):
            assert run_sequence(extension, initial) == final

    def test_log_as_partial_order_consequence(self, opq, opq_conflict):
        """Lemma 1 consequence: any conflict-consistent total order is a
        valid log order."""
        for extension in opq_conflict.all_linear_extensions():
            assert is_linear_extension(
                opq_conflict.dag, [op.name for op in extension]
            )
