"""Tests for the theory<->system bridge: live-engine invariant audits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import KVDatabase
from repro.sim.audit import (
    AuditError,
    AuditTracker,
    audit_instant,
    audited_run,
    installation_graph_of,
)
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

MIXED = KVWorkloadSpec(
    n_operations=40,
    n_keys=6,
    put_ratio=0.35,
    add_ratio=0.25,
    copyadd_ratio=0.25,
    delete_ratio=0.0,
)


class TestCopyaddOperation:
    @pytest.mark.parametrize("method", ["logical", "physical"])
    def test_semantics(self, method):
        db = KVDatabase(method=method, cache_capacity=4)
        db.execute(("put", "src", 10))
        db.execute(("copyadd", "dst", ("src", 5)))
        assert db.get("dst") == 15

    @pytest.mark.parametrize("method", ["logical", "physical"])
    def test_survives_crash(self, method):
        db = KVDatabase(method=method, cache_capacity=4)
        db.execute(("put", "src", 10))
        db.execute(("copyadd", "dst", ("src", 5)))
        db.crash_and_recover()
        db.verify_against()
        assert db.get("dst") == 15

    def test_copyadd_of_missing_source(self):
        db = KVDatabase(method="logical")
        db.execute(("copyadd", "dst", ("ghost", 3)))
        assert db.get("dst") == 3

    def test_physiological_rejects_cross_key(self):
        db = KVDatabase(method="physiological")
        with pytest.raises(NotImplementedError, match="cross-key"):
            db.execute(("copyadd", "dst", ("src", 1)))

    @pytest.mark.parametrize("method", ["logical", "physical"])
    def test_add_chain_is_exact(self, method):
        db = KVDatabase(method=method, cache_capacity=2)
        for _ in range(5):
            db.execute(("add", "counter", 10))
        db.crash_and_recover()
        db.verify_against()
        assert db.get("counter") == 50


class TestAuditInstant:
    @pytest.mark.parametrize("method", ["logical", "physical", "physiological"])
    def test_every_instant_holds(self, method):
        spec = MIXED if method != "physiological" else KVWorkloadSpec(
            n_operations=40, n_keys=6, put_ratio=0.5, add_ratio=0.35,
            delete_ratio=0.0,
        )
        stream = generate_kv_workload(17, spec)
        db = KVDatabase(
            method=method, cache_capacity=3, commit_every=2, checkpoint_every=9
        )
        audits = audited_run(db, stream)
        assert audits, "no audits ran"
        for verdict in audits:
            assert verdict.holds, (verdict.instant, verdict.detail)

    def test_audit_counts_redo_set(self):
        db = KVDatabase(method="physiological", cache_capacity=8)
        for i in range(5):
            db.execute(("put", f"k{i}", i))
        db.commit()
        verdict = audit_instant(db)
        assert verdict.stable_records == 5
        assert verdict.redo_count == 5  # nothing flushed yet
        db.method.machine.pool.flush_all()
        verdict = audit_instant(db)
        assert verdict.redo_count == 0  # page LSNs now cover everything

    def test_audit_detects_sabotaged_page_lsn(self):
        """Forge a page LSN (claim installed without the effects): the
        audit must flag the instant."""
        db = KVDatabase(method="physiological", cache_capacity=8)
        db.execute(("add", "k", 5))
        db.execute(("add", "k", 5))
        db.commit()
        page_id = db.method.page_of("k")
        # Write a lying page image straight to disk: stale value, LSN
        # claiming the adds are installed.
        from repro.storage import Page

        db.method.machine.disk.write_page(Page(page_id, {"k": 5}, lsn=1))
        verdict = audit_instant(db)
        assert not verdict.holds
        assert "exposed" in verdict.detail

    def test_audit_detects_missing_wal(self):
        """A page flushed with effects of unstable records (WAL bypass)
        leaves the stable state unexplainable by the stable log."""
        db = KVDatabase(method="physiological", cache_capacity=8, commit_every=100)
        db.execute(("put", "k", 1))
        db.commit()
        db.execute(("add", "k", 1))  # volatile record (group commit pending)
        # Maliciously write the page (containing the volatile add's
        # effect) to disk without forcing the log.
        pool = db.method.machine.pool
        frame_page = pool.get_page(db.method.page_of("k"))
        db.method.machine.disk.write_page(frame_page)
        verdict = audit_instant(db)
        assert not verdict.holds

    def test_whole_page_records_rejected(self):
        db = KVDatabase(method="physical")
        db.execute(("put", "k", 1))
        db.execute(("delete", "k", None))
        db.commit()
        with pytest.raises(AuditError, match="whole-page"):
            audit_instant(db)


class TestIncrementalTracking:
    @pytest.mark.parametrize("method", ["logical", "physical", "physiological"])
    def test_tracked_database_audits_clean(self, method):
        """track_theory keeps one tracker synchronized during normal
        operation; its verdicts must match fresh per-instant audits."""
        spec = MIXED if method != "physiological" else KVWorkloadSpec(
            n_operations=30, n_keys=5, put_ratio=0.5, add_ratio=0.35,
            delete_ratio=0.0,
        )
        stream = generate_kv_workload(23, spec)
        db = KVDatabase(
            method=method, cache_capacity=3, commit_every=2,
            checkpoint_every=7, track_theory=True,
        )
        for index, command in enumerate(stream, start=1):
            db.execute(command)
            if index % 5 == 0:
                tracked = db.theory_audit(instant=index)
                fresh = AuditTracker(db.method).audit(instant=index)
                assert tracked.holds, (index, tracked.detail)
                assert (tracked.stable_records, tracked.redo_count) == (
                    fresh.stable_records,
                    fresh.redo_count,
                )

    def test_tracker_lifts_each_record_once(self):
        db = KVDatabase(method="physiological", track_theory=True)
        for i in range(6):
            db.execute(("put", f"k{i}", i))
        tracker = db.theory_tracker()
        graph_size = len(tracker.conflict)
        assert graph_size == 6
        db.theory_audit()  # re-audit must not re-lift anything
        assert len(tracker.conflict) == 6
        assert tracker.conflict is db.theory_tracker().conflict

    def test_method_level_audit_entrypoint(self):
        db = KVDatabase(method="physiological", cache_capacity=8)
        db.execute(("put", "k", 1))
        db.commit()
        db.method.machine.pool.flush_all()
        verdict = db.method.theory_audit()
        assert verdict.holds
        assert verdict.stable_records == 1


class TestLiftedGraphShapes:
    def test_physical_lifts_to_blind_writes_only(self):
        """§6.2 reproduced on the live engine: physical logs have no
        write-read or read-write conflicts — only ww chains — so the
        installation graph removes nothing."""
        stream = generate_kv_workload(8, MIXED)
        db = KVDatabase(method="physical", cache_capacity=4)
        db.run(stream)
        db.commit()
        installation = installation_graph_of(db)
        for _, _, labels in installation.conflict.edges():
            assert labels == {"ww"}
        assert installation.removed_edges() == []

    def test_logical_lifts_with_read_edges(self):
        stream = generate_kv_workload(8, MIXED)
        db = KVDatabase(method="logical", cache_capacity=4)
        db.run(stream)
        db.commit()
        installation = installation_graph_of(db)
        labels_seen = set()
        for _, _, labels in installation.conflict.edges():
            labels_seen |= labels
        assert {"ww", "wr", "rw"} <= labels_seen
        assert len(installation.removed_edges()) > 0

    def test_same_workload_more_flexibility_for_physical(self):
        """Physical's blind lifting yields at least as many installation
        prefixes as logical's read-bearing lifting on the same stream."""
        from repro.graphs import count_prefixes

        stream = generate_kv_workload(
            3,
            KVWorkloadSpec(
                n_operations=10, n_keys=3, put_ratio=0.4,
                copyadd_ratio=0.5, delete_ratio=0.0,
            ),
        )
        counts = {}
        for method in ("physical", "logical"):
            db = KVDatabase(method=method, cache_capacity=4)
            db.run(stream)
            db.commit()
            counts[method] = count_prefixes(installation_graph_of(db).dag)
        assert counts["physical"] >= counts["logical"]


class TestPropertyAudits:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_random_streams_audit_clean(self, seed):
        stream = generate_kv_workload(
            seed,
            KVWorkloadSpec(
                n_operations=25, n_keys=5, put_ratio=0.4, add_ratio=0.2,
                copyadd_ratio=0.2, delete_ratio=0.0,
            ),
        )
        for method in ("logical", "physical"):
            db = KVDatabase(
                method=method, cache_capacity=3, commit_every=3,
                checkpoint_every=8,
            )
            for verdict in audited_run(db, stream, audit_every=3):
                assert verdict.holds, (method, verdict.instant, verdict.detail)
