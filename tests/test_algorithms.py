"""Unit and property tests for order algorithms, cross-checked with networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    CycleError,
    Dag,
    all_prefixes,
    all_topological_sorts,
    count_prefixes,
    is_linear_extension,
    topological_sort,
    transitive_reduction,
)
from repro.graphs.algorithms import restrict_order


def diamond() -> Dag:
    return Dag(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


@st.composite
def random_dags(draw, max_nodes=7):
    """Random DAGs: edges only go from lower to higher node index."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    dag = Dag(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                dag.add_edge(i, j, check_acyclic=False)
    return dag


class TestTopologicalSort:
    def test_chain(self):
        dag = Dag(edges=[("a", "b"), ("b", "c")])
        assert topological_sort(dag) == ["a", "b", "c"]

    def test_diamond_is_valid_extension(self):
        dag = diamond()
        assert is_linear_extension(dag, topological_sort(dag))

    def test_empty(self):
        assert topological_sort(Dag()) == []

    def test_insertion_order_tie_break(self):
        dag = Dag(nodes=["z", "a", "m"])
        assert topological_sort(dag) == ["z", "a", "m"]

    @given(random_dags())
    @settings(max_examples=50, deadline=None)
    def test_always_linear_extension(self, dag):
        assert is_linear_extension(dag, topological_sort(dag))


class TestIsLinearExtension:
    def test_rejects_wrong_length(self):
        dag = diamond()
        assert not is_linear_extension(dag, ["a", "b", "c"])

    def test_rejects_wrong_nodes(self):
        dag = diamond()
        assert not is_linear_extension(dag, ["a", "b", "c", "e"])

    def test_rejects_order_violation(self):
        dag = diamond()
        assert not is_linear_extension(dag, ["b", "a", "c", "d"])

    def test_accepts_both_diamond_orders(self):
        dag = diamond()
        assert is_linear_extension(dag, ["a", "b", "c", "d"])
        assert is_linear_extension(dag, ["a", "c", "b", "d"])


class TestAllTopologicalSorts:
    def test_diamond_has_two(self):
        orders = list(all_topological_sorts(diamond()))
        assert len(orders) == 2
        assert ["a", "b", "c", "d"] in orders
        assert ["a", "c", "b", "d"] in orders

    def test_antichain_has_factorial(self):
        dag = Dag(nodes=["a", "b", "c"])
        assert len(list(all_topological_sorts(dag))) == 6

    def test_limit(self):
        dag = Dag(nodes=list(range(6)))
        assert len(list(all_topological_sorts(dag, limit=10))) == 10

    @given(random_dags(max_nodes=5))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, dag):
        ours = {tuple(order) for order in all_topological_sorts(dag)}
        g = nx.DiGraph()
        g.add_nodes_from(dag.nodes())
        g.add_edges_from((s, t) for s, t, _ in dag.edges())
        theirs = {tuple(order) for order in nx.all_topological_sorts(g)}
        assert ours == theirs


class TestAllPrefixes:
    def test_diamond_prefixes(self):
        prefixes = set(all_prefixes(diamond()))
        expected = {
            frozenset(),
            frozenset("a"),
            frozenset("ab"),
            frozenset("ac"),
            frozenset("abc"),
            frozenset("abcd"),
        }
        assert prefixes == expected

    def test_chain_has_linear_count(self):
        dag = Dag(edges=[(i, i + 1) for i in range(5)])
        assert count_prefixes(dag) == 7  # empty + 6 proper prefixes

    def test_antichain_has_powerset(self):
        dag = Dag(nodes=range(4))
        assert count_prefixes(dag) == 16

    def test_every_yield_is_a_prefix(self):
        dag = diamond()
        for prefix in all_prefixes(dag):
            assert dag.is_prefix(prefix)

    @given(random_dags(max_nodes=6))
    @settings(max_examples=30, deadline=None)
    def test_count_matches_bruteforce(self, dag):
        from itertools import chain, combinations

        nodes = dag.nodes()
        brute = sum(
            1
            for subset in chain.from_iterable(
                combinations(nodes, k) for k in range(len(nodes) + 1)
            )
            if dag.is_prefix(set(subset))
        )
        assert count_prefixes(dag) == brute


class TestTransitiveReduction:
    def test_removes_implied_edge(self):
        dag = Dag(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        reduced = transitive_reduction(dag)
        assert not reduced.has_edge("a", "c")
        assert reduced.has_edge("a", "b")
        assert reduced.has_edge("b", "c")

    def test_preserves_reachability(self):
        dag = Dag(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("a", "d"), ("d", "c")])
        reduced = transitive_reduction(dag)
        for s in dag.nodes():
            for t in dag.nodes():
                assert dag.has_path(s, t) == reduced.has_path(s, t)

    @given(random_dags(max_nodes=6))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, dag):
        g = nx.DiGraph()
        g.add_nodes_from(dag.nodes())
        g.add_edges_from((s, t) for s, t, _ in dag.edges())
        theirs = nx.transitive_reduction(g)
        ours = transitive_reduction(dag)
        assert {(s, t) for s, t, _ in ours.edges()} == set(theirs.edges())


class TestRestrictOrder:
    def test_keeps_transitive_order_through_removed_nodes(self):
        dag = Dag(edges=[("a", "b"), ("b", "c")])
        order = restrict_order(dag, ["a", "c"])
        assert order.has_edge("a", "c")

    def test_no_edges_between_incomparable(self):
        order = restrict_order(diamond(), ["b", "c"])
        assert order.edge_count() == 0

    def test_cycle_detection_in_topological_sort(self):
        dag = Dag(edges=[("a", "b")])
        # Bypass safety to build a cyclic graph, then sorting must fail.
        dag.add_edge("b", "a", check_acyclic=False)
        with pytest.raises(CycleError):
            topological_sort(dag)
