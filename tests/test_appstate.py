"""Tests for persistent applications (§7 / reference [10])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appstate import PersistentApplication, TransitionError
from repro.methods.base import Machine


def counter_step(state, event):
    kind, amount = event
    if kind == "inc":
        return state + amount
    if kind == "reset":
        return amount
    raise TransitionError(f"unknown event {kind!r}")


def stack_step(state, event):
    kind, value = event
    if kind == "push":
        return state + (value,)
    if kind == "pop":
        if not state:
            raise TransitionError("pop from empty stack")
        return state[:-1]
    raise TransitionError(f"unknown event {kind!r}")


def counter_app(**kwargs) -> PersistentApplication:
    return PersistentApplication(counter_step, 0, **kwargs)


def stack_app(**kwargs) -> PersistentApplication:
    return PersistentApplication(stack_step, (), **kwargs)


class TestNormalOperation:
    def test_events_advance_state(self):
        app = counter_app()
        app.post(("inc", 5))
        app.post(("inc", 3))
        assert app.state == 8

    def test_stack_semantics(self):
        app = stack_app()
        app.post(("push", "a"))
        app.post(("push", "b"))
        app.post(("pop", None))
        assert app.state == ("a",)

    def test_transition_errors_are_loud(self):
        app = stack_app()
        with pytest.raises(TransitionError, match="empty stack"):
            app.post(("pop", None))

    def test_unexpected_exceptions_are_wrapped(self):
        app = PersistentApplication(lambda s, e: s / 0, 1)
        with pytest.raises(TransitionError, match="transition failed"):
            app.post("boom")


class TestCrashRecovery:
    def test_uncommitted_events_lost(self):
        app = counter_app()
        app.post(("inc", 5))
        app.crash()
        app.recover()
        assert app.state == 0

    def test_committed_events_survive(self):
        app = counter_app()
        app.post(("inc", 5))
        app.post(("inc", 2))
        app.commit()
        app.crash()
        app.recover()
        assert app.state == 7
        assert app.events_replayed == 2

    def test_checkpoint_bounds_replay(self):
        app = counter_app()
        for _ in range(10):
            app.post(("inc", 1))
        app.checkpoint()
        for _ in range(3):
            app.post(("inc", 1))
        app.commit()
        app.crash()
        app.recover()
        assert app.state == 13
        assert app.events_replayed == 3  # only the post-checkpoint tail

    def test_crash_mid_checkpoint_staging_is_safe(self):
        from repro.storage import Page

        app = counter_app()
        app.post(("inc", 5))
        app.checkpoint()
        app.post(("inc", 1))
        app.commit()
        # Begin a checkpoint: stage a newer snapshot but never swing.
        app.shadow.stage_page(Page("app-state", {"state": 999}))
        app.crash()
        app.recover()
        assert app.state == 6  # staged garbage discarded, log replayed

    def test_recovery_is_repeatable(self):
        app = stack_app()
        app.post(("push", 1))
        app.post(("push", 2))
        app.commit()
        for _ in range(3):
            app.crash()
            app.recover()
        assert app.state == (1, 2)

    def test_automatic_checkpoint_cadence(self):
        app = counter_app(checkpoint_every=4)
        for _ in range(9):
            app.post(("inc", 1))
        app.crash()
        app.recover()
        # Two checkpoints happened (after 4 and 8); the 9th event was
        # never committed, so exactly 8 survive.
        assert app.state == 8
        assert app.events_replayed == 0

    def test_non_numeric_state(self):
        app = PersistentApplication(
            lambda s, e: {**s, e[0]: e[1]}, {}, checkpoint_every=3
        )
        for index in range(7):
            app.post((f"key{index}", index))
        app.commit()
        app.crash()
        app.recover()
        assert app.state == {f"key{index}": index for index in range(7)}


class TestDurabilityContract:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["inc", "reset"]), st.integers(0, 50)),
            min_size=0,
            max_size=30,
        ),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=25, deadline=None)
    def test_recovered_state_matches_durable_prefix(self, events, cut):
        """After any crash, the state equals the oracle fold of exactly
        the durable events."""
        app = counter_app(machine=Machine(), checkpoint_every=5)
        for index, event in enumerate(events):
            app.post(event)
            if index % cut == 0:
                app.commit()
        app.crash()
        app.recover()
        durable = app.durable_event_count()
        assert app.state == app.expected_state_after(list(events[:durable]))
