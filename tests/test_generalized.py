"""Tests specific to the generalized LSN-based KV engine (§6.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import KVDatabase
from repro.methods import GeneralizedKV, Machine
from repro.sim import crash_sweep
from repro.sim.audit import audited_run, installation_graph_of
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

CROSS_KEY = KVWorkloadSpec(
    n_operations=40,
    n_keys=8,
    put_ratio=0.3,
    add_ratio=0.2,
    copyadd_ratio=0.35,
    delete_ratio=0.05,
)


def cross_page_keys(kv: GeneralizedKV) -> tuple[str, str]:
    """Two keys guaranteed to live on different pages."""
    keys = [f"k{i}" for i in range(64)]
    first = keys[0]
    for key in keys[1:]:
        if kv.page_of(key) != kv.page_of(first):
            return first, key
    raise AssertionError("could not find keys on distinct pages")


class TestCrossPageCopyadd:
    def test_cross_page_record_is_multipage(self):
        from repro.logmgr import MultiPageRedo

        kv = GeneralizedKV(Machine(), n_pages=8)
        src, dst = cross_page_keys(kv)
        kv.put(src, 10)
        kv.copyadd(dst, src, 5)
        last = kv.machine.log.entries()[-1].payload
        assert isinstance(last, MultiPageRedo)
        assert kv.get(dst) == 15

    def test_same_page_record_is_single_page(self):
        from repro.logmgr import PhysiologicalRedo

        kv = GeneralizedKV(Machine(), n_pages=1)  # everything on one page
        kv.put("a", 10)
        kv.copyadd("b", "a", 5)
        last = kv.machine.log.entries()[-1].payload
        assert isinstance(last, PhysiologicalRedo)
        assert last.action.kind == "copycell"
        assert kv.get("b") == 15

    def test_cross_page_copyadd_recovers(self):
        kv = GeneralizedKV(Machine(cache_capacity=4), n_pages=8)
        src, dst = cross_page_keys(kv)
        kv.put(src, 10)
        kv.copyadd(dst, src, 5)
        kv.commit()
        kv.crash()
        kv.recover()
        assert kv.get(dst) == 15
        assert kv.get(src) == 10

    def test_flush_constraint_registered(self):
        kv = GeneralizedKV(Machine(), n_pages=8)
        src, dst = cross_page_keys(kv)
        kv.put(src, 10)
        kv.copyadd(dst, src, 5)
        pending = kv.machine.pool.pending_constraints()
        assert any(
            c.first_page == kv.page_of(dst) and c.then_page == kv.page_of(src)
            for c in pending
        )

    def test_mutual_copyadds_resolved_by_eager_flush(self):
        """a <- b then b <- a would need a constraint cycle; the pool
        resolves it by flushing eagerly, and recovery stays exact."""
        kv = GeneralizedKV(Machine(cache_capacity=8), n_pages=8)
        src, dst = cross_page_keys(kv)
        kv.put(src, 10)
        kv.put(dst, 100)
        kv.copyadd(dst, src, 1)    # dst = 11;  constraint dst-page -> src-page
        kv.copyadd(src, dst, 2)    # src = 13;  would close a cycle
        kv.commit()
        kv.machine.pool.flush_all()  # must not deadlock or raise
        kv.crash()
        kv.recover()
        assert kv.get(dst) == 11
        assert kv.get(src) == 13

    def test_violating_careful_order_breaks_recovery(self):
        """The §6.4 ablation at the KV level: flush the source page with
        a *later* value before the destination page, crash, and the
        replayed copyfrom reads the future."""
        kv = GeneralizedKV(Machine(cache_capacity=16), n_pages=8)
        src, dst = cross_page_keys(kv)
        kv.put(src, 10)
        kv.copyadd(dst, src, 5)   # dst should be 15 forever
        kv.put(src, 99)           # later update to the source
        kv.commit()
        # Violate the ordering deliberately.
        kv.machine.pool.flush_page(kv.page_of(src), force=True)
        kv.crash()
        kv.recover()
        assert kv.get(dst) == 104  # 99 + 5: the wrong, future-read value
        # The same scenario with the ordering honored is exact:
        kv2 = GeneralizedKV(Machine(cache_capacity=16), n_pages=8)
        kv2.put(src, 10)
        kv2.copyadd(dst, src, 5)
        kv2.put(src, 99)
        kv2.commit()
        kv2.machine.pool.flush_all()  # constraint order enforced
        kv2.crash()
        kv2.recover()
        assert kv2.get(dst) == 15


class TestGeneralizedSweeps:
    def test_crash_sweep_with_cross_key_workload(self):
        stream = generate_kv_workload(21, CROSS_KEY)
        make = lambda: KVDatabase(
            method="generalized", cache_capacity=4, commit_every=2,
            checkpoint_every=11,
        )
        results = crash_sweep(make, stream, crash_points=range(0, 41, 4))
        assert all(r.recovered for r in results), [
            (r.crash_point, r.error) for r in results if not r.recovered
        ]

    def test_audits_hold_throughout(self):
        stream = generate_kv_workload(22, CROSS_KEY)
        db = KVDatabase(
            method="generalized", cache_capacity=4, commit_every=3,
            checkpoint_every=9,
        )
        for verdict in audited_run(db, stream):
            assert verdict.holds, (verdict.instant, verdict.detail)

    def test_lifted_graph_has_cross_variable_read_edges(self):
        stream = generate_kv_workload(23, CROSS_KEY)
        db = KVDatabase(method="generalized", cache_capacity=4)
        db.run(stream)
        db.commit()
        installation = installation_graph_of(db)
        assert len(installation.removed_edges()) > 0

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_random_cross_key_streams(self, seed):
        stream = generate_kv_workload(
            seed,
            KVWorkloadSpec(
                n_operations=25, n_keys=6, put_ratio=0.3, add_ratio=0.2,
                copyadd_ratio=0.3, delete_ratio=0.05,
            ),
        )
        make = lambda: KVDatabase(
            method="generalized", cache_capacity=3, commit_every=2
        )
        results = crash_sweep(make, stream, crash_points=[0, 8, 17, 25])
        assert all(r.recovered for r in results), [
            r.error for r in results if not r.recovered
        ]
