"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    JsonLinesSink,
    MetricsError,
    MetricsRegistry,
    NullTracer,
    RecoveryTimeline,
    RingBufferSink,
    Tracer,
    load_trace,
)
from repro.obs.timeline import TraceReadError, build_span_tree
from repro.obs.trace import NULL_SPAN, TraceError


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("log.forces")
        c.inc()
        c.inc(2)
        assert reg.counter("log.forces") is c
        assert reg.snapshot()["log.forces"] == 3

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("a.b").inc(-1)

    def test_name_must_be_dotted(self):
        reg = MetricsRegistry()
        for bad in ("plain", "Caps.name", "a.", ".b", "a b.c"):
            with pytest.raises(MetricsError):
                reg.counter(bad)

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(MetricsError):
            reg.gauge("x.y")
        with pytest.raises(MetricsError):
            reg.histogram("x.y")

    def test_gauge_set_and_computed(self):
        reg = MetricsRegistry()
        g = reg.gauge("pool.dirty")
        g.set(7)
        assert reg.snapshot()["pool.dirty"] == 7
        computed = reg.gauge("pool.cached", fn=lambda: 42)
        assert computed.value == 42
        with pytest.raises(MetricsError):
            computed.set(1)

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("redo.scan_len")
        for v in (5, 1, 3):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["redo.scan_len.count"] == 3
        assert snap["redo.scan_len.total"] == 9
        assert snap["redo.scan_len.min"] == 1
        assert snap["redo.scan_len.max"] == 5
        assert h.mean() == 3.0

    def test_collector_namespacing(self):
        reg = MetricsRegistry()
        reg.register_collector("method", lambda: {"records_replayed": 4})
        assert reg.snapshot()["method.records_replayed"] == 4

    def test_duplicate_collector_namespace_raises(self):
        reg = MetricsRegistry()
        reg.register_collector("m", lambda: {})
        with pytest.raises(MetricsError):
            reg.register_collector("m", lambda: {})

    def test_collision_raises_instead_of_overwriting(self):
        """The fix for the historical report() hazard: a collision is an
        error, never a silent overwrite."""
        reg = MetricsRegistry()
        reg.counter("method.operations")
        reg.register_collector("method", lambda: {"operations": 9})
        with pytest.raises(MetricsError, match="collision"):
            reg.snapshot()

    def test_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("a.ops")
        reg.register_collector("labels", lambda: {"name": "x"})
        c.inc(5)
        before = reg.snapshot()
        c.inc(3)
        d = reg.delta(before)
        assert d["a.ops"] == 3
        assert d["labels.name"] == "x"  # labels pass through

    def test_as_dict_alias(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        assert reg.as_dict() == reg.snapshot()


class TestTracer:
    def test_events_and_spans_are_seq_ordered(self):
        sink = RingBufferSink()
        tr = Tracer(sink)
        with tr.span("outer", tag=1):
            tr.event("ping", n=1)
            with tr.span("inner"):
                tr.event("pong", n=2)
        records = list(sink)
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        kinds = [r["type"] for r in records]
        assert kinds == [
            "span_start", "event", "span_start", "event", "span_end", "span_end",
        ]

    def test_event_attaches_to_innermost_open_span(self):
        sink = RingBufferSink()
        tr = Tracer(sink)
        outer = tr.span("outer")
        inner = tr.span("inner")
        tr.event("deep")
        inner.end()
        tr.event("shallow")
        outer.end()
        tr.event("top")
        by_name = {r["name"]: r for r in sink if r["type"] == "event"}
        assert by_name["deep"]["span"] == inner.span_id
        assert by_name["shallow"]["span"] == outer.span_id
        assert by_name["top"]["span"] is None

    def test_double_end_raises(self):
        tr = Tracer(RingBufferSink())
        span = tr.span("s")
        span.end()
        with pytest.raises(TraceError):
            span.end()

    def test_out_of_order_end_is_tolerated(self):
        tr = Tracer(RingBufferSink())
        outer = tr.span("outer")
        inner = tr.span("inner")
        outer.end()  # crash-unwind shape: outer closes while inner is open
        inner.end()
        assert tr._stack == []

    def test_null_tracer_is_disabled_and_allocation_free(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("anything") is NULL_SPAN
        NULL_TRACER.event("ignored", x=1)
        assert NULL_TRACER.records_emitted == 0
        assert isinstance(NULL_TRACER, NullTracer)

    def test_ring_buffer_drops_oldest(self):
        sink = RingBufferSink(capacity=3)
        tr = Tracer(sink)
        for i in range(5):
            tr.event("e", i=i)
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [r["fields"]["i"] for r in sink] == [2, 3, 4]

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = Tracer(JsonLinesSink(str(path)))
        with tr.span("recovery", method="physical"):
            tr.event("recovery.record", lsn=3, decision="replayed")
        tr.close()
        records = load_trace(str(path))
        assert len(records) == 3
        assert records[0]["fields"]["method"] == "physical"


class TestTimeline:
    def _trace(self):
        sink = RingBufferSink()
        tr = Tracer(sink)
        with tr.span("recovery", method="demo", full_scan=False) as rec:
            with tr.span("recovery.analysis", scan_from=0) as an:
                an.end(redo_start=2, dirty_pages=1)
            with tr.span("recovery.segment", base_lsn=0, end_lsn=9):
                tr.event("recovery.record", lsn=2, decision="replayed")
                tr.event("recovery.record", lsn=3, decision="skipped", reason="lsn_test")
            rec.end(redo_start=2, scanned=2, replayed=1, skipped=1)
        return sink

    def test_span_tree_shape(self):
        timeline = RecoveryTimeline.from_sink(self._trace())
        [recovery] = timeline.recoveries()
        assert recovery.closed
        assert [c.name for c in recovery.children] == [
            "recovery.analysis",
            "recovery.segment",
        ]
        assert recovery.field("redo_start") == 2  # end fields win

    def test_totals_from_record_events(self):
        timeline = RecoveryTimeline.from_sink(self._trace())
        totals = timeline.totals()
        assert totals["method.records_scanned"] == 2
        assert totals["method.records_replayed"] == 1
        assert totals["method.records_skipped"] == 1

    def test_render_mentions_the_story(self):
        text = RecoveryTimeline.from_sink(self._trace()).render()
        assert "recovery #1" in text
        assert "redo_start=2" in text
        assert "segment [0..9]" in text
        assert "lsn_test=1" in text

    def test_unclosed_span_reports_interrupted(self):
        sink = RingBufferSink()
        tr = Tracer(sink)
        tr.span("recovery", method="demo")  # crash: never ended
        timeline = RecoveryTimeline.from_sink(sink)
        [recovery] = timeline.recoveries()
        assert not recovery.closed
        assert "INTERRUPTED" in timeline.render()

    def test_partitioned_summary_counts(self):
        sink = RingBufferSink()
        tr = Tracer(sink)
        with tr.span("recovery", method="physical"):
            tr.event("recovery.partitioned", scanned=10, replayed=7, skipped=3)
        totals = RecoveryTimeline.from_sink(sink).totals()
        assert totals["method.records_scanned"] == 10
        assert totals["method.records_replayed"] == 7

    def test_malformed_trace_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(TraceReadError):
            load_trace(str(path))

    def test_bad_record_type_raises(self, tmp_path):
        path = tmp_path / "bad2.jsonl"
        path.write_text(json.dumps({"seq": 0, "type": "mystery"}) + "\n")
        with pytest.raises(TraceReadError):
            load_trace(str(path))

    def test_event_for_unknown_span_raises(self):
        with pytest.raises(TraceReadError):
            build_span_tree(
                [{"seq": 0, "type": "event", "name": "e", "span": 99, "fields": {}}]
            )

    def test_double_close_raises(self):
        records = [
            {"seq": 0, "type": "span_start", "name": "s", "id": 0, "parent": None,
             "fields": {}},
            {"seq": 1, "type": "span_end", "name": "s", "id": 0, "fields": {}},
            {"seq": 2, "type": "span_end", "name": "s", "id": 0, "fields": {}},
        ]
        with pytest.raises(TraceReadError):
            build_span_tree(records)


class TestEngineIntegration:
    """The tracer threaded through a real engine produces the promised shape."""

    def _run(self, method="physiological", **db_kwargs):
        from repro.engine import KVDatabase
        from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

        sink = RingBufferSink()
        tracer = Tracer(sink)
        db = KVDatabase(
            method=method,
            cache_capacity=4,
            commit_every=2,
            checkpoint_every=10,
            tracer=tracer,
            **db_kwargs,
        )
        stream = generate_kv_workload(
            3, KVWorkloadSpec(n_operations=40, n_keys=8, put_ratio=0.7)
        )
        db.run(stream)
        db.crash_and_recover()
        db.verify_against()
        return db, RecoveryTimeline.from_sink(sink)

    def test_recovery_span_tree_reconstructs_redo(self):
        db, timeline = self._run()
        [recovery] = timeline.recoveries()
        assert recovery.field("method") == "physiological"
        assert recovery.field("redo_start") >= 0
        analysis = recovery.find("recovery.analysis")
        assert analysis and analysis[0].field("redo_start") == recovery.field(
            "redo_start"
        )
        segments = recovery.find("recovery.segment")
        seg_records = sum(
            1
            for s in segments
            for e in s.events
            if e["name"] == "recovery.record"
        )
        assert seg_records == recovery.field("scanned")

    def test_totals_equal_registry_snapshot(self):
        db, timeline = self._run()
        snapshot = db.metrics.snapshot()
        totals = timeline.totals()
        for key in (
            "method.records_scanned",
            "method.records_replayed",
            "method.records_skipped",
        ):
            assert totals[key] == snapshot[key], key

    def test_flush_events_carry_graph_reason(self):
        _, timeline = self._run()
        flushes = timeline.events("cache.flush")
        assert flushes, "a 4-frame cache over 8 pages must flush"
        for event in flushes:
            assert "node" in event["fields"]
            assert "writes" in event["fields"]

    def test_generalized_traces_edges_and_multipage_redo(self):
        from repro.engine import KVDatabase

        sink = RingBufferSink()
        db = KVDatabase(
            method="generalized", cache_capacity=4, tracer=Tracer(sink)
        )
        # "src" and "dst" hash to different pages, so the copyadd is a
        # genuine multi-page record with a careful-write-ordering edge.
        db.execute(("put", "src", 1))
        db.execute(("copyadd", "dst", ("src", 5)))
        db.commit()
        db.crash_and_recover()
        db.verify_against()
        timeline = RecoveryTimeline.from_sink(sink)
        names = {r.get("name") for r in timeline.records}
        assert "scheduler.add_edge" in names  # the careful write ordering
        assert timeline.recoveries()

    def test_log_events_present(self):
        _, timeline = self._run()
        assert timeline.events("log.append")
        assert timeline.events("log.force")
        assert timeline.events("engine.crash")

    def test_checkpoint_span_present(self):
        _, timeline = self._run()
        assert timeline.spans("checkpoint")

    def test_report_is_namespaced_and_collision_free(self):
        db, _ = self._run()
        report = db.report()
        for key in (
            "method_operations",
            "method_records_replayed",
            "log_forces",
            "log_bytes",
            "disk_page_writes",
            "cache_hits",
            "scheduler_installs",
            "scheduler_elisions",
        ):
            assert key in report, key
        assert report["method"] == "physiological"

    def test_untraced_database_uses_null_tracer(self):
        from repro.engine import KVDatabase

        db = KVDatabase(method="physical")
        assert db.tracer is NULL_TRACER
        assert db.method.machine.pool.tracer is NULL_TRACER
        db.execute(("put", "k", 1))
        db.crash_and_recover()
        assert NULL_TRACER.records_emitted == 0

    def test_sim_crash_reports_through_registry(self):
        from repro.engine import KVDatabase
        from repro.sim.crash import crash_once
        from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

        stream = generate_kv_workload(
            4, KVWorkloadSpec(n_operations=20, n_keys=6, put_ratio=0.8)
        )
        result = crash_once(
            lambda: KVDatabase(method="physiological", cache_capacity=4),
            stream,
            crash_point=15,
        )
        assert result.recovered
        assert result.scanned >= result.replayed >= 0


class TestInstrumentCounters:
    def test_counter_classes_repr(self):
        assert "log.forces" in repr(Counter("log.forces"))
        assert "g.x" in repr(Gauge("g.x"))
        assert "h.y" in repr(Histogram("h.y"))


class TestHistogramQuantiles:
    """The log-scale bucket layout behind the server's latency quantiles."""

    def test_quantile_within_one_bucket_width(self):
        h = Histogram("t.lat")
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms..1s uniform
        for v in values:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            true = values[int(q * len(values)) - 1]
            estimate = h.quantile(q)
            assert estimate >= true * 0.999  # never undershoots
            assert estimate <= true * Histogram._GROWTH * 1.001

    def test_p0_and_p100_are_exact(self):
        h = Histogram("t.lat")
        for v in (0.00317, 0.9, 0.041):
            h.observe(v)
        assert h.quantile(0.0) == 0.00317
        assert h.quantile(1.0) == 0.9

    def test_single_observation_dominates_every_quantile(self):
        h = Histogram("t.lat")
        h.observe(0.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.25

    def test_underflow_and_overflow_are_clamped(self):
        h = Histogram("t.lat")
        h.observe(0.0)  # below the lowest boundary
        h.observe(1e9)  # far past the top octave
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 1e9
        # the middle reads a boundary, clamped into [min, max]
        assert 0.0 <= h.quantile(0.5) <= 1e9

    def test_out_of_range_quantile_raises(self):
        h = Histogram("t.lat")
        with pytest.raises(MetricsError):
            h.quantile(1.5)

    def test_empty_summary_is_all_zero(self):
        """Regression (this PR): an empty histogram's summary divided by
        its zero count / published None min/max; now explicit zeros."""
        h = Histogram("t.lat")
        assert h.summary() == {
            "count": 0, "total": 0, "min": 0, "max": 0,
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
        assert h.quantile(0.5) == 0.0

    def test_empty_histogram_snapshot_publishes_zeros(self):
        reg = MetricsRegistry()
        reg.histogram("server.latency_put")
        snap = reg.snapshot()
        assert snap["server.latency_put.count"] == 0
        assert snap["server.latency_put.p99"] == 0.0
        assert snap["server.latency_put.min"] == 0  # never None on the wire

    def test_snapshot_publishes_quantile_suffixes(self):
        reg = MetricsRegistry()
        h = reg.histogram("srv.lat")
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        snap = reg.snapshot()
        for suffix in ("count", "total", "min", "max", "mean", "p50", "p95", "p99"):
            assert f"srv.lat.{suffix}" in snap
        assert snap["srv.lat.p50"] >= 0.002 * 0.999


class TestRingBufferWraparound:
    """Satellite: the in-memory ring under multiple full wraps."""

    def test_capacity_plus_k_keeps_exactly_the_last_capacity(self):
        sink = RingBufferSink(capacity=8)
        tr = Tracer(sink)
        for i in range(8 + 5):
            tr.event("e", i=i)
        kept = [r["fields"]["i"] for r in sink]
        assert kept == list(range(5, 13))  # oldest→newest, newest wins
        assert sink.dropped == 5
        assert len(sink) == 8

    def test_many_full_wraps(self):
        sink = RingBufferSink(capacity=4)
        tr = Tracer(sink)
        for i in range(43):
            tr.event("e", i=i)
        assert [r["fields"]["i"] for r in sink] == [39, 40, 41, 42]
        assert sink.dropped == 39
        seqs = [r["seq"] for r in sink]
        assert seqs == sorted(seqs)


class TestTeeSink:
    def test_fans_every_record_to_all_sinks(self):
        from repro.obs import TeeSink

        a, b = RingBufferSink(), RingBufferSink()
        tr = Tracer(TeeSink(a, b))
        with tr.span("s"):
            tr.event("e")
        assert [r["seq"] for r in a] == [r["seq"] for r in b] == [0, 1, 2]

    def test_iteration_delegates_to_first_iterable_sink(self):
        from repro.obs import TeeSink

        ring = RingBufferSink()

        class WriteOnly:
            def emit(self, record):
                pass

            def close(self):
                pass

        tee = TeeSink(WriteOnly(), ring)
        Tracer(tee).event("only")
        assert [r["name"] for r in tee] == ["only"]

    def test_close_closes_every_sink(self, tmp_path):
        from repro.obs import TeeSink

        path = tmp_path / "tee.jsonl"
        file_sink = JsonLinesSink(str(path))
        tee = TeeSink(RingBufferSink(), file_sink)
        tr = Tracer(tee)
        tr.event("e")
        tr.close()
        assert load_trace(str(path))


class TestLenientTimeline:
    """Flight-ring tails: span starts may be overwritten, the rest must
    still render (satellite of the postmortem path)."""

    def test_orphan_span_end_becomes_closed_root(self):
        records = [
            {"seq": 7, "type": "span_end", "name": "s", "id": 3,
             "fields": {"outcome": "done"}},
        ]
        roots, _ = build_span_tree(records, lenient=True)
        [node] = roots
        assert node.closed
        assert node.end_fields["outcome"] == "done"

    def test_event_with_unknown_span_floats_to_top(self):
        records = [
            {"seq": 5, "type": "event", "name": "log.append", "span": 99,
             "fields": {"lsn": 4}},
        ]
        roots, top = build_span_tree(records, lenient=True)
        assert roots == []
        assert [e["name"] for e in top] == ["log.append"]

    def test_strict_mode_still_raises(self):
        records = [
            {"seq": 0, "type": "span_end", "name": "s", "id": 3, "fields": {}},
        ]
        with pytest.raises(TraceReadError):
            build_span_tree(records)

    def test_from_flight_ring_reports_open_spans(self):
        records = [
            {"seq": 0, "type": "span_start", "name": "server.serve", "id": 0,
             "parent": None, "fields": {"port": 1234}},
            {"seq": 1, "type": "event", "name": "engine.command", "span": 0,
             "fields": {"kind": "put"}},
        ]
        timeline = RecoveryTimeline.from_flight_ring(records)
        [open_span] = timeline.open_spans()
        assert open_span.name == "server.serve"
        assert not open_span.closed


class TestRecoveryProgress:
    def test_watch_counts_records_and_bytes(self):
        from repro.obs import RecoveryProgress

        class FakeRecord:
            lsn = 1

            def size_bytes(self):
                return 10

        progress = RecoveryProgress()
        progress.set_phase("redo")
        consumed = list(progress.watch([FakeRecord(), FakeRecord()]))
        assert len(consumed) == 2
        snap = progress.snapshot()
        assert snap["phase"] == "redo"
        assert snap["records"] == 2
        assert snap["bytes"] == 20

    def test_phase_changes_fire_callback(self):
        from repro.obs import RecoveryProgress

        seen = []
        progress = RecoveryProgress(on_update=seen.append)
        progress.set_phase("analysis")
        progress.set_phase("redo")
        progress.finish()
        assert [s["phase"] for s in seen] == ["analysis", "redo", "ready"]

    def test_null_progress_is_identity(self):
        from repro.obs import NULL_PROGRESS

        assert NULL_PROGRESS.enabled is False
        stream = [object(), object()]
        assert list(NULL_PROGRESS.watch(stream)) == stream
        NULL_PROGRESS.set_phase("redo")  # no-op, no state
        assert NULL_PROGRESS.snapshot()["phase"] == "idle"

    def test_engine_recovery_drives_progress(self, tmp_path):
        from repro.engine import KVDatabase
        from repro.obs import RecoveryProgress
        from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

        snaps = []
        progress = RecoveryProgress(on_update=snaps.append, min_interval=0.0)
        db = KVDatabase(
            method="physiological",
            log_dir=tmp_path,
            commit_every=2,
            checkpoint_every=None,
            progress=progress,
        )
        db.run(generate_kv_workload(5, KVWorkloadSpec(n_operations=40)))
        db.crash_and_recover()
        db.verify_against()
        final = progress.snapshot()
        assert final["phase"] == "ready"
        assert final["records"] > 0
        assert final["bytes"] > 0
        assert final["segments"] >= 1
        assert final["replayed"] > 0
        phases = [s["phase"] for s in snaps]
        assert phases[0] == "analysis"
        assert phases[-1] == "ready"

    def test_cold_start_accepts_progress(self, tmp_path):
        from repro.engine import KVDatabase
        from repro.obs import RecoveryProgress
        from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

        stream = generate_kv_workload(6, KVWorkloadSpec(n_operations=30))
        db = KVDatabase(method="physiological", log_dir=tmp_path)
        db.run(stream)
        db.sync()
        db.crash()
        progress = RecoveryProgress()
        cold = KVDatabase.cold_start(
            tmp_path, method="physiological", progress=progress
        )
        assert cold.verify_against(stream) > 0
        assert progress.snapshot()["phase"] == "ready"
        assert progress.records > 0


class TestThreadSafety:
    """Satellite of the concurrency PR: tracer seq assignment and
    instrument increments are atomic under concurrent emitters."""

    def test_tracer_seq_gap_free_across_threads(self):
        import threading

        tracer = Tracer(RingBufferSink(capacity=100_000))
        n_threads, per_thread = 8, 500

        def emitter(i):
            for j in range(per_thread):
                tracer.event("t.event", thread=i, j=j)

        threads = [
            threading.Thread(target=emitter, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert tracer.records_emitted == total
        seqs = sorted(r["seq"] for r in tracer.sink)
        assert seqs == list(range(total))  # dense: no gaps, no duplicates

    def test_counter_increments_do_not_race(self):
        import threading

        counter = Counter("x.y")
        n_threads, per_thread = 8, 2000

        def bump():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread

    def test_histogram_observations_do_not_race(self):
        import threading

        hist = Histogram("x.y")
        n_threads, per_thread = 8, 1000

        def observe():
            for v in range(per_thread):
                hist.observe(v)

        threads = [threading.Thread(target=observe) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n_threads * per_thread
        assert hist.total == n_threads * sum(range(per_thread))
        assert hist.min == 0
        assert hist.max == per_thread - 1
