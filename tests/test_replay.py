"""Unit and property tests for replay and Theorem 3 (§3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.explain import explains, find_explaining_prefixes
from repro.core.installation import InstallationGraph
from repro.core.model import State
from repro.core.replay import (
    certify_theorem3,
    is_potentially_recoverable,
    recovers,
    replay,
    replay_order,
)
from repro.core.expr import Var
from repro.graphs import all_prefixes
from repro.workloads.opgen import OpSequenceSpec, random_operations, scenario_library
from tests.conftest import make_ops


class TestReplayMechanics:
    def test_replay_order_respects_conflicts(self, opq, opq_conflict):
        O, P, Q = opq
        assert replay_order(opq_conflict, {Q, O, P}) == [O, P, Q]

    def test_replay_does_not_mutate_input(self, opq, opq_conflict, initial_state):
        state = State({"x": 0, "y": 2})
        replay(opq_conflict, set(opq), state)
        assert state == State({"x": 0, "y": 2})

    def test_replay_rejects_bad_order(self, opq, opq_conflict, initial_state):
        O, P, Q = opq
        with pytest.raises(ValueError, match="violates conflict order"):
            replay(opq_conflict, {O, P}, initial_state, order=[P, O])

    def test_replay_rejects_wrong_set(self, opq, opq_conflict, initial_state):
        O, P, Q = opq
        with pytest.raises(ValueError, match="exactly"):
            replay(opq_conflict, {O, P}, initial_state, order=[O])

    def test_recovers_from_explained_state(self, opq, opq_conflict, initial_state):
        O, P, Q = opq
        # {P} installed: state x=0, y=2; replay O then Q.
        assert recovers(opq_conflict, {O, Q}, State({"x": 0, "y": 2}), initial_state)


class TestScenarioOracle:
    def test_all_paper_scenarios(self, initial_state):
        """The library's expected_recoverable flags against brute force."""
        for scenario in scenario_library().values():
            conflict = ConflictGraph(list(scenario.operations))
            crashed = State(dict(scenario.crashed_values))
            assert (
                is_potentially_recoverable(conflict, crashed, initial_state)
                == scenario.expected_recoverable
            ), scenario.name

    def test_efg_x_singly_is_the_subtle_case(self, initial_state):
        """§5 E,F,G: updating x singly leaves a state that happens to be
        explained by the empty prefix (replaying everything regenerates
        x from the intact y), even though {E, G} is no prefix."""
        e, f, g = make_ops(
            ("E", "x", Var("y") + 1),
            ("F", "y", Var("x") + 1),
            ("G", "x", Var("x") + 1),
        )
        conflict = ConflictGraph([e, f, g])
        installation = InstallationGraph(conflict)
        x_singly = State({"x": 2, "y": 0})
        assert is_potentially_recoverable(conflict, x_singly, initial_state)
        prefixes = list(find_explaining_prefixes(installation, x_singly, initial_state))
        assert frozenset() in prefixes
        # ... but the intended installed set {E, G} is not a prefix at all.
        assert not installation.is_prefix({e, g})


class TestTheorem3:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_determined_states_recover(self, seed):
        """Every prefix-determined state replays to the final state."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        installation = InstallationGraph(ConflictGraph(ops))
        initial = State()
        for prefix_names in all_prefixes(installation.dag):
            prefix = {installation.operation(name) for name in prefix_names}
            state = installation.determined_state(prefix, initial)
            assert certify_theorem3(installation, prefix, state, initial)

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_any_conflict_order_recovers(self, seed):
        """Theorem 3 says *any* conflict-consistent replay order works."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=5, n_variables=3))
        installation = InstallationGraph(ConflictGraph(ops))
        initial = State()
        for prefix_names in all_prefixes(installation.dag):
            prefix = {installation.operation(name) for name in prefix_names}
            state = installation.determined_state(prefix, initial)
            assert certify_theorem3(
                installation, prefix, state, initial, try_all_orders=True
            )

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_garbage_in_unexposed_variables_still_recovers(self, seed):
        """Explainable states with arbitrary junk in unexposed variables
        recover — the full strength of Theorem 3."""
        from repro.core.exposed import all_variables, unexposed_variables

        ops = random_operations(seed, OpSequenceSpec(n_operations=5, n_variables=3))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        for prefix_names in all_prefixes(installation.dag):
            prefix = {conflict.operation(name) for name in prefix_names}
            state = installation.determined_state(prefix, initial)
            junked = state.copy()
            for i, variable in enumerate(sorted(unexposed_variables(conflict, prefix))):
                junked.set(variable, 7_777 + i)  # junk no operation writes
            assert explains(installation, prefix, junked, initial)
            assert certify_theorem3(installation, prefix, junked, initial)

    def test_theorem3_requires_explaining_prefix(self, opq, opq_installation, initial_state):
        O, P, Q = opq
        with pytest.raises(ValueError, match="explaining prefix"):
            certify_theorem3(
                opq_installation, {O}, State({"x": 55}), initial_state
            )


class TestSoundness:
    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=15, deadline=None)
    def test_explainable_implies_recoverable_bruteforce(self, seed):
        """Cross-check Theorem 3 against the exhaustive-subset oracle on
        random crash states (not just determined ones)."""
        from repro.core.explain import is_explainable
        from repro.core.state_graph import StateGraph
        import itertools

        ops = random_operations(seed, OpSequenceSpec(n_operations=4, n_variables=2))
        conflict = ConflictGraph(ops)
        installation = InstallationGraph(conflict)
        initial = State()
        sg = StateGraph.conflict_state_graph(conflict, initial)
        # Candidate per-variable values: initial or anything ever written.
        options = {}
        for variable in ("v0", "v1"):
            values = {0}
            for op in ops:
                writes = sg.writes(op.name)
                if variable in writes:
                    values.add(writes[variable])
            options[variable] = sorted(values, key=repr)
        for v0, v1 in itertools.product(options["v0"], options["v1"]):
            state = State({"v0": v0, "v1": v1})
            if is_explainable(installation, state, initial):
                assert is_potentially_recoverable(conflict, state, initial)
