"""Tests for the crash flight recorder (repro.obs.flightrec).

The ring's whole job is to survive a process that does not: the
cross-process test at the bottom SIGKILLs a child mid-traffic and
asserts the parent can reopen the ring and read the child's final
records — the same contract ``repro postmortem`` relies on.
"""

import json
import os
import signal
import struct
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.obs import (
    FlightRecorder,
    FlightRecorderError,
    FlightRecorderSink,
    RingBufferSink,
    TeeSink,
    Tracer,
    flight_ring_path,
)
from repro.obs.flightrec import _HEADER, _SLOT_FRAME


class TestRingFile:
    def test_create_append_read_roundtrip(self, tmp_path):
        ring = FlightRecorder.create(str(tmp_path / "f.ring"), n_slots=16)
        for i in range(5):
            ring.append({"seq": i, "type": "event", "name": "e", "fields": {"i": i}})
        records = ring.records()
        assert [r["fields"]["i"] for r in records] == [0, 1, 2, 3, 4]
        ring.close()

    def test_file_size_is_fixed(self, tmp_path):
        path = tmp_path / "f.ring"
        ring = FlightRecorder.create(str(path), slot_size=128, n_slots=8)
        expected = _HEADER.size + 128 * 8
        assert path.stat().st_size == expected
        for i in range(100):
            ring.append({"seq": i, "type": "event", "name": "e"})
        assert path.stat().st_size == expected  # a ring never grows
        ring.close()

    def test_wraparound_overwrites_oldest(self, tmp_path):
        ring = FlightRecorder.create(str(tmp_path / "f.ring"), n_slots=8)
        for i in range(8 + 5):
            ring.append({"seq": i, "type": "event", "name": "e"})
        survivors = [r["seq"] for r in ring.records()]
        assert survivors == list(range(5, 13))
        ring.close()

    def test_reopen_resumes_sequence(self, tmp_path):
        path = str(tmp_path / "f.ring")
        first = FlightRecorder.create(path, n_slots=8)
        for i in range(3):
            first.append({"seq": i, "type": "event", "name": "a"})
        first.close()  # no fsync by design; same-OS reads see the writes
        second = FlightRecorder.open(path)
        assert second.next_seq == 3
        second.append({"seq": 3, "type": "event", "name": "b"})
        names = [r["name"] for r in second.records()]
        assert names == ["a", "a", "a", "b"]
        second.close()

    def test_torn_slot_costs_one_record_not_the_file(self, tmp_path):
        path = str(tmp_path / "f.ring")
        ring = FlightRecorder.create(path, slot_size=128, n_slots=8)
        for i in range(5):
            ring.append({"seq": i, "type": "event", "name": "e"})
        ring.close()
        # Corrupt the middle slot's payload: its CRC now fails.
        offset = _HEADER.size + 2 * 128 + _SLOT_FRAME.size
        with open(path, "r+b") as f:
            f.seek(offset)
            f.write(b"\xff\xff\xff\xff")
        survivor = FlightRecorder.open(path)
        assert [r["seq"] for r in survivor.records()] == [0, 1, 3, 4]
        survivor.close()

    def test_oversized_payload_degrades_to_stub(self, tmp_path):
        ring = FlightRecorder.create(
            str(tmp_path / "f.ring"), slot_size=96, n_slots=4
        )
        ring.append(
            {
                "seq": 0,
                "type": "span_start",
                "name": "big",
                "id": 7,
                "parent": None,
                "fields": {"blob": "x" * 500},
            }
        )
        [record] = ring.records()
        assert record["truncated"] is True
        assert record["name"] == "big"
        assert record["id"] == 7  # span identity survives the diet
        assert ring.truncated_payloads == 1
        ring.close()

    def test_attach_recreates_garbage_file(self, tmp_path):
        path = tmp_path / "f.ring"
        path.write_bytes(b"not a flight ring at all")
        ring = FlightRecorder.attach(str(path), n_slots=8)
        assert ring.next_seq == 0
        ring.append({"seq": 0, "type": "event", "name": "e"})
        assert len(ring.records()) == 1
        ring.close()

    def test_open_rejects_bad_magic_and_version(self, tmp_path):
        path = tmp_path / "f.ring"
        path.write_bytes(_HEADER.pack(b"NOPE", 1, 512, 8))
        with pytest.raises(FlightRecorderError, match="magic"):
            FlightRecorder.open(str(path))
        path.write_bytes(_HEADER.pack(b"FREC", 99, 512, 8))
        with pytest.raises(FlightRecorderError, match="version"):
            FlightRecorder.open(str(path))

    def test_geometry_validation(self, tmp_path):
        with pytest.raises(FlightRecorderError):
            FlightRecorder.create(str(tmp_path / "f.ring"), slot_size=4)
        with pytest.raises(FlightRecorderError):
            FlightRecorder.create(str(tmp_path / "f.ring"), n_slots=0)

    def test_flight_ring_path_is_canonical(self, tmp_path):
        assert flight_ring_path(tmp_path) == str(tmp_path / "FLIGHT.ring")


class TestSinkIntegration:
    def test_tracer_tees_into_the_ring(self, tmp_path):
        recorder = FlightRecorder.create(str(tmp_path / "f.ring"), n_slots=32)
        memory = RingBufferSink()
        tracer = Tracer(TeeSink(memory, FlightRecorderSink(recorder)))
        with tracer.span("recovery", method="physical"):
            tracer.event("recovery.record", lsn=1)
        tracer.close()
        reopened = FlightRecorder.open(str(tmp_path / "f.ring"))
        on_disk = reopened.records()
        reopened.close()
        assert [r["seq"] for r in on_disk] == [r["seq"] for r in memory]
        assert on_disk[0]["type"] == "span_start"
        assert on_disk[0]["fields"]["method"] == "physical"


# ----------------------------------------------------------------------
# The real thing: SIGKILL a child writing the ring, reopen its file.
# ----------------------------------------------------------------------

CHILD_SOURCE = """\
import sys
from repro.obs import FlightRecorder, FlightRecorderSink, RingBufferSink, TeeSink, Tracer

ring_path = sys.argv[1]
recorder = FlightRecorder.create(ring_path, n_slots=64)
tracer = Tracer(TeeSink(RingBufferSink(), FlightRecorderSink(recorder)))
span = tracer.span("child.run", pid=1)
i = 0
while True:
    tracer.event("child.tick", i=i)
    i += 1
    print(i, flush=True)
"""


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
class TestProcessKill:
    def test_ring_survives_sigkill_and_reopens(self, tmp_path):
        """Kill a child that never closed its ring; the parent must read
        its final events and see the unclosed span — the postmortem
        contract, exercised with a real SIGKILL."""
        script = tmp_path / "child.py"
        script.write_text(CHILD_SOURCE)
        ring_path = tmp_path / "FLIGHT.ring"
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, str(script), str(ring_path)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            ticks = 0
            while ticks < 100:  # enough to wrap the 64-slot ring
                assert time.monotonic() < deadline, "child too slow"
                line = proc.stdout.readline()
                assert line, "child exited early"
                ticks = int(line)
            # Ticks count *emits* (queue side); the write-behind drainer
            # lands them on disk asynchronously.  Kill only once the ring
            # file itself shows a full lap, or the timing is a coin flip
            # under a loaded machine.
            while time.monotonic() < deadline:
                snap = FlightRecorder.open(str(ring_path))
                on_disk = snap.records()
                snap.close()
                if (
                    len(on_disk) >= 64
                    and on_disk[-1].get("fields", {}).get("i", -1) >= 63
                ):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("ring never fully lapped on disk")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.stdout.close()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        survivor = FlightRecorder.open(str(ring_path))
        records = survivor.records()
        survivor.close()
        # A full ring — minus at most the one slot the SIGKILL could
        # have caught mid-pwrite (its CRC fails, costing one record).
        assert len(records) >= 63
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(set(seqs))  # strictly increasing
        assert seqs[-1] - seqs[0] < 64 + 1  # one 64-slot window, <=1 gap
        # The final record on disk is one the child actually emitted —
        # near the end of its life, modulo the write-behind queue's
        # bounded loss window.
        last = records[-1]
        assert last["name"] == "child.tick"
        assert last["fields"]["i"] >= 63  # the ring fully lapped at least once

        from repro.obs import RecoveryTimeline

        timeline = RecoveryTimeline.from_flight_ring(records)
        # span_start was overwritten by the wrap; lenient mode still
        # renders the tail (every tick floats to the top level).
        assert timeline.records
