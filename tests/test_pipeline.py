"""Tests for the cross-session group-commit pipeline and the engine's
concurrency contract: coalescing, monotone stable watermarks, no early
wakes, sync() barriers interleaved with in-flight windows."""

import threading
import time

import pytest

from repro.engine import KVDatabase
from repro.logmgr import GroupCommitPipeline, LogManager, PipelineClosed
from repro.logmgr.records import PhysicalRedo


def _append(log, n=1):
    last = -1
    for _ in range(n):
        last = log.append(PhysicalRedo("p0", {"k": 1})).lsn
    return last


class _SlowSyncStore:
    """Wraps a FileLogStore, stretching each fsync so commit requests
    pile up behind the in-flight window — which is exactly the condition
    coalescing needs."""

    def __init__(self, store, delay=0.01):
        self._store = store
        self._delay = delay
        self.sync_calls = 0

    def sync(self):
        self.sync_calls += 1
        time.sleep(self._delay)
        self._store.sync()

    def __getattr__(self, name):
        return getattr(self._store, name)


class TestPipelineCoalescing:
    def test_many_commits_few_windows(self, tmp_path):
        log = LogManager.open(tmp_path)
        log._store = _SlowSyncStore(log._store)
        pipeline = GroupCommitPipeline(log)
        n_threads, per_thread = 8, 5
        errors = []

        def worker():
            try:
                for _ in range(per_thread):
                    lsn = _append(log)
                    stable = pipeline.commit(lsn)
                    assert stable >= lsn  # never woken early
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = pipeline.stats()
        assert stats["commits"] == n_threads * per_thread
        # The whole point: windows (fsyncs paid) << commits requested.
        assert stats["windows"] < stats["commits"]
        assert stats["max_coalesced"] >= 2
        assert stats["coalesced_total"] + stats["fast_path"] == stats["commits"]
        pipeline.close()
        log.store.close()

    def test_fast_path_skips_already_stable(self, tmp_path):
        log = LogManager.open(tmp_path)
        pipeline = GroupCommitPipeline(log)
        lsn = _append(log, 3)
        pipeline.commit(lsn)
        before = pipeline.stats()["windows"]
        pipeline.commit(lsn)  # already stable: no new window
        stats = pipeline.stats()
        assert stats["fast_path"] >= 1
        assert stats["windows"] == before
        pipeline.close()
        log.store.close()


class TestStableMonotonicity:
    def test_stable_lsn_never_regresses_under_load(self, tmp_path):
        log = LogManager.open(tmp_path)
        pipeline = GroupCommitPipeline(log)
        samples = []
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                samples.append(log.stable_lsn)

        def committer():
            for _ in range(10):
                pipeline.commit(_append(log))

        sampling = threading.Thread(target=sampler)
        sampling.start()
        workers = [threading.Thread(target=committer) for _ in range(4)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        sampling.join()
        assert samples == sorted(samples)  # monotone, no regression
        pipeline.close()
        log.store.close()


class TestBarrierInterleaving:
    def test_sync_barrier_interleaves_with_windows(self, tmp_path):
        """db.sync() issued mid-flight must observe every record appended
        before it was called — a barrier around, not through, the
        pipeline's open window."""
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=True
        )
        errors = []
        stop = threading.Event()

        def client(client_id):
            try:
                session = db.session()
                j = 0
                while not stop.is_set():
                    session.execute(("put", f"c{client_id}:k{j % 3}", j))
                    j += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        workers = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in workers:
            t.start()
        log = db.method.machine.log
        for _ in range(10):
            appended_before = log.next_lsn - 1
            db.sync()
            assert log.stable_lsn >= appended_before
        stop.set()
        for t in workers:
            t.join()
        assert not errors
        db.close()
        db.verify_against()

    def test_session_commit_is_durability_barrier(self, tmp_path):
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=True
        )
        session = db.session()
        session.execute(("put", "a", 1))
        stable = session.commit()
        assert stable >= session.last_lsn
        assert db.method.machine.log.stable_lsn >= session.last_lsn
        db.close()


class TestLifecycle:
    def test_commit_after_close_raises(self, tmp_path):
        log = LogManager.open(tmp_path)
        pipeline = GroupCommitPipeline(log)
        pipeline.close()
        _append(log)
        with pytest.raises(PipelineClosed):
            pipeline.commit()
        log.store.close()

    def test_abort_close_does_not_flush_the_tail(self, tmp_path):
        log = LogManager.open(tmp_path)
        pipeline = GroupCommitPipeline(log)
        _append(log, 5)
        stable_before = log.stable_lsn
        pipeline.close(abort=True)
        # The volatile tail stayed volatile: abort is for crashes.
        assert log.stable_lsn == stable_before
        log.store.close()

    def test_close_drains_open_window(self, tmp_path):
        log = LogManager.open(tmp_path)
        pipeline = GroupCommitPipeline(log)
        lsn = _append(log, 4)
        waiter_stable = []

        def waiter():
            waiter_stable.append(pipeline.commit(lsn))

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(timeout=10)
        pipeline.close()
        assert waiter_stable and waiter_stable[0] >= lsn
        log.store.close()

    def test_crash_aborts_and_recover_restarts_pipeline(self, tmp_path):
        db = KVDatabase(
            method="physiological", log_dir=tmp_path, commit_pipeline=True
        )
        session = db.session()
        session.execute(("put", "a", 1))
        session.commit()
        session.execute(("put", "a", 2))  # uncommitted tail
        db.crash_and_recover()
        assert db.pipeline is not None  # restarted by recover()
        db.verify_against()
        # The restarted pipeline serves new commits.
        session2 = db.session()
        session2.execute(("put", "b", 9))
        assert session2.commit() >= session2.last_lsn
        db.close()


class TestConcurrentSessionsVerify:
    """The durable-prefix oracle stays exact under concurrency: applied
    order is engine-mutex order is log order."""

    @pytest.mark.parametrize(
        "method", ["physical", "logical", "physiological", "generalized"]
    )
    def test_concurrent_sessions_then_crash_recover(self, method, tmp_path):
        db = KVDatabase(method=method, log_dir=tmp_path, commit_pipeline=True)

        def client(client_id):
            session = db.session(commit_every=2)
            for j in range(6):
                session.execute(("put", f"c{client_id}:k{j % 2}", 100 * client_id + j))
            session.commit()

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        db.crash_and_recover()
        durable = db.verify_against()
        assert durable == 36  # every session committed everything
        db.close()
