"""Unit and property tests for the workload generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.btree_load import BTreeWorkloadSpec, generate_btree_keys
from repro.workloads.kv import (
    KVWorkloadSpec,
    apply_to_oracle,
    generate_kv_workload,
    prefixes_of,
)
from repro.workloads.opgen import (
    OpSequenceSpec,
    random_operations,
    scenario_library,
    variables_of,
)


class TestOpGen:
    def test_deterministic_per_seed(self):
        a = random_operations(42)
        b = random_operations(42)
        assert [str(op) for op in a] == [str(op) for op in b]

    def test_different_seeds_differ(self):
        a = random_operations(1)
        b = random_operations(2)
        assert [str(op) for op in a] != [str(op) for op in b]

    def test_spec_counts(self):
        ops = random_operations(7, OpSequenceSpec(n_operations=12, n_variables=2))
        assert len(ops) == 12
        assert variables_of(ops) <= {"v0", "v1"}

    def test_names_are_unique(self):
        ops = random_operations(9)
        assert len({op.name for op in ops}) == len(ops)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_blind_ratio_zero_means_no_blind_writes(self, seed):
        spec = OpSequenceSpec(n_operations=8, blind_ratio=0.0)
        for op in random_operations(seed, spec):
            assert op.read_set, f"{op} should read something"

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_blind_ratio_one_means_all_blind(self, seed):
        spec = OpSequenceSpec(n_operations=8, blind_ratio=1.0, multi_write_ratio=0.0)
        for op in random_operations(seed, spec):
            assert op.read_set == frozenset()

    def test_scenario_library_is_consistent(self):
        library = scenario_library()
        assert set(library) == {
            "figure1", "figure2", "figure3", "figure4",
            "section5_efg", "section5_hj",
        }
        for scenario in library.values():
            assert scenario.operations
            assert isinstance(scenario.expected_recoverable, bool)


class TestKVWorkloads:
    def test_deterministic(self):
        assert generate_kv_workload(5) == generate_kv_workload(5)

    def test_ratios_roughly_respected(self):
        spec = KVWorkloadSpec(n_operations=1000, put_ratio=1.0, delete_ratio=0.0)
        stream = generate_kv_workload(3, spec)
        assert all(kind == "put" for kind, _, _ in stream)

    def test_hotspot_concentration(self):
        spec = KVWorkloadSpec(
            n_operations=500, n_keys=100, hot_fraction=0.9, hot_keys=2
        )
        stream = generate_kv_workload(11, spec)
        hot = sum(1 for _, key, _ in stream if key in ("k0000", "k0001"))
        assert hot > 350  # ~90% should hit the two hot keys

    def test_copyadd_emission_and_shape(self):
        spec = KVWorkloadSpec(
            n_operations=200, put_ratio=0.2, copyadd_ratio=0.6, delete_ratio=0.0
        )
        stream = generate_kv_workload(13, spec)
        copyadds = [c for c in stream if c[0] == "copyadd"]
        assert copyadds
        for _, dst, (src, delta) in copyadds:
            assert dst.startswith("k") and src.startswith("k")
            assert delta >= 1

    def test_oracle_semantics(self):
        stream = [
            ("put", "a", 5),
            ("add", "a", 3),
            ("copyadd", "b", ("a", 2)),
            ("delete", "a", None),
            ("add", "a", 1),
            ("get", "b", None),
            ("copyadd", "c", ("ghost", 4)),
        ]
        assert apply_to_oracle(stream) == {"a": 1, "b": 10, "c": 4}

    def test_prefixes_of(self):
        stream = generate_kv_workload(1, KVWorkloadSpec(n_operations=5))
        cuts = list(prefixes_of(stream))
        assert len(cuts) == 6
        assert cuts[0] == [] and cuts[-1] == stream


class TestBTreeWorkloads:
    def test_sequential_pattern(self):
        pairs = generate_btree_keys(1, BTreeWorkloadSpec(n_keys=10, pattern="sequential"))
        assert [k for k, _ in pairs] == list(range(10))

    def test_random_pattern_unique_keys(self):
        pairs = generate_btree_keys(2, BTreeWorkloadSpec(n_keys=100, pattern="random"))
        keys = [k for k, _ in pairs]
        assert len(keys) == len(set(keys))

    def test_clustered_pattern_clusters(self):
        spec = BTreeWorkloadSpec(n_keys=200, pattern="clustered", cluster_width=16)
        pairs = generate_btree_keys(3, spec)
        keys = sorted(k for k, _ in pairs)
        # Clusters mean many small gaps: the median gap is tiny compared
        # to the key space.
        gaps = sorted(b - a for a, b in zip(keys, keys[1:]))
        assert gaps[len(gaps) // 2] <= 16

    def test_payload_size(self):
        pairs = generate_btree_keys(4, BTreeWorkloadSpec(n_keys=5, payload_bytes=32))
        assert all(len(payload) == 32 for _, payload in pairs)

    def test_deterministic(self):
        assert generate_btree_keys(9) == generate_btree_keys(9)
