"""Hypothesis stateful (model-based) tests.

Two machines:

- ``PoolMachine`` drives a :class:`BufferPool` with random updates,
  flushes, reads, and crashes against a pair of model dicts (volatile
  view, durable view).  The invariant: reads always see the volatile
  view; after a crash the pool sees exactly the durable view.
- ``EngineMachine`` drives a :class:`KVDatabase` (rotating through all
  four §6 methods) with random commands, commits, checkpoints, and
  crash/recover cycles, verifying the durable-prefix oracle after every
  crash.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cache import BufferPool
from repro.engine import KVDatabase
from repro.storage import Disk

PAGES = [f"p{i}" for i in range(5)]
KEYS = [f"k{i}" for i in range(5)]


class PoolMachine(RuleBasedStateMachine):
    """Buffer pool versus a two-level (volatile/durable) model."""

    def __init__(self):
        super().__init__()
        self.disk = Disk()
        self.pool = BufferPool(self.disk, capacity=3)
        self.volatile: dict[str, dict] = {}
        self.durable: dict[str, dict] = {}

    @rule(page=st.sampled_from(PAGES), cell=st.sampled_from(KEYS), value=st.integers(0, 99))
    def write(self, page, cell, value):
        self.pool.update(page, lambda p: p.put(cell, value), create=True)
        self.volatile.setdefault(page, {})[cell] = value

    @rule(page=st.sampled_from(PAGES))
    def flush(self, page):
        if self.pool.is_cached(page):
            self.pool.flush_page(page)
        # Whatever was volatile for this page is durable now (if the page
        # was dirty) — eviction-driven flushes are handled in `write` via
        # the eviction model below being unnecessary: we recompute durable
        # lazily from the disk in the invariant instead.

    @rule(page=st.sampled_from(PAGES))
    def read(self, page):
        expected = self.volatile.get(page)
        if expected is None:
            return
        cached = self.pool.get_page(page, create=True)
        for cell, value in expected.items():
            assert cached.get(cell) == value

    @rule()
    def crash(self):
        self.pool.crash()
        # Volatile view degrades to whatever the disk holds.
        self.volatile = {
            page.page_id: dict(page.cells) for page in self.disk.pages()
        }

    @invariant()
    def clean_pages_match_disk(self):
        """A cached page that is not dirty must equal its disk image —
        otherwise updates were lost or invented."""
        for page_id in self.pool.cached_page_ids():
            if self.pool.is_dirty(page_id) or not self.disk.has_page(page_id):
                continue
            assert self.pool.get_page(page_id).cells == self.disk.read_page(page_id).cells

    @invariant()
    def reads_see_volatile_view(self):
        for page_id, cells in self.volatile.items():
            if not self.pool.is_cached(page_id) and not self.disk.has_page(page_id):
                continue
            page = self.pool.get_page(page_id, create=True)
            for cell, value in cells.items():
                assert page.get(cell) == value


PoolMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestPoolMachine = PoolMachine.TestCase


class EngineMachine(RuleBasedStateMachine):
    """A KV engine versus the durable-prefix oracle, under random chaos."""

    methods = st.sampled_from(["logical", "physical", "physiological", "generalized"])

    @initialize(method=methods, capacity=st.integers(2, 6), group=st.integers(1, 4))
    def setup(self, method, capacity, group):
        self.method = method
        self.db = KVDatabase(
            method=method,
            cache_capacity=capacity,
            commit_every=group,
            n_pages=4,
        )

    @rule(key=st.sampled_from(KEYS), value=st.integers(0, 999))
    def put(self, key, value):
        self.db.execute(("put", key, value))

    @rule(key=st.sampled_from(KEYS), delta=st.integers(1, 50))
    def add(self, key, delta):
        self.db.execute(("add", key, delta))

    @rule(dst=st.sampled_from(KEYS), src=st.sampled_from(KEYS), delta=st.integers(1, 9))
    @precondition(lambda self: self.method in ("logical", "physical", "generalized"))
    def copyadd(self, dst, src, delta):
        self.db.execute(("copyadd", dst, (src, delta)))

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        self.db.execute(("delete", key, None))

    @rule()
    def commit(self):
        self.db.commit()

    @rule()
    def checkpoint(self):
        self.db.checkpoint()

    @rule()
    def crash_and_recover(self):
        self.db.crash_and_recover()
        durable = self.db.verify_against()  # raises on divergence
        # The surviving history is the durable prefix.
        self.db.applied = self.db.applied[:durable]

    @invariant()
    def committed_view_is_oracle_consistent(self):
        """Without crashing, the full applied history must be visible."""
        from repro.workloads.kv import apply_to_oracle

        oracle = apply_to_oracle(self.db.applied)
        for key in KEYS:
            assert self.db.get(key) == oracle.get(key)


EngineMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestEngineMachine = EngineMachine.TestCase
