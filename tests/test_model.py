"""Unit tests for states and operations (§2.1 model)."""

import pytest

from repro.core.expr import Var
from repro.core.model import (
    Operation,
    State,
    check_distinct_names,
    run_sequence,
    state_sequence,
)
from tests.conftest import make_ops


class TestState:
    def test_default_value(self):
        state = State()
        assert state["anything"] == 0

    def test_custom_default(self):
        state = State(default=None)
        assert state["x"] is None

    def test_explicit_bindings(self):
        state = State({"x": 5})
        assert state["x"] == 5
        assert state["y"] == 0

    def test_updated_copies(self):
        state = State({"x": 1})
        new = state.updated({"x": 2, "y": 3})
        assert state["x"] == 1
        assert new["x"] == 2 and new["y"] == 3

    def test_set_mutates(self):
        state = State()
        state.set("x", 9)
        assert state["x"] == 9

    def test_equality_includes_defaults(self):
        assert State({"x": 0}) == State()
        assert State({"x": 1}) != State()
        assert State(default=0) != State(default=None)

    def test_agrees_with_subset(self):
        a = State({"x": 1, "y": 2})
        b = State({"x": 1, "y": 99})
        assert a.agrees_with(b, {"x"})
        assert not a.agrees_with(b, {"x", "y"})

    def test_restrict(self):
        state = State({"x": 1})
        assert state.restrict(["x", "y"]) == {"x": 1, "y": 0}

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(State())


class TestOperation:
    def test_apply(self):
        (op,) = make_ops(("A", "x", Var("y") + 1))
        state = State({"y": 4})
        result = op.apply(state)
        assert result["x"] == 5
        assert state["x"] == 0  # original untouched

    def test_multi_assignment_reads_pre_state(self):
        (op,) = make_ops(("C", {"x": Var("x") + 1, "y": Var("x") + 10}))
        result = op.apply(State({"x": 1}))
        # Both right-hand sides see the OLD x.
        assert result["x"] == 2
        assert result["y"] == 11

    def test_empty_write_set_rejected(self):
        with pytest.raises(ValueError):
            Operation("N", frozenset(), frozenset(), lambda reads: {})

    def test_write_set_mismatch_detected(self):
        op = Operation(
            "Bad", frozenset(), frozenset({"x"}), lambda reads: {"y": 1}
        )
        with pytest.raises(ValueError, match="declared write set"):
            op.apply(State())

    def test_identity_by_name(self):
        a1, a2 = make_ops(("A", "x", 1), ("A", "x", 2))
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert len({a1, a2}) == 1

    def test_accessor_predicates(self):
        (op,) = make_ops(("A", "x", Var("y") + 1))
        assert op.reads("y") and not op.reads("x")
        assert op.writes("x") and not op.writes("y")
        assert op.accesses("x") and op.accesses("y") and not op.accesses("z")
        assert op.variables() == frozenset({"x", "y"})


class TestSequences:
    def test_state_sequence_lengths(self):
        ops = make_ops(("A", "x", 1), ("B", "y", Var("x") + 1))
        states = state_sequence(ops, State())
        assert len(states) == 3
        assert states[0]["x"] == 0
        assert states[1]["x"] == 1
        assert states[2]["y"] == 2

    def test_run_sequence_is_last_state(self):
        ops = make_ops(("A", "x", 1), ("B", "y", Var("x") + 1))
        assert run_sequence(ops, State()) == state_sequence(ops, State())[-1]

    def test_run_sequence_does_not_mutate_initial(self):
        initial = State()
        run_sequence(make_ops(("A", "x", 1)), initial)
        assert initial["x"] == 0

    def test_check_distinct_names(self):
        a1, a2 = make_ops(("A", "x", 1), ("A", "y", 2))
        with pytest.raises(ValueError, match="duplicate"):
            check_distinct_names([a1, a2])
        check_distinct_names([a1, a1])  # same object twice is fine
