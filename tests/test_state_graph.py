"""Unit and property tests for state graphs (§2.4) including Lemma 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import ConflictGraph
from repro.core.model import State, state_sequence
from repro.core.state_graph import StateGraph
from repro.workloads.opgen import OpSequenceSpec, random_operations
from tests.conftest import make_ops


class TestGeneration:
    def test_opq_writes_match_figure4(self, opq, initial_state):
        """Figure 4's value boxes: O writes x=1, P writes y=2, Q writes x=3."""
        graph = StateGraph.generated_by(list(opq), initial_state)
        O, P, Q = opq
        assert graph.writes(O.name) == {"x": 1}
        assert graph.writes(P.name) == {"y": 2}
        assert graph.writes(Q.name) == {"x": 3}

    def test_ops_labels_are_singletons(self, opq, initial_state):
        graph = StateGraph.generated_by(list(opq), initial_state)
        for name in ("O", "P", "Q"):
            ops = graph.ops(name)
            assert len(ops) == 1
            assert next(iter(ops)).name == name

    def test_structure_mirrors_conflict_graph(self, opq, opq_conflict, initial_state):
        graph = StateGraph.generated_by(list(opq), initial_state)
        assert graph.dag.same_structure(opq_conflict.dag)

    def test_validate_accepts_generated(self, opq, initial_state):
        StateGraph.generated_by(list(opq), initial_state).validate()


class TestValidation:
    def test_rejects_unordered_common_writers(self, initial_state):
        a, b = make_ops(("A", "x", 1), ("B", "x", 2))
        graph = StateGraph()
        graph.add_node("A", [a], {"x": 1})
        graph.add_node("B", [b], {"x": 2})
        with pytest.raises(ValueError, match="unordered"):
            graph.validate()

    def test_rejects_write_outside_write_set(self):
        (a,) = make_ops(("A", "x", 1))
        graph = StateGraph()
        graph.add_node("A", [a], {"y": 1})
        with pytest.raises(ValueError, match="not written"):
            graph.validate()

    def test_rejects_duplicate_operation(self):
        (a,) = make_ops(("A", "x", 1))
        graph = StateGraph()
        graph.add_node("n1", [a], {"x": 1})
        graph.add_node("n2", [a], {"x": 1})
        graph.add_edge("n1", "n2")
        with pytest.raises(ValueError, match="labels two nodes"):
            graph.validate()


class TestDeterminedState:
    def test_full_graph_determines_final_state(self, opq, opq_conflict, initial_state):
        graph = StateGraph.generated_by(list(opq), initial_state)
        determined = graph.determined_state(initial_state)
        assert determined == opq_conflict.final_state(initial_state)
        assert determined["x"] == 3 and determined["y"] == 2

    def test_unwritten_variables_fall_back_to_initial(self, initial_state):
        ops = make_ops(("A", "x", 1))
        graph = StateGraph.generated_by(ops, State({"z": 42}))
        determined = graph.determined_state(State({"z": 42}))
        assert determined["z"] == 42
        assert determined["x"] == 1

    def test_requires_prefix(self, opq, initial_state):
        graph = StateGraph.generated_by(list(opq), initial_state)
        with pytest.raises(ValueError, match="prefix"):
            graph.determined_state(initial_state, within={"Q"})

    def test_figure4_intermediate_states(self, opq, initial_state):
        """The solid lines of Figure 4: prefixes {O} -> x=1,y=0 and
        {O,P} -> x=1,y=2."""
        graph = StateGraph.generated_by(list(opq), initial_state)
        after_o = graph.determined_state(initial_state, within={"O"})
        assert after_o["x"] == 1 and after_o["y"] == 0
        after_op = graph.determined_state(initial_state, within={"O", "P"})
        assert after_op["x"] == 1 and after_op["y"] == 2


class TestLemma2:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_prefix_states_equal_sequence_states(self, seed):
        """Lemma 2: Si is the state determined by the prefix O1..Oi."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=7, n_variables=4))
        initial = State()
        states = state_sequence(ops, initial)
        graph = StateGraph.generated_by(ops, initial)
        for i in range(len(ops) + 1):
            prefix = {op.name for op in ops[:i]}
            assert graph.determined_state(initial, within=prefix) == states[i], (
                f"prefix of length {i} disagrees with S_{i}"
            )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_state_graph_depends_only_on_conflict_graph(self, seed):
        """§2.4: two sequences with the same conflict graph generate the
        same state graph — so the conflict state graph is well-defined."""
        ops = random_operations(seed, OpSequenceSpec(n_operations=6, n_variables=3))
        initial = State()
        conflict = ConflictGraph(ops)
        reference = StateGraph.generated_by(ops, initial)
        for extension in conflict.all_linear_extensions(limit=12):
            other = StateGraph.generated_by(extension, initial)
            assert other.dag.same_structure(reference.dag, with_labels=True)
            for op in ops:
                assert other.writes(op.name) == reference.writes(op.name)

    def test_conflict_state_graph_constructor(self, opq, opq_conflict, initial_state):
        graph = StateGraph.conflict_state_graph(opq_conflict, initial_state)
        assert graph.writes("Q") == {"x": 3}


class TestHelpers:
    def test_writers_of_sorted(self, opq, initial_state):
        graph = StateGraph.generated_by(list(opq), initial_state)
        assert graph.writers_of("x") == ["O", "Q"]
        assert graph.writers_of("y") == ["P"]
        assert graph.writers_of("z") == []

    def test_prefix_for_operations(self, opq, initial_state):
        O, P, Q = opq
        graph = StateGraph.generated_by(list(opq), initial_state)
        assert graph.prefix_for_operations({O, P}) == {"O", "P"}

    def test_all_operations(self, opq, initial_state):
        graph = StateGraph.generated_by(list(opq), initial_state)
        assert {op.name for op in graph.all_operations()} == {"O", "P", "Q"}
