"""Tests for the unified log stack: segments, truncation, partitioned
redo, and the fault-injection cases that show which assumptions are
load-bearing."""

from __future__ import annotations

import pytest

from repro.core import (
    Log,
    State,
    partition_operations,
    recover,
    recover_partitioned,
)
from repro.core.expr import Var, assign, blind_write, increment
from repro.engine.kv import KVDatabase, VerificationError
from repro.logmgr import (
    CheckpointRecord,
    LogManager,
    LogicalRedo,
    PageAction,
    PhysiologicalRedo,
)
from repro.methods import METHODS, Machine
from repro.storage.disk import LostWriteFault, TornWriteFault


# ----------------------------------------------------------------------
# Segmented log manager
# ----------------------------------------------------------------------


class TestSegments:
    def test_records_span_segments(self):
        manager = LogManager(segment_size=4)
        for i in range(10):
            manager.append(LogicalRedo(("op", i)))
        assert [s.base_lsn for s in manager.segments()] == [0, 4, 8]
        assert [r.lsn for r in manager.records_from(0)] == list(range(10))
        assert manager.segment_containing(5).base_lsn == 4

    def test_segment_stable_boundary(self):
        manager = LogManager(segment_size=4)
        for i in range(10):
            manager.append(LogicalRedo(("op", i)))
        manager.flush(up_to_lsn=5)
        # A sealed, fully stable segment reports its own end.
        assert manager.segment_stable_boundary(2) == 3
        # The segment holding the watermark reports the watermark.
        assert manager.segment_stable_boundary(4) == 5
        assert manager.segment_stable_boundary(7) == 5
        assert manager.segment_stable_boundary(9) == 5

    def test_truncate_retires_only_sealed_stable_segments(self):
        manager = LogManager(segment_size=4)
        for i in range(10):
            manager.append(LogicalRedo(("op", i)))
        manager.flush()
        assert manager.truncate_until(8) == 8
        assert manager.head_lsn == 8
        # Retired records stay visible to the accounting...
        assert len(manager) == 10
        assert manager.stable_count_of(LogicalRedo) == 10
        # ...but are no longer resident.
        assert [r.lsn for r in manager.records_from(0)] == [8, 9]

    def test_truncate_never_passes_the_stable_watermark(self):
        manager = LogManager(segment_size=2)
        for i in range(6):
            manager.append(LogicalRedo(("op", i)))
        manager.flush(up_to_lsn=2)
        # Asked for 6, but only LSNs <= 2 are stable: segment [0,1] goes,
        # segment [2,3] stays (LSN 3 is volatile).
        assert manager.truncate_until(6) == 2
        assert manager.head_lsn == 2

    def test_truncate_feeds_archive_sink(self):
        archived = []
        manager = LogManager(segment_size=2)
        manager.set_archive_sink(archived.append)
        for i in range(6):
            manager.append(LogicalRedo(("op", i)))
        manager.flush()
        manager.truncate_until(4)
        assert [s.base_lsn for s in archived] == [0, 2]
        assert sum(len(s) for s in archived) == 4

    def test_crash_drops_volatile_tail_across_segments(self):
        manager = LogManager(segment_size=3)
        for i in range(8):
            manager.append(LogicalRedo(("op", i)))
        manager.flush(up_to_lsn=4)
        manager.crash()
        assert [r.lsn for r in manager.records_from(0)] == [0, 1, 2, 3, 4]
        assert manager.next_lsn == 5

    def test_checkpoint_index_survives_crash(self):
        manager = LogManager(segment_size=4)
        manager.append(LogicalRedo(("op", 0)))
        manager.append(CheckpointRecord(("test",)))
        manager.flush()
        manager.append(LogicalRedo(("op", 1)))
        manager.append(CheckpointRecord(("test",)))  # never flushed
        assert manager.last_stable_checkpoint_lsn == 1
        manager.crash()
        assert manager.last_stable_checkpoint_lsn == 1


class TestWalCheckSegmented:
    def test_pool_wal_check_forces_the_needed_prefix(self):
        machine = Machine(log_segment_size=4)
        entry = None
        for i in range(6):
            entry = machine.log.append(
                PhysiologicalRedo("p1", PageAction("put", (f"k{i}", i)))
            )
            machine.pool.update(
                "p1",
                lambda p, a=entry: a.payload.action.apply_to(p, lsn=a.lsn),
                create=True,
            )
        # Nothing flushed yet; flushing the page must force the log first.
        machine.pool.flush_page("p1", force=True)
        assert machine.log.stable_lsn >= entry.lsn


# ----------------------------------------------------------------------
# Theory-level partitioned recovery
# ----------------------------------------------------------------------


class TestPartitionTheory:
    def test_partition_by_connected_component(self):
        A = increment("A", "x")
        B = assign("B", "y", Var("x") + 1)  # joins x's component via read
        C = blind_write("C", "z", 7)
        parts = partition_operations([A, B, C])
        as_names = sorted(sorted(op.name for op in part) for part in parts)
        assert as_names == [["A", "B"], ["C"]]

    @pytest.mark.parametrize("max_workers", [None, 4])
    def test_matches_sequential_recover(self, max_workers):
        ops = []
        for i in range(4):
            ops.append(increment(f"inc{i}", f"v{i % 2}"))
            ops.append(assign(f"mix{i}", f"w{i}", Var(f"v{i % 2}") + i))
            ops.append(blind_write(f"blind{i}", f"u{i}", i * 10))
        log = Log(ops)
        state = State()
        sequential = recover(state, log)
        partitioned = recover_partitioned(
            state, log, max_workers=max_workers, trace=True
        )
        assert partitioned.state == sequential.state
        assert partitioned.redo_set == sequential.redo_set
        assert [d.operation.name for d in partitioned.decisions] == [
            d.operation.name for d in sequential.decisions
        ]

    def test_respects_checkpoint(self):
        A = blind_write("A", "x", 1)
        B = increment("B", "y")
        log = Log([A, B])
        outcome = recover_partitioned(State(), log, checkpoint=[A])
        assert outcome.redo_set == {B}
        assert outcome.state["x"] == 0  # A was not replayed
        assert outcome.state["y"] == 1

    def test_accepts_live_partition(self):
        """A VariablePartition maintained during normal operation can be
        handed to recovery, skipping the union-find pass."""
        from repro.core.partition import VariablePartition

        ops = [
            increment("inc0", "v0"),
            assign("mix", "w", Var("v0") + 1),
            blind_write("blind", "u", 10),
        ]
        live = VariablePartition()
        for op in ops:
            live.add(op)
        log = Log(ops)
        fresh = recover_partitioned(State(), log)
        reused = recover_partitioned(State(), log, partition=live)
        assert reused.state == fresh.state
        assert reused.redo_set == fresh.redo_set

    def test_rejects_undercovering_partition(self):
        from repro.core.partition import VariablePartition

        A = blind_write("A", "x", 1)
        B = increment("B", "y")
        partial = VariablePartition([A])  # never saw B
        with pytest.raises(ValueError, match="does not cover"):
            recover_partitioned(State(), Log([A, B]), partition=partial)


# ----------------------------------------------------------------------
# Engine-level partitioned redo
# ----------------------------------------------------------------------


def _mixed_workload(db: KVDatabase, n: int = 60) -> None:
    for i in range(n):
        db.execute(("put", f"k{i}", i))
        if i % 3 == 0:
            db.execute(("add", f"k{i}", 100))
        if i == n // 2:
            db.checkpoint()


class TestPartitionedRedoEngine:
    @pytest.mark.parametrize("method", ["physical", "physiological"])
    def test_parallel_equals_sequential(self, method):
        results = {}
        for parallel in (False, True):
            db = KVDatabase(
                method=method,
                n_pages=6,
                cache_capacity=4,
                log_segment_size=16,
                method_options={
                    "parallel_recovery": parallel,
                    "recovery_workers": 4,
                },
            )
            _mixed_workload(db)
            db.crash_and_recover()
            db.verify_against()
            results[parallel] = db.method.dump()
        assert results[True] == results[False]

    @pytest.mark.parametrize("method", ["physical", "physiological"])
    def test_parallel_recovery_survives_repeat_crashes(self, method):
        db = KVDatabase(
            method=method,
            n_pages=6,
            cache_capacity=4,
            method_options={"parallel_recovery": True, "recovery_workers": 3},
        )
        _mixed_workload(db, n=30)
        for _ in range(3):
            db.crash_and_recover()
            db.verify_against()


# ----------------------------------------------------------------------
# Engine truncation knobs
# ----------------------------------------------------------------------


class TestEngineTruncation:
    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_truncate_on_checkpoint_preserves_recoverability(self, method):
        db = KVDatabase(
            method=method,
            n_pages=4,
            # A small cache forces eviction flushes, draining the dirty
            # page table so fuzzy-checkpoint truncation points advance.
            cache_capacity=2,
            log_segment_size=8,
            checkpoint_every=10,
            truncate_on_checkpoint=True,
        )
        for i in range(50):
            db.execute(("put", f"k{i % 16}", i))
        log = db.method.machine.log
        assert log.head_lsn > 0, "checkpoints should have retired segments"
        db.crash_and_recover()
        db.verify_against()

    def test_truncation_point_below_live_reclsn(self):
        db = KVDatabase(method="physiological", n_pages=4, log_segment_size=4)
        for i in range(20):
            db.execute(("put", f"k{i}", i))
        db.checkpoint()
        point = db.method.truncation_point()
        assert 0 <= point <= db.method.machine.log.last_stable_checkpoint_lsn
        # Everything below the point is never read by recovery.
        db.method.truncate_log()
        db.crash_and_recover()
        db.verify_against()


# ----------------------------------------------------------------------
# Fault injection through a WAL-passing flush
# ----------------------------------------------------------------------


class TestFaultsThroughWal:
    """Arm disk faults on flushes that satisfy the WAL rule, and check
    which recovery methods notice."""

    def _physiological_with_faulted_flush(self, fault_cls, **fault_kwargs):
        db = KVDatabase(method="physiological", n_pages=2, commit_every=1)
        db.execute(("put", "alpha", 1))
        db.execute(("put", "beta", 2))
        page_id = db.method.page_of("alpha")
        machine = db.method.machine
        machine.disk.arm_fault(fault_cls(page_id, **fault_kwargs))
        # The flush passes wal_check (the log is already stable) and the
        # armed fault silently corrupts the page write.
        machine.pool.flush_page(page_id, force=True)
        return db, page_id

    def test_lost_write_is_repaired_by_lsn_redo(self):
        db, _ = self._physiological_with_faulted_flush(LostWriteFault)
        db.crash_and_recover()
        # The dropped write left the old page image (old LSN) on disk, so
        # the LSN redo test correctly says "not installed" and replays.
        db.verify_against()

    def test_torn_write_defeats_the_lsn_test(self):
        # Fill one page with several cells so a torn write can keep some.
        db = KVDatabase(method="physiological", n_pages=1, commit_every=1)
        for i in range(4):
            db.execute(("put", f"k{i}", i))
        page_id = db.method.page_of("k0")
        machine = db.method.machine
        machine.disk.arm_fault(TornWriteFault(page_id, keep_cells=1))
        machine.pool.flush_page(page_id, force=True)
        db.crash()
        db.recover()
        # The torn image carries the *maximum* LSN but only a prefix of
        # the cells: the page-LSN redo test is fooled into skipping the
        # replay.  The atomic-page-write assumption is load-bearing.
        with pytest.raises(VerificationError):
            db.verify_against()

    def test_torn_write_is_repaired_by_blind_physical_replay(self):
        db = KVDatabase(method="physical", n_pages=1, commit_every=1)
        for i in range(4):
            db.execute(("put", f"k{i}", i))
        page_id = db.method.page_of("k0")
        machine = db.method.machine
        machine.disk.arm_fault(TornWriteFault(page_id, keep_cells=1))
        machine.pool.flush_page(page_id, force=True)
        db.crash_and_recover()
        # No checkpoint was taken, so physical recovery blindly replays
        # the whole log; blind replay does not consult the (lying) page
        # LSN and rebuilds every cell.
        db.verify_against()


# ----------------------------------------------------------------------
# Crash during recovery: idempotence
# ----------------------------------------------------------------------


class _AbortReplay(Exception):
    pass


def _crash_midway_through_recovery(db: KVDatabase, after_applies: int) -> bool:
    """Run recover() but crash after ``after_applies`` replay
    applications.  Returns True if the injected crash fired."""
    method = db.method
    calls = {"n": 0}
    if db.method_name == "logical":
        original = method._apply_logical

        def wrapper(description):
            if calls["n"] >= after_applies:
                raise _AbortReplay()
            calls["n"] += 1
            return original(description)

        method._apply_logical = wrapper
        try:
            db.recover()
            return False
        except _AbortReplay:
            return True
        finally:
            method._apply_logical = original
    # Page-based methods funnel every replay through pool.update; the
    # pool is rebuilt by reboot_pool inside recover(), so patch the class.
    from repro.cache.pool import BufferPool

    original_update = BufferPool.update

    def wrapper(self, page_id, mutate, create=False):
        if calls["n"] >= after_applies:
            raise _AbortReplay()
        calls["n"] += 1
        return original_update(self, page_id, mutate, create)

    BufferPool.update = wrapper
    try:
        db.recover()
        return False
    except _AbortReplay:
        return True
    finally:
        BufferPool.update = original_update


class TestCrashDuringRecovery:
    @pytest.mark.parametrize("method", sorted(METHODS))
    @pytest.mark.parametrize("after_applies", [0, 1, 3])
    def test_recovery_is_idempotent_under_crashes(self, method, after_applies):
        db = KVDatabase(
            method=method, n_pages=4, cache_capacity=4, checkpoint_every=7
        )
        for i in range(20):
            db.execute(("put", f"k{i % 8}", i))
            if i % 4 == 0:
                db.execute(("add", f"k{i % 8}", 1000))
        db.crash()
        fired = _crash_midway_through_recovery(db, after_applies)
        # Whether or not the first recovery got far enough to be
        # interrupted, a fresh crash + full recovery must converge.
        db.crash()
        db.recover()
        db.verify_against()
        if after_applies == 0:
            assert fired, "the injected mid-recovery crash never fired"

    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_double_recovery_is_a_fixpoint(self, method):
        db = KVDatabase(method=method, n_pages=4, checkpoint_every=5)
        for i in range(17):
            db.execute(("put", f"k{i % 6}", i))
        db.crash_and_recover()
        first = db.method.dump()
        db.crash_and_recover()
        assert db.method.dump() == first
        db.verify_against()
