"""Tests for the page-granular B-tree invariant audit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BTree
from repro.methods.base import Machine
from repro.sim.audit_btree import audit_btree, lift_btree_log
from repro.workloads.btree_load import BTreeWorkloadSpec, generate_btree_keys


def grown_tree(discipline, n_keys=40, fanout=4, cache=4, unsafe=False, seed=5):
    tree = BTree(
        Machine(cache_capacity=cache),
        fanout=fanout,
        split_discipline=discipline,
        unsafe_split_flush=unsafe,
    )
    pairs = generate_btree_keys(seed, BTreeWorkloadSpec(n_keys=n_keys))
    for key, payload in pairs:
        tree.insert(key, payload)
    tree.commit()
    return tree


class TestLifting:
    def test_single_page_records_lift_one_to_one(self):
        tree = grown_tree("physiological", n_keys=3, fanout=8)
        entries = tree.machine.log.entries(volatile=False)
        operations, by_lsn = lift_btree_log(entries)
        assert len(operations) == 3
        assert all(len(group) == 1 for group in by_lsn.values())

    def test_multipage_records_decompose_per_written_page(self):
        from repro.logmgr import MultiPageRedo

        tree = grown_tree("generalized", n_keys=8, fanout=4, cache=16)
        entries = tree.machine.log.entries(volatile=False)
        _, by_lsn = lift_btree_log(entries)
        split_groups = [
            group
            for entry in entries
            if isinstance(entry.payload, MultiPageRedo)
            for group in [by_lsn[entry.lsn]]
        ]
        assert split_groups
        assert any(len(group) > 1 for group in split_groups)

    def test_split_move_lifts_blind_for_new_page(self):
        """The new page's operation reads only the *old* page: the
        wholesale split-move makes its own prior contents irrelevant."""
        from repro.logmgr import MultiPageRedo

        tree = grown_tree("generalized", n_keys=8, fanout=4, cache=16)
        entries = tree.machine.log.entries(volatile=False)
        operations, by_lsn = lift_btree_log(entries)
        for entry in entries:
            if not isinstance(entry.payload, MultiPageRedo):
                continue
            for op, page_id in by_lsn[entry.lsn]:
                actions = entry.payload.writes[page_id]
                if actions[0].kind == "split-move":
                    assert page_id not in op.read_set
                    assert actions[0].args[0] in op.read_set
                else:
                    assert page_id in op.read_set


class TestAuditHolds:
    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_every_instant_of_growth(self, discipline):
        tree = BTree(Machine(cache_capacity=4), fanout=4, split_discipline=discipline)
        pairs = generate_btree_keys(7, BTreeWorkloadSpec(n_keys=40))
        for key, payload in pairs:
            tree.insert(key, payload)
            tree.commit()
            verdict = audit_btree(tree)
            assert verdict.holds, verdict.detail

    @pytest.mark.parametrize("discipline", ["generalized", "physiological"])
    def test_holds_after_checkpoint_and_recovery(self, discipline):
        tree = grown_tree(discipline, n_keys=30)
        tree.checkpoint()
        assert audit_btree(tree).holds
        tree.crash()
        tree.recover()
        tree.commit()
        assert audit_btree(tree).holds

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=8, deadline=None)
    def test_random_growth_audits_clean(self, seed):
        tree = BTree(Machine(cache_capacity=3), fanout=3, split_discipline="generalized")
        pairs = generate_btree_keys(seed, BTreeWorkloadSpec(n_keys=25))
        for key, payload in pairs:
            tree.insert(key, payload)
            tree.commit()
        verdict = audit_btree(tree)
        assert verdict.holds, verdict.detail


class TestAuditCatchesViolations:
    def test_unsafe_split_flush_is_flagged_before_the_crash(self):
        """The whole point of the checker: the careful-write violation is
        visible in the invariant *while the system still runs*, before
        any crash makes it data loss."""
        tree = BTree(
            Machine(cache_capacity=64),
            fanout=4,
            split_discipline="generalized",
            unsafe_split_flush=True,
        )
        flagged = False
        for key in range(12):
            tree.insert(key, str(key).encode())
            tree.commit()
            if not audit_btree(tree).holds:
                flagged = True
        assert flagged

    def test_forged_page_lsn_is_flagged(self):
        from repro.storage import Page

        tree = grown_tree("physiological", n_keys=6, fanout=8, cache=16)
        # Claim the leaf is installed at a future LSN without its contents.
        leaf = "page-0001"
        tree.machine.disk.write_page(Page(leaf, {"__type__": "leaf"}, lsn=99))
        verdict = audit_btree(tree)
        assert not verdict.holds
