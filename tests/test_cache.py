"""Unit tests for the buffer pool: caching, WAL, ordering, eviction."""

import pytest

from repro.cache import BufferPool, CachePolicyError
from repro.logmgr import LogManager, LogicalRedo
from repro.storage import Disk, Page


def pool_with(capacity=4, policy="lru", steal=True, log=False):
    disk = Disk()
    log_manager = LogManager() if log else None
    return BufferPool(disk, log_manager, capacity=capacity, policy=policy, steal=steal)


class TestBasics:
    def test_create_and_flush(self):
        pool = pool_with()
        page = pool.get_page("p1", create=True)
        page.put("k", 1)
        pool.mark_dirty("p1")
        pool.flush_page("p1")
        assert pool.disk.read_page("p1").get("k") == 1

    def test_miss_loads_from_disk(self):
        pool = pool_with()
        pool.disk.write_page(Page("p1", {"k": 7}))
        assert pool.get_page("p1").get("k") == 7
        assert pool.misses == 1
        pool.get_page("p1")
        assert pool.hits == 1

    def test_missing_page_without_create(self):
        with pytest.raises(KeyError):
            pool_with().get_page("nope")

    def test_update_helper(self):
        pool = pool_with()
        pool.update("p1", lambda p: p.put("k", 3), create=True)
        assert pool.is_dirty("p1")
        assert pool.get_page("p1").get("k") == 3

    def test_flush_clean_page_is_noop(self):
        pool = pool_with()
        pool.disk.write_page(Page("p1", {"k": 7}))
        pool.get_page("p1")
        pool.flush_page("p1")
        assert pool.flushes == 0

    def test_crash_loses_cache(self):
        pool = pool_with()
        pool.update("p1", lambda p: p.put("k", 1), create=True)
        pool.crash()
        assert not pool.is_cached("p1")
        assert not pool.disk.has_page("p1")  # never flushed


class TestWal:
    def test_flush_forces_log_first(self):
        """Write-ahead: flushing a page whose LSN is not yet stable forces
        the log through that LSN before the page write."""
        pool = pool_with(log=True)
        entry = pool.log_manager.append(LogicalRedo(("put",)))
        pool.update("p1", lambda p: p.put("k", 1, lsn=entry.lsn), create=True)
        assert pool.log_manager.stable_lsn == -1
        pool.flush_page("p1")
        assert pool.log_manager.stable_lsn >= entry.lsn
        assert pool.disk.read_page("p1").get("k") == 1

    def test_steal_eviction_also_forces_log(self):
        pool = BufferPool(Disk(), LogManager(), capacity=1)
        entry = pool.log_manager.append(LogicalRedo(("put",)))
        pool.update("p1", lambda p: p.put("k", 1, lsn=entry.lsn), create=True)
        pool.get_page("p2", create=True)  # evicts and steals p1
        assert pool.log_manager.stable_lsn >= entry.lsn
        assert pool.disk.read_page("p1").get("k") == 1

    def test_untagged_pages_bypass_wal(self):
        pool = pool_with(log=True)
        pool.update("p1", lambda p: p.put("k", 1), create=True)
        pool.flush_page("p1")  # lsn == -1: no WAL obligation


class TestFlushConstraints:
    def test_blocked_flush_raises(self):
        pool = pool_with()
        pool.update("new", lambda p: p.put("k", 1), create=True)
        pool.update("old", lambda p: p.put("k", 2), create=True)
        pool.add_flush_constraint("new", "old")
        with pytest.raises(CachePolicyError, match="careful write ordering"):
            pool.flush_page("old")

    def test_flushing_first_discharges(self):
        pool = pool_with()
        pool.update("new", lambda p: p.put("k", 1), create=True)
        pool.update("old", lambda p: p.put("k", 2), create=True)
        pool.add_flush_constraint("new", "old")
        pool.flush_page("new")
        pool.flush_page("old")
        assert pool.disk.read_page("old").get("k") == 2

    def test_force_bypasses_ordering(self):
        pool = pool_with()
        pool.update("new", lambda p: p.put("k", 1), create=True)
        pool.update("old", lambda p: p.put("k", 2), create=True)
        pool.add_flush_constraint("new", "old")
        pool.flush_page("old", force=True)  # the ablation hook
        assert pool.disk.read_page("old").get("k") == 2

    def test_flush_all_respects_order(self):
        pool = pool_with()
        order = []
        original = pool.disk.write_page

        def tracking_write(page):
            order.append(page.page_id)
            original(page)

        pool.disk.write_page = tracking_write
        pool.update("old", lambda p: p.put("k", 2), create=True)
        pool.update("new", lambda p: p.put("k", 1), create=True)
        pool.add_flush_constraint("new", "old")
        pool.flush_all()
        assert order.index("new") < order.index("old")

    def test_duplicate_constraints_are_not_cycles(self):
        """Two constraints naming the same prerequisite must both be
        satisfied by one flush of it (regression: the prerequisite
        resolver once mistook the second for a cycle)."""
        pool = pool_with()
        pool.update("a", lambda p: p.put("k", 1), create=True)
        pool.update("b", lambda p: p.put("k", 2), create=True)
        pool.add_flush_constraint("a", "b")
        pool.add_flush_constraint("a", "b")
        pool._flush_with_prerequisites("b")
        assert pool.disk.read_page("b").get("k") == 2
        assert pool.pending_constraints() == []

    def test_cycle_forming_constraint_resolved_by_eager_flush(self):
        """Adding an ordering that would close a cycle flushes the new
        prerequisite immediately instead (write-graph acyclicity)."""
        pool = pool_with()
        pool.update("a", lambda p: p.put("k", 1), create=True)
        pool.update("b", lambda p: p.put("k", 2), create=True)
        pool.add_flush_constraint("a", "b")
        constraint = pool.add_flush_constraint("b", "a")  # would be a cycle
        assert constraint.discharged
        # b (and its prerequisite a) already reached disk.
        assert pool.disk.read_page("a").get("k") == 1
        assert pool.disk.read_page("b").get("k") == 2

    def test_crash_clears_constraints(self):
        pool = pool_with()
        pool.update("a", lambda p: p.put("k", 1), create=True)
        pool.update("b", lambda p: p.put("k", 2), create=True)
        pool.add_flush_constraint("a", "b")
        pool.crash()
        assert pool.pending_constraints() == []


class TestRedirtyWindow:
    """Regression: a constraint registered *after* ``first_page`` was
    already flushed must not be retroactively satisfied by that earlier
    flush.  The scheduler binds the edge to the first page's current
    node generation; a clean page gets an empty obligation node, which
    only a future re-dirty-and-flush can discharge."""

    def test_past_flush_does_not_discharge(self):
        pool = pool_with()
        pool.update("first", lambda p: p.put("k", 1), create=True)
        pool.flush_page("first")  # on disk *before* the edge exists
        pool.update("then", lambda p: p.put("k", 2), create=True)
        constraint = pool.add_flush_constraint("first", "then")
        assert not constraint.discharged
        with pytest.raises(CachePolicyError, match="careful write ordering"):
            pool.flush_page("then")

    def test_clean_prerequisite_flush_is_not_a_discharge(self):
        """Flushing the clean first page is a no-op and must not count:
        the obligation names content that does not exist yet."""
        pool = pool_with()
        pool.update("first", lambda p: p.put("k", 1), create=True)
        pool.flush_page("first")
        pool.update("then", lambda p: p.put("k", 2), create=True)
        constraint = pool.add_flush_constraint("first", "then")
        pool.flush_page("first")  # clean: no-op
        assert not constraint.discharged
        with pytest.raises(CachePolicyError, match="careful write ordering"):
            pool.flush_page("then")

    def test_flush_all_refuses_undischargeable_obligation(self):
        """The prerequisite resolver cannot conjure the missing write
        either — the old bookkeeping wrongly discharged here."""
        pool = pool_with()
        pool.update("first", lambda p: p.put("k", 1), create=True)
        pool.flush_page("first")
        pool.update("then", lambda p: p.put("k", 2), create=True)
        pool.add_flush_constraint("first", "then")
        with pytest.raises(CachePolicyError, match="careful write ordering"):
            pool.flush_all()

    def test_redirty_and_flush_discharges(self):
        """The re-dirty window closes properly: once the first page is
        dirtied again and *that* content reaches disk, the constraint is
        discharged and the dependent page may flush."""
        pool = pool_with()
        pool.update("first", lambda p: p.put("k", 1), create=True)
        pool.flush_page("first")
        pool.update("then", lambda p: p.put("k", 2), create=True)
        constraint = pool.add_flush_constraint("first", "then")
        pool.update("first", lambda p: p.put("k", 3))  # the future write
        pool.flush_page("first")
        assert constraint.discharged
        pool.flush_page("then")
        assert pool.disk.read_page("then").get("k") == 2

    def test_redirty_window_under_eviction(self):
        """The window also closes when the re-dirtied page leaves via
        eviction (steal) rather than an explicit flush."""
        pool = pool_with(capacity=2)
        pool.update("first", lambda p: p.put("k", 1), create=True)
        pool.flush_page("first")
        pool.update("then", lambda p: p.put("k", 2), create=True)
        constraint = pool.add_flush_constraint("first", "then")
        pool.update("first", lambda p: p.put("k", 3))
        pool.get_page("then")  # make "first" the LRU victim
        pool.get_page("other", create=True)  # evicts (installs) "first"
        assert constraint.discharged
        pool.flush_page("then")
        assert pool.disk.read_page("then").get("k") == 2


class TestFlushElision:
    """Remove-write at the pool layer: a dirty page whose cells equal
    its disk image installs without IO."""

    def test_identical_content_skips_the_write(self):
        pool = pool_with()
        pool.update("p1", lambda p: p.put("k", 1), create=True)
        pool.flush_page("p1")
        assert pool.flushes == 1
        # Overwrite with the same value: dirty again, but content equal.
        pool.update("p1", lambda p: p.put("k", 1))
        assert pool.is_dirty("p1")
        pool.flush_page("p1")
        assert pool.flushes == 1  # no second IO
        assert not pool.is_dirty("p1")
        assert pool.scheduler.stats.elisions == 1

    def test_elision_discharges_constraints(self):
        pool = pool_with()
        pool.update("a", lambda p: p.put("k", 1), create=True)
        pool.flush_page("a")
        pool.update("a", lambda p: p.put("k", 1))  # same content
        pool.update("b", lambda p: p.put("k", 2), create=True)
        constraint = pool.add_flush_constraint("a", "b")
        pool.flush_page("a")  # elided, but still an install
        assert constraint.discharged
        pool.flush_page("b")

    def test_legacy_policy_never_elides(self):
        pool = BufferPool(Disk(), capacity=4, install_policy="legacy")
        pool.update("p1", lambda p: p.put("k", 1), create=True)
        pool.flush_page("p1")
        pool.update("p1", lambda p: p.put("k", 1))
        pool.flush_page("p1")
        assert pool.flushes == 2
        assert pool.scheduler.stats.elisions == 0

    def test_unknown_install_policy_rejected(self):
        with pytest.raises(ValueError, match="install policy"):
            BufferPool(Disk(), install_policy="psychic")


class TestEviction:
    def test_lru_evicts_least_recent(self):
        pool = pool_with(capacity=2)
        pool.update("p1", lambda p: p.put("k", 1), create=True)
        pool.update("p2", lambda p: p.put("k", 2), create=True)
        pool.get_page("p1")  # touch p1; p2 becomes LRU
        pool.update("p3", lambda p: p.put("k", 3), create=True)
        assert pool.is_cached("p1")
        assert not pool.is_cached("p2")
        # The dirty victim was flushed (steal).
        assert pool.disk.read_page("p2").get("k") == 2

    def test_clock_eviction_makes_room(self):
        pool = pool_with(capacity=2, policy="clock")
        for i in range(5):
            pool.update(f"p{i}", lambda p, i=i: p.put("k", i), create=True)
        assert len(pool.cached_page_ids()) <= 2
        # All evicted pages reached disk.
        for i in range(5):
            if not pool.is_cached(f"p{i}"):
                assert pool.disk.read_page(f"p{i}").get("k") == i

    def test_no_steal_pool_rejects_dirty_eviction(self):
        pool = pool_with(capacity=1, steal=False)
        pool.update("p1", lambda p: p.put("k", 1), create=True)
        with pytest.raises(CachePolicyError, match="no-steal"):
            pool.get_page("p2", create=True)

    def test_pinned_pages_survive(self):
        pool = pool_with(capacity=2)
        pool.update("p1", lambda p: p.put("k", 1), create=True)
        pool.pin("p1")
        pool.update("p2", lambda p: p.put("k", 2), create=True)
        pool.update("p3", lambda p: p.put("k", 3), create=True)
        assert pool.is_cached("p1")
        pool.unpin("p1")

    def test_all_pinned_raises(self):
        pool = pool_with(capacity=1)
        pool.update("p1", lambda p: p.put("k", 1), create=True)
        pool.pin("p1")
        with pytest.raises(CachePolicyError, match="pinned"):
            pool.get_page("p2", create=True)

    def test_unpin_without_pin(self):
        pool = pool_with()
        pool.get_page("p1", create=True)
        with pytest.raises(CachePolicyError):
            pool.unpin("p1")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(Disk(), capacity=0)
