"""Unit tests for the abstract recovery procedure (§4, Figure 6)."""

import pytest

from repro.core.conflict import ConflictGraph
from repro.core.expr import Var
from repro.core.model import State
from repro.core.recovery import (
    Log,
    LogRecord,
    always_redo,
    analysis_once,
    recover,
)
from tests.conftest import make_ops


class TestLog:
    def test_append_assigns_dense_lsns(self):
        ops = make_ops(("A", "x", 1), ("B", "y", 2))
        log = Log()
        r0 = log.append(ops[0])
        r1 = log.append(ops[1], page="p1")
        assert (r0.lsn, r1.lsn) == (0, 1)
        assert r1.labels == {"page": "p1"}

    def test_from_operations(self):
        ops = make_ops(("A", "x", 1), ("B", "y", 2))
        log = Log.from_operations(ops)
        assert log.operations() == ops
        assert len(log) == 2

    def test_record_for(self):
        ops = make_ops(("A", "x", 1))
        log = Log.from_operations(ops)
        assert log.record_for(ops[0]).lsn == 0
        with pytest.raises(KeyError):
            log.record_for(make_ops(("Z", "z", 1))[0])

    def test_is_log_for_accepts_execution_order(self, opq, opq_conflict):
        assert Log.from_operations(list(opq)).is_log_for(opq_conflict)

    def test_is_log_for_accepts_any_linear_extension(self, opq, opq_conflict):
        for extension in opq_conflict.all_linear_extensions():
            assert Log.from_operations(extension).is_log_for(opq_conflict)

    def test_is_log_for_rejects_conflict_violation(self, opq, opq_conflict):
        O, P, Q = opq
        assert not Log.from_operations([Q, P, O]).is_log_for(opq_conflict)

    def test_is_log_for_rejects_missing_operation(self, opq, opq_conflict):
        O, P, Q = opq
        assert not Log.from_operations([O, P]).is_log_for(opq_conflict)

    def test_suffix_from(self, opq):
        log = Log.from_operations(list(opq))
        suffix = log.suffix_from(1)
        assert [r.lsn for r in suffix] == [1, 2]


class TestRecoverProcedure:
    def test_replays_everything_without_checkpoint(self, opq, initial_state):
        log = Log.from_operations(list(opq))
        outcome = recover(initial_state, log)
        assert outcome.state["x"] == 3 and outcome.state["y"] == 2
        assert outcome.redo_set == set(opq)
        assert outcome.installed == set()

    def test_checkpoint_skips_operations(self, opq, initial_state):
        O, P, Q = opq
        log = Log.from_operations(list(opq))
        # {O} checkpointed: state must already contain O's effect.
        outcome = recover(State({"x": 1}), log, checkpoint={O})
        assert outcome.state["x"] == 3 and outcome.state["y"] == 2
        assert outcome.redo_set == {P, Q}
        assert outcome.installed == {O}

    def test_redo_test_controls_replay(self, opq, initial_state):
        O, P, Q = opq

        def redo_only_q(operation, state, log, analysis):
            return operation == Q

        log = Log.from_operations(list(opq))
        outcome = recover(State({"x": 1, "y": 2}), log, redo=redo_only_q)
        assert outcome.redo_set == {Q}
        assert outcome.state["x"] == 3

    def test_decisions_trace_in_log_order(self, opq, initial_state):
        log = Log.from_operations(list(opq))
        outcome = recover(initial_state, log)
        assert [d.operation.name for d in outcome.decisions] == ["O", "P", "Q"]
        assert all(d.redone for d in outcome.decisions)

    def test_input_state_not_mutated(self, opq, initial_state):
        log = Log.from_operations(list(opq))
        recover(initial_state, log)
        assert initial_state == State()

    def test_installed_after_bookkeeping(self, opq, initial_state):
        """installed_i grows monotonically to the full logged set."""
        O, P, Q = opq
        log = Log.from_operations(list(opq))
        outcome = recover(initial_state, log, checkpoint={O})
        before = outcome.installed_after(0)
        assert before == {O}  # only the checkpointed op is safe initially
        assert outcome.installed_after(1) == {O, P}
        assert outcome.installed_after(2) == {O, P, Q}

    def test_analysis_once_runs_single_pass(self, opq, initial_state):
        calls = []

        def single(state, log, unrecovered):
            calls.append(len(unrecovered))
            return "the-analysis"

        log = Log.from_operations(list(opq))
        outcome = recover(initial_state, log, analyze=analysis_once(single))
        assert calls == [3]  # ran once, at the first iteration
        assert all(d.analysis == "the-analysis" for d in outcome.decisions)

    def test_per_iteration_analysis(self, opq, initial_state):
        seen = []

        def analyze(state, log, unrecovered, analysis):
            seen.append(sorted(op.name for op in unrecovered))
            return len(unrecovered)

        log = Log.from_operations(list(opq))
        recover(initial_state, log, analyze=analyze)
        assert seen == [["O", "P", "Q"], ["P", "Q"], ["Q"]]

    def test_analysis_value_reaches_redo_test(self, opq, initial_state):
        log = Log.from_operations(list(opq))

        def analyze(state, log_, unrecovered, analysis):
            return {"countdown": len(unrecovered)}

        def redo(operation, state, log_, analysis):
            assert analysis["countdown"] >= 1
            return True

        outcome = recover(initial_state, log, redo=redo, analyze=analyze)
        assert outcome.state["x"] == 3


class TestCorollary4Shape:
    def test_wrong_redo_choice_breaks_recovery(self, opq, initial_state):
        """Skipping O while the state doesn't contain O's effect violates
        the invariant, and recovery indeed lands in the wrong state."""
        O, P, Q = opq

        def skip_o(operation, state, log, analysis):
            return operation != O

        log = Log.from_operations(list(opq))
        outcome = recover(initial_state, log, redo=skip_o)
        # P read x=0 instead of 1: y ends up 1, not 2.
        assert outcome.state["y"] == 1
        final = ConflictGraph(list(opq)).final_state(initial_state)
        assert outcome.state != final
