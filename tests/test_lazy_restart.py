"""Lazy restart ("instant restart") tests.

Covers the whole stack the per-page redo index enables: index/sidecar
correctness against the frame walk, analysis-only cold starts that
serve immediately (reads before the backlog drains must match an eager
cold start — Corollary 4 page by page), the on-demand fault path
through the buffer pool, checkpoint/quiesce safety while a backlog is
outstanding, backward compatibility with sidecar-less ("v1") segment
directories, and the ``logdump --pages`` verification contract.
"""

import time

import pytest

from repro.engine import KVDatabase
from repro.logmgr.codec import encode_file_header, encode_record
from repro.logmgr.filelog import segment_filename
from repro.logmgr.pageindex import (
    PageRedoIndex,
    SegmentPageIndex,
    encode_page_index,
    parse_page_index,
)
from repro.logmgr.records import LogRecord, PhysicalRedo
from repro.methods.base import page_of
from repro.sim.crash import canonical_state
from repro.storage import Disk

ALL_METHODS = ["logical", "physical", "physiological", "generalized"]
# Methods whose lazy plan is page-granular (per-page chains); logical
# recovery is suffix-granular (one global chain) and is tested apart.
PAGE_METHODS = ["physical", "physiological", "generalized"]


def mixed_stream(method, n=120):
    """Puts/adds/deletes, plus cross-page copyadds where the method
    supports them (physiological §6.3 is single-page by definition)."""
    ops = []
    for i in range(n):
        k = f"k{i % 17}"
        if method != "physiological" and i % 11 == 7:
            ops.append(("copyadd", f"d{i % 5}", (k, i)))
        elif i % 7 == 3:
            ops.append(("add", k, i))
        elif i % 13 == 9:
            ops.append(("delete", k, None))
        else:
            ops.append(("put", k, i * 10))
    return ops


def build_crashed(root, method, ckpt=25, n=120):
    """A database crashed mid-workload over a real segment directory,
    small segments so several sealed sidecars exist."""
    db = KVDatabase(
        method=method,
        n_pages=8,
        log_dir=root,
        fsync=False,
        checkpoint_every=ckpt,
        log_segment_size=32,
    )
    db.run(mixed_stream(method, n))
    db.crash()
    return db


def survivor(db):
    """An independent copy of the crashed machine's disk."""
    disk = Disk()
    for page in db.method.machine.disk.snapshot().values():
        disk.write_page(page.copy())
    return disk


def cold(root, method, ckpt=25, **kwargs):
    return KVDatabase.cold_start(
        root,
        method=method,
        n_pages=8,
        checkpoint_every=ckpt,
        log_segment_size=32,
        fsync=False,
        **kwargs,
    )


class TestPageRedoIndex:
    def test_sidecar_index_equals_scan_index(self, tmp_path):
        """The sidecar fast path and the rebuild scan are the same index:
        strip every sidecar and the chains and edges must not change."""
        db = build_crashed(tmp_path, "generalized")
        db.close()
        via_sidecars = cold(tmp_path, "generalized", recover=False)
        index_a = via_sidecars.method.machine.log.page_index()
        assert index_a.sidecars_used > 0
        via_sidecars.close()
        for sidecar in tmp_path.glob("*.pages"):
            sidecar.unlink()
        via_scan = cold(tmp_path, "generalized", recover=False)
        index_b = via_scan.method.machine.log.page_index()
        assert index_b.sidecars_used == 0
        assert index_b.scans == index_b.segments_indexed
        via_scan.close()
        assert index_a.pages() == index_b.pages()
        for page_id in index_a.pages():
            assert index_a.chain(page_id) == index_b.chain(page_id)
        assert index_a.edges == index_b.edges

    def test_chain_filtering_and_first_lsn(self):
        index = PageRedoIndex(start_lsn=10)
        index.add_segment(
            SegmentPageIndex(
                base_lsn=0,
                region_len=100,
                pages={"data001": [12, 5, 40, 12, 60, 20]},
                edges=[(15, ("data001",), ("data002",))],
            )
        )
        # The lsn-5 entry is below start_lsn and never enters the index.
        assert index.chain("data001") == [(0, 40, 12), (0, 60, 20)]
        assert index.chain("data001", start_lsn=15) == [(0, 60, 20)]
        assert index.chain_length("data001") == 2
        assert index.first_lsn("data001") == 12
        assert index.first_lsn("data001", after_lsn=12) == 20
        assert index.first_lsn("data001", after_lsn=20) is None
        assert index.first_lsn("absent") is None
        assert index.edges == [(15, ("data001",), ("data002",))]

    def test_components_are_closed_both_directions(self):
        """Union-find over read∪write sets: a chain of multi-page records
        merges transitively, untouched pages stay singleton (omitted)."""
        index = PageRedoIndex()
        index.add_segment(
            SegmentPageIndex(
                base_lsn=0,
                region_len=10,
                pages={p: [0, 1] for p in "abcde"},
                edges=[
                    (1, ("a",), ("b",)),
                    (2, ("c",), ("d",)),
                    (3, ("b",), ("c",)),
                ],
            )
        )
        components = index.components()
        group = frozenset("abcd")
        assert components == {p: group for p in "abcd"}
        assert "e" not in components  # singleton: callers default to {e}

    def test_sidecar_roundtrip_and_rejection(self):
        index = SegmentPageIndex(
            base_lsn=7,
            region_len=123,
            pages={"data000": [13, 7, 55, 9]},
            edges=[(8, ("data000",), ("data001",))],
        )
        blob = encode_page_index(index)
        assert parse_page_index(blob) == index
        assert parse_page_index(None) is None
        assert parse_page_index(blob[:10]) is None  # truncated header
        assert parse_page_index(b"XXXX" + blob[4:]) is None  # bad magic
        corrupt = bytearray(blob)
        corrupt[-1] ^= 0xFF
        assert parse_page_index(bytes(corrupt)) is None  # payload CRC


class TestLazyMatchesEager:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("ckpt", [None, 25])
    def test_serve_during_recovery_and_post_drain_identity(
        self, method, ckpt, tmp_path
    ):
        """The instant-restart contract: reads during recovery return
        exactly what an eager cold start would, writes land, and after
        the backlog drains the two incarnations are byte-identical."""
        db = build_crashed(tmp_path, method, ckpt=ckpt)
        disk_eager, disk_lazy = survivor(db), survivor(db)
        db.close()
        eager = cold(tmp_path, method, ckpt=ckpt, disk=disk_eager)
        lazy = cold(tmp_path, method, ckpt=ckpt, disk=disk_lazy, lazy=True)
        # Serve during recovery: every key, before the drain finishes.
        for i in range(17):
            assert lazy.get(f"k{i}") == eager.get(f"k{i}"), (method, ckpt, i)
        for i in range(5):
            assert lazy.get(f"d{i}") == eager.get(f"d{i}")
        # Writes during recovery land on both incarnations.
        lazy.execute(("put", "fresh", 777))
        eager.execute(("put", "fresh", 777))
        lazy.drain_lazy()
        assert lazy.replay_backlog() == 0
        health = lazy.health()
        assert health["state"] == "ready"
        assert health["replay_backlog"] == 0
        eager.quiesce()
        lazy.quiesce()
        assert canonical_state(eager) == canonical_state(lazy), (method, ckpt)
        eager.close()
        lazy.close()

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_second_crash_before_drain_converges(self, method, tmp_path):
        """Crash again while the backlog is still outstanding: the
        records are all still in the log, so the next cold start (eager)
        lands exactly where an eager start before the crash would."""
        db = build_crashed(tmp_path, method)
        disk_a, disk_b = survivor(db), survivor(db)
        db.close()
        lazy = cold(tmp_path, method, disk=disk_a, lazy=True)
        lazy.crash()  # abandons the backlog, replays nothing more
        recovered = cold(
            tmp_path, method, disk=lazy.method.machine.disk
        )
        baseline = cold(tmp_path, method, disk=disk_b)
        recovered.quiesce()
        baseline.quiesce()
        assert canonical_state(recovered) == canonical_state(baseline)
        recovered.close()
        baseline.close()


class TestFaultPathReplay:
    @pytest.mark.parametrize("method", PAGE_METHODS)
    def test_first_access_replays_exactly_that_page(self, method, tmp_path):
        """Drive the plan by hand (no background thread): a get faults
        the page in through the pool hook, shrinking the backlog by that
        page's replay group only."""
        db = build_crashed(tmp_path, method, ckpt=None)
        disk_lazy, disk_eager = survivor(db), survivor(db)
        db.close()
        lazy = cold(tmp_path, method, ckpt=None, disk=disk_lazy, recover=False)
        plan = lazy.method.begin_lazy_recovery()
        assert plan is not None
        backlog = plan.backlog()
        assert backlog > 0
        lazy.get("k0")  # faults the key's page (and its replay group) in
        assert plan.pages_replayed >= 1
        assert plan.backlog() < backlog
        plan.drain()
        assert plan.done
        assert plan.backlog() == 0
        # The pool hook detaches itself once the backlog is gone.
        assert lazy.method.machine.pool.page_fault is None
        eager = cold(tmp_path, method, ckpt=None, disk=disk_eager)
        lazy.quiesce()
        eager.quiesce()
        assert canonical_state(lazy) == canonical_state(eager)
        lazy.close()
        eager.close()

    def test_logical_first_access_drains_the_suffix(self, tmp_path):
        """Logical recovery is suffix-granular: the first data access
        gates on the whole outstanding chain (replaying it through the
        normal code path), so one get leaves the plan done."""
        db = build_crashed(tmp_path, "logical", ckpt=None)
        disk = survivor(db)
        db.close()
        lazy = cold(tmp_path, "logical", ckpt=None, disk=disk, recover=False)
        plan = lazy.method.begin_lazy_recovery()
        assert plan is not None and plan.backlog() > 0
        lazy.get("k0")
        assert plan.done
        assert plan.backlog() == 0
        lazy.close()


class TestCheckpointDuringLazy:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_checkpoint_drains_first(self, method, tmp_path):
        """A fuzzy checkpoint (or a root swing) taken mid-backlog would
        record state that cannot see the unreplayed pages — so the
        engine drains before checkpointing, and nothing is lost."""
        db = build_crashed(tmp_path, method)
        disk_lazy, disk_eager = survivor(db), survivor(db)
        db.close()
        lazy = cold(tmp_path, method, disk=disk_lazy, lazy=True)
        eager = cold(tmp_path, method, disk=disk_eager)
        lazy.checkpoint()
        assert lazy.replay_backlog() == 0
        assert lazy.method.dump() == eager.method.dump()
        lazy.close()
        eager.close()


class TestBackwardCompat:
    @pytest.mark.parametrize("method", ["physiological", "logical"])
    def test_sidecarless_directory_cold_starts_both_ways(
        self, method, tmp_path
    ):
        """A pre-sidecar directory (every ``.pages`` file stripped) must
        cold-start eagerly AND lazily — lazy falls back to the one-pass
        rebuild scan and lands on the identical state."""
        db = build_crashed(tmp_path, method)
        disk_eager, disk_lazy = survivor(db), survivor(db)
        db.close()
        stripped = [p for p in tmp_path.glob("*.pages")]
        assert stripped, "workload too small to seal any segment"
        for sidecar in stripped:
            sidecar.unlink()
        eager = cold(tmp_path, method, disk=disk_eager)
        lazy = cold(tmp_path, method, disk=disk_lazy, lazy=True)
        for i in range(17):
            assert lazy.get(f"k{i}") == eager.get(f"k{i}")
        lazy.drain_lazy()
        eager.quiesce()
        lazy.quiesce()
        assert canonical_state(eager) == canonical_state(lazy)
        eager.close()
        lazy.close()

    def test_handwritten_v1_segment_directory(self, tmp_path):
        """A segment file written by hand from codec primitives alone —
        header plus frames, no seal, no sidecar — is a faithful v1
        directory; eager and lazy cold starts both serve it."""
        n_pages = 8
        frames = bytearray(encode_file_header(0))
        expected = {}
        for i in range(40):
            key, value = f"k{i}", i * 3
            expected[key] = value
            frames += encode_record(
                LogRecord(
                    lsn=i,
                    payload=PhysicalRedo(
                        page_id=page_of(key, n_pages), cells={key: value}
                    ),
                )
            )
        (tmp_path / segment_filename(0)).write_bytes(bytes(frames))
        eager = KVDatabase.cold_start(
            tmp_path, method="physical", n_pages=n_pages,
            checkpoint_every=None, fsync=False,
        )
        lazy = KVDatabase.cold_start(
            tmp_path, method="physical", n_pages=n_pages,
            checkpoint_every=None, fsync=False, lazy=True,
        )
        for key, value in expected.items():
            assert lazy.get(key) == value
            assert eager.get(key) == value
        lazy.drain_lazy()
        eager.quiesce()
        lazy.quiesce()
        assert canonical_state(eager) == canonical_state(lazy)
        eager.close()
        lazy.close()


class TestLogdumpPages:
    def _prepare(self, tmp_path):
        db = build_crashed(tmp_path / "log", "generalized")
        db.close()
        return tmp_path / "log"

    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        root = self._prepare(tmp_path)
        assert main(["logdump", str(root), "--pages"]) == 0
        out = capsys.readouterr().out
        assert "sidecar(s) verified against the frame walk" in out
        assert "data000" in out
        assert "replay component" in out  # copyadds bind pages

    def test_corrupt_sidecar_exits_two(self, tmp_path, capsys):
        """A sidecar that covers the segment's bytes but disagrees with
        the frame walk is corruption, not staleness: exit 2."""
        from repro.__main__ import main

        root = self._prepare(tmp_path)
        victim = sorted(root.glob("*.pages"))[0]
        index = parse_page_index(victim.read_bytes())
        pages = {p: list(flat) for p, flat in index.pages.items()}
        page_id = next(iter(pages))
        pages[page_id][1] += 1  # one shifted LSN: valid blob, wrong content
        victim.write_bytes(
            encode_page_index(
                SegmentPageIndex(
                    index.base_lsn, index.region_len, pages, index.edges
                )
            )
        )
        assert main(["logdump", str(root), "--pages"]) == 2
        assert "DISAGREES" in capsys.readouterr().err

    def test_stale_sidecar_is_ignored_not_fatal(self, tmp_path, capsys):
        """A sidecar for different bytes (region_len off) is what the
        lifecycle produces when a write races a crash — the runtime
        ignores it, and so does the dump."""
        from repro.__main__ import main

        root = self._prepare(tmp_path)
        victim = sorted(root.glob("*.pages"))[0]
        index = parse_page_index(victim.read_bytes())
        victim.write_bytes(
            encode_page_index(
                SegmentPageIndex(
                    index.base_lsn,
                    index.region_len + 1,
                    index.pages,
                    index.edges,
                )
            )
        )
        assert main(["logdump", str(root), "--pages"]) == 0
        assert "stale page-index sidecar" in capsys.readouterr().out

    def test_crc_damaged_sidecar_is_treated_as_absent(self, tmp_path):
        from repro.__main__ import main

        root = self._prepare(tmp_path)
        victim = sorted(root.glob("*.pages"))[0]
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(bytes(blob))
        assert main(["logdump", str(root), "--pages"]) == 0

    def test_restamped_crc_over_damaged_payload_is_not_fatal(
        self, tmp_path, capsys
    ):
        """Damaged payload bytes under a *recomputed* CRC must not crash
        the decoder: the parse fails cleanly, the dump reports the
        sidecar as undecodable, and the runtime (which uses the same
        parse) falls back to the rebuild scan — exit 0, not a
        traceback."""
        import struct
        import zlib

        from repro.__main__ import main
        from repro.logmgr.pageindex import PAGES_HEADER_SIZE

        root = self._prepare(tmp_path)
        victim = sorted(root.glob("*.pages"))[0]
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        header = struct.Struct("<4sBQQII")
        magic, ver, base, region, plen, _crc = header.unpack_from(blob, 0)
        payload = bytes(blob[PAGES_HEADER_SIZE : PAGES_HEADER_SIZE + plen])
        blob[: PAGES_HEADER_SIZE] = header.pack(
            magic, ver, base, region, plen, zlib.crc32(payload)
        )
        victim.write_bytes(bytes(blob))
        assert parse_page_index(bytes(blob)) is None
        assert main(["logdump", str(root), "--pages"]) == 0
        assert "undecodable page-index sidecar" in capsys.readouterr().out

    def test_single_file_and_pages_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        root = self._prepare(tmp_path)
        segment = sorted(root.glob("segment-*.wal"))[0]
        assert main(["logdump", str(segment), "--pages"]) == 0
        assert "page" in capsys.readouterr().out


class TestBackgroundDrain:
    def test_background_thread_finishes_without_access(self, tmp_path):
        """With no foreground traffic at all, the drainer alone empties
        the backlog and flips health to ready."""
        db = build_crashed(tmp_path, "physiological", ckpt=None)
        disk = survivor(db)
        db.close()
        lazy = cold(tmp_path, "physiological", ckpt=None, disk=disk, lazy=True)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and lazy.replay_backlog():
            time.sleep(0.01)
        assert lazy.replay_backlog() == 0
        assert lazy.health()["state"] == "ready"
        lazy.close()

    def test_progress_reports_background_replay_phase(self, tmp_path):
        from repro.obs.progress import RecoveryProgress

        db = build_crashed(tmp_path, "physiological", ckpt=None)
        disk = survivor(db)
        db.close()
        phases = []
        progress = RecoveryProgress(
            on_update=lambda snap: phases.append(snap["phase"])
        )
        lazy = cold(
            tmp_path, "physiological", ckpt=None, disk=disk,
            lazy=True, progress=progress,
        )
        lazy.drain_lazy()
        assert "background-replay" in phases
        lazy.close()
