#!/usr/bin/env python3
"""Quickstart: the theory of redo recovery in five minutes.

Walks the paper's introduction — Scenarios 1–3 (Figures 1–3), the
installation graph of the O,P,Q running example (Figures 4–5), the
abstract recovery procedure (Figure 6), and the Recovery Invariant —
using the public API.

Run:  python examples/quickstart.py
"""

from repro import (
    ConflictGraph,
    InstallationGraph,
    Log,
    Operation,
    State,
    Var,
    assign,
    blind_write,
    check_recovery_invariant,
    is_potentially_recoverable,
    recover,
)
from repro.core.explain import find_explaining_prefixes, is_explainable


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def scenario_1() -> None:
    banner("Scenario 1: read-write edges are important (Figure 1)")
    A = assign("A", "x", Var("y") + 1)   # A: x <- y + 1
    B = blind_write("B", "y", 2)          # B: y <- 2
    conflict = ConflictGraph([A, B])      # invoked A then B
    print("operations :", A, "|", B)
    print("conflict   :", [(a.name, b.name, sorted(l)) for a, b, l in conflict.edges()])

    # B's update reached the stable state before A's, then a crash:
    crashed = State({"x": 0, "y": 2})
    print("crashed    :", crashed)
    recoverable = is_potentially_recoverable(conflict, crashed, State())
    print("recoverable:", recoverable, "(no replay subset can regenerate x=1)")
    assert not recoverable


def scenario_2() -> None:
    banner("Scenario 2: write-read edges are unimportant (Figure 2)")
    B = blind_write("B", "y", 2)
    A = assign("A", "x", Var("y") + 1)
    conflict = ConflictGraph([B, A])      # invoked B then A
    installation = InstallationGraph(conflict)

    crashed = State({"x": 3, "y": 0})     # A's change installed, B's not
    print("crashed    :", crashed)
    print("recoverable:", is_potentially_recoverable(conflict, crashed, State()))
    print("{A} is an installation prefix :", installation.is_prefix({A}))
    print("{A} is a conflict prefix      :", conflict.is_prefix({A}))

    # The Figure 6 recovery procedure, with A checkpointed:
    outcome = recover(crashed, Log.from_operations([B, A]), checkpoint={A})
    print("recover() replayed            :", sorted(op.name for op in outcome.redo_set))
    print("recovered state               :", outcome.state)
    assert outcome.state == conflict.final_state(State())


def scenario_3() -> None:
    banner("Scenario 3: only exposed variables matter (Figure 3)")
    C = Operation.from_assignments("C", {"x": Var("x") + 1, "y": Var("y") + 1})
    D = assign("D", "x", Var("y") + 1)
    conflict = ConflictGraph([C, D])
    installation = InstallationGraph(conflict)

    # Only C's change to y reached the stable state:
    crashed = State({"x": 0, "y": 1})
    print("crashed    :", crashed)
    prefixes = [
        sorted(op.name for op in prefix)
        for prefix in find_explaining_prefixes(installation, crashed, State())
    ]
    print("explaining prefixes:", prefixes)
    print("(x is unexposed under {C}: D blind-writes it before anything reads it)")
    assert ["C"] in prefixes


def running_example() -> None:
    banner("O, P, Q: installation graphs buy real flexibility (Figs 4-5)")
    O = assign("O", "x", Var("x") + 1)
    P = assign("P", "y", Var("x") + 1)
    Q = assign("Q", "x", Var("x") + 2)
    conflict = ConflictGraph([O, P, Q])
    installation = InstallationGraph(conflict)
    print("conflict edges    :", [(a.name, b.name, sorted(l)) for a, b, l in conflict.edges()])
    print("removed (wr-only) :", [(a.name, b.name) for a, b in installation.removed_edges()])
    print("installation prefixes and the states they determine:")
    for prefix in sorted(installation.prefixes(), key=lambda p: (len(p), sorted(op.name for op in p))):
        state = installation.determined_state(prefix, State())
        names = "{" + ",".join(sorted(op.name for op in prefix)) + "}"
        marker = "" if conflict.is_prefix(prefix) else "   <- invisible to conflict order"
        print(f"  {names:10s} x={state['x']} y={state['y']}{marker}")


def the_invariant() -> None:
    banner("The Recovery Invariant: the contract, checked mechanically")
    O = assign("O", "x", Var("x") + 1)
    P = assign("P", "y", Var("x") + 1)
    Q = assign("Q", "x", Var("x") + 2)
    installation = InstallationGraph(ConflictGraph([O, P, Q]))
    log = Log.from_operations([O, P, Q])

    print("\n-- a lawful configuration: checkpoint {P}, state (x=0, y=2)")
    report = check_recovery_invariant(
        installation, State({"x": 0, "y": 2}), log, State(),
        checkpoint={P}, verify_outcome=True,
    )
    print(report.describe())
    assert report.holds

    print("\n-- a lying checkpoint: {O} claimed installed, state still (0,0)")
    report = check_recovery_invariant(
        installation, State(), log, State(),
        checkpoint={O}, verify_outcome=True,
    )
    print(report.describe())
    assert not report.holds and report.recovered_correctly is False


if __name__ == "__main__":
    scenario_1()
    scenario_2()
    scenario_3()
    running_example()
    the_invariant()
    print("\nAll quickstart scenarios behaved exactly as the paper says.")
