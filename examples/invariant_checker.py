#!/usr/bin/env python3
"""Using the theory as a *recovery checker* for your own design.

Suppose you are designing a recovery scheme and want to know whether
your redo test and checkpointing discipline are sound.  The paper's
answer: they are sound iff they maintain the Recovery Invariant —
``operations(log) − redo_set`` must always induce an installation-graph
prefix that explains the stable state.

This example audits two homebrew schemes against the checker:

1. "skip-if-value-matches": a redo test that skips an operation when its
   written variables already hold the values it would write *against the
   current state*.  Plausible — and WRONG for non-idempotent operations:
   an increment evaluated against the crash state computes a different
   value than it did originally, so the test redoes installed work and
   double-applies it.
2. "LSN-per-variable": tag every variable with the LSN of its last
   installed writer and skip operations whose write-set tags are current
   — a miniature of §6.4's generalized LSN recovery.  Sound.

Run:  python examples/invariant_checker.py
"""

from repro.core.conflict import ConflictGraph
from repro.core.expr import Var, assign
from repro.core.installation import InstallationGraph
from repro.core.invariant import check_recovery_invariant
from repro.core.model import State
from repro.core.recovery import Log


def operations():
    # Two increments of x, then a reader deriving y from x.
    I1 = assign("I1", "x", Var("x") + 1)
    I2 = assign("I2", "x", Var("x") + 1)
    R = assign("R", "y", Var("x") * 10)
    return [I1, I2, R]


def audit(title, state, redo, installation, log, initial):
    report = check_recovery_invariant(
        installation, state, log, initial, redo=redo, verify_outcome=True
    )
    print(f"\n-- {title}")
    print(report.describe())
    return report


def main() -> None:
    ops = operations()
    conflict = ConflictGraph(ops)
    installation = InstallationGraph(conflict)
    initial = State()
    log = Log.from_operations(ops)
    final = conflict.final_state(initial)

    print("operations :", "; ".join(str(op) for op in ops))
    print("final state:", final)

    # The crash state both schemes face: I1 installed, nothing else.
    # This is a lawful state — {I1} is an installation prefix explaining it.
    crashed = State({"x": 1, "y": 0})
    print("crash state:", crashed, "(I1 installed — a perfectly legal state)")

    # ---- Scheme 1: skip when values already match -----------------------
    def value_match_redo(operation, state, log_, analysis):
        """Redo iff some written variable differs from what the operation
        would write against the *current* state."""
        written = operation.evaluate(state)
        return any(state[var] != value for var, value in written.items())

    report = audit(
        "scheme 1: skip-if-value-matches", crashed, value_match_redo,
        installation, log, initial,
    )
    print("=> evaluated against the crash state, I1 'would write' x=2, which")
    print("   differs from x=1, so the scheme redoes installed work and")
    print("   double-applies the increment.  The checker flags the violated")
    print(f"   invariant, and recovery indeed fails: holds={bool(report)}, "
          f"recovered={report.recovered_correctly}")
    assert not report.holds and report.recovered_correctly is False

    # ---- Scheme 2: LSN-per-variable -------------------------------------
    position = {op.name: index for index, op in enumerate(ops)}

    def make_lsn_redo(variable_lsns):
        def redo(operation, state, log_, analysis):
            own = position[operation.name]
            return any(
                variable_lsns.get(var, -1) < own for var in operation.write_set
            )
        return redo

    report = audit(
        "scheme 2: LSN-per-variable (x tagged with I1's LSN)",
        crashed, make_lsn_redo({"x": 0}), installation, log, initial,
    )
    print("=> sound: skips exactly the installed prefix, replays the rest:",
          bool(report.holds and report.recovered_correctly))
    assert report.holds and report.recovered_correctly

    # The same scheme with a tag that lies (claims I2 installed too):
    report = audit(
        "scheme 2 with a lying tag (x claims I2's LSN, state still x=1)",
        crashed, make_lsn_redo({"x": 1}), installation, log, initial,
    )
    print("=> the checker catches the lie before you ship it:",
          not report.holds and report.recovered_correctly is False)
    assert not report.holds and report.recovered_correctly is False


if __name__ == "__main__":
    main()
