#!/usr/bin/env python3
"""Watch a live server, kill -9 it, then read the crash off the disk.

The operational telemetry story, run for real:

1. start ``python -m repro serve --shards 2`` as a separate OS process
   over a durable deployment root — telemetry is on by default: per-op
   latency histograms, the ``health`` op, and a flight recorder in the
   root fed by the serve span and 1 Hz health heartbeats;
2. drive traffic over TCP, then watch it: ``stats`` must carry latency
   quantiles, ``health`` must report every shard's stable LSN, and
   ``python -m repro top --once`` must render a dashboard frame;
3. ``SIGKILL`` the server mid-life — no drain, no goodbye, the flight
   ring's last heartbeat is whatever the server last knew;
4. run ``python -m repro postmortem`` on the root and assert the
   narrative is all there: the serve span rendered INTERRUPTED, the
   final heartbeats, and a last stable LSN per shard read from the WAL
   itself — then cold-start the deployment and check the postmortem's
   LSNs against the recovered truth.

Run:  PYTHONPATH=src python examples/telemetry_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.server import KVClient  # noqa: E402
from repro.shard import ShardedDatabase  # noqa: E402
from repro.shard.sharded import read_manifest  # noqa: E402

N_SHARDS = 2
N_OPS = 80
ENV = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))


def start_server(root: str) -> tuple[subprocess.Popen, str, int]:
    """Launch ``serve --shards N`` and wait for its address line."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--shards", str(N_SHARDS), "--log-dir", root, "--port", "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=ENV,
    )
    line = ""
    while "listening on" not in line:
        line = proc.stdout.readline()
        assert line, "server died before binding"
        print(line.rstrip())
    host, port = line.split("listening on ", 1)[1].split(" ", 1)[0].rsplit(":", 1)
    return proc, host, int(port)


def cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=ENV,
    )


def main() -> int:
    root = tempfile.mkdtemp(prefix="telemetry-smoke-")
    proc, host, port = start_server(root)
    print(f"server pid {proc.pid} listening on {host}:{port}")
    try:
        with KVClient(host, port) as kv:
            for i in range(N_OPS):
                kv.put(f"key{i}", i)
            kv.sync()
            stats = kv.stats()
            health = kv.health()
        assert stats["latency"]["put"]["count"] == N_OPS, stats["latency"]
        assert stats["latency"]["put"]["p99"] > 0.0
        assert health["n_shards"] == N_SHARDS
        assert all(s["stable_lsn"] >= 0 for s in health["shards"])
        assert all(s["pipeline_depth"] == 0 for s in health["shards"])
        print(
            f"stats: put p50={stats['latency']['put']['p50'] * 1e6:.0f}us "
            f"p99={stats['latency']['put']['p99'] * 1e6:.0f}us over "
            f"{stats['latency']['put']['count']} requests"
        )
        print(
            "health: per-shard stable LSNs "
            f"{[s['stable_lsn'] for s in health['shards']]}"
        )

        top = cli("top", "--host", host, "--port", str(port), "--once")
        assert top.returncode == 0, top.stderr
        assert "repro top" in top.stdout
        print("top --once rendered a frame")

        time.sleep(2.2)  # let heartbeats observe the post-traffic state
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait()
    print("server killed (SIGKILL); reading the crash off the disk")
    time.sleep(0.1)

    post = cli("postmortem", root)
    assert post.returncode == 0, post.stderr
    print(post.stdout.rstrip())
    assert "server.serve" in post.stdout
    assert "[INTERRUPTED]" in post.stdout
    assert "server.heartbeat" in post.stdout
    assert "last stable LSN" in post.stdout

    # The postmortem's per-shard last stable LSN must match what a real
    # cold start recovers to — the ring tells the same story as the WAL.
    reborn = ShardedDatabase.cold_start(root, processes=0)
    try:
        manifest = read_manifest(root)
        for index, dirname in enumerate(manifest["shard_dirs"]):
            stable = reborn.shards[index].method.machine.log.stable_lsn
            needle = f"[{dirname}]"
            lsn_line = next(
                line for line in post.stdout.splitlines() if needle in line
            )
            assert f"last stable LSN {stable}" in lsn_line, (
                f"{dirname}: postmortem said {lsn_line!r}, "
                f"recovery landed at {stable}"
            )
        print(
            "postmortem LSNs match cold-start recovery for all "
            f"{N_SHARDS} shards (durable={reborn.durable_count()})"
        )
    finally:
        reborn.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
