#!/usr/bin/env python3
"""Kill -9 a live *sharded* server mid-load; prove acknowledged commits
survive a process-parallel cold start.

The deployment-scale crash story, run for real:

1. start ``python -m repro serve --shards 3`` as a separate OS process
   over a durable deployment root (``DEPLOY.json`` + one WAL directory
   per shard);
2. drive concurrent clients over TCP — the server routes every command
   to the key's owning shard; each client records exactly which values
   the server *acknowledged* as committed.  Clients arm ``retries`` so
   a connection hiccup is ridden out rather than aborting the drive;
3. ``SIGKILL`` the server — all three shards' pipelines and open
   commit windows die mid-flight, no drain, no goodbye;
4. cold-start the whole deployment from nothing but the root — first
   through the real ``ProcessPoolExecutor`` fan-out, then again inline
   — and assert the contract both ways: every acknowledged commit is
   present, and the two cold starts land byte-identical per shard
   (Theorem 3 makes the shards independent; Corollary 4 makes each one
   deterministic).

Run:  PYTHONPATH=src python examples/shard_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.server import KVClient  # noqa: E402
from repro.server.harness import client_key  # noqa: E402
from repro.shard import ShardedDatabase  # noqa: E402
from repro.sim.crash import canonical_state  # noqa: E402

N_SHARDS = 3
N_CLIENTS = 24
OPS_PER_CLIENT = 6
METHOD = "physiological"


def start_server(root: str) -> tuple[subprocess.Popen, str, int]:
    """Launch ``serve --shards N`` and wait for its address line."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            METHOD,
            "--shards",
            str(N_SHARDS),
            "--log-dir",
            root,
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline().strip()  # "sharded: N shards, ..."
    line = proc.stdout.readline().strip()  # "listening on host:port"
    print(banner)
    host, port = line.rsplit(" ", 1)[-1].rsplit(":", 1)
    return proc, host, int(port)


def drive_clients(host: str, port: int) -> dict[str, int]:
    """Concurrent retrying clients; returns only *acknowledged* writes."""
    acked: dict[str, int] = {}
    ack_lock = threading.Lock()
    errors: list[Exception] = []

    def one_client(client: int) -> None:
        try:
            with KVClient(host, port, retries=3, backoff=0.02) as kv:
                staged: dict[str, int] = {}
                for j in range(OPS_PER_CLIENT):
                    key = client_key(client, j)
                    value = client * 1000 + j
                    kv.put(key, value)
                    staged[key] = value
                    if (j + 1) % 2 == 0:
                        kv.commit()  # returns once the owning shards are stable
                        with ack_lock:
                            acked.update(staged)
                        staged.clear()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(i,)) for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return acked


def main() -> int:
    root = tempfile.mkdtemp(prefix="shard-smoke-")
    proc, host, port = start_server(root)
    print(f"server pid {proc.pid} listening on {host}:{port}")
    try:
        acked = drive_clients(host, port)
        ops = N_CLIENTS * OPS_PER_CLIENT
        print(f"drove {ops} ops from {N_CLIENTS} clients; "
              f"{len(acked)} acknowledged writes")
    finally:
        # The crash: every shard's pipeline dies mid-window.
        proc.send_signal(signal.SIGKILL)
        proc.wait()
    print("server killed (SIGKILL); cold-starting the deployment")
    time.sleep(0.1)  # let the kernel settle the killed process's files

    reborn = ShardedDatabase.cold_start(root)  # the real process pool
    report = reborn.cold_report
    print(
        f"process-parallel cold start: {len(report['per_shard'])} shards, "
        f"critical path {report['critical_path_s'] * 1e3:.1f} ms "
        f"(wall {report['wall_s'] * 1e3:.1f} ms)"
    )
    missing = {
        key: value
        for key, value in acked.items()
        if reborn.get(key) != value
    }
    assert not missing, f"acknowledged commits lost: {missing}"
    print(f"all {len(acked)} acknowledged writes recovered")

    again = ShardedDatabase.cold_start(root, processes=0)
    first = [canonical_state(shard) for shard in reborn.shards]
    second = [canonical_state(shard) for shard in again.shards]
    assert first == second, "two cold starts diverged"
    audit = again.theory_audit()
    assert audit, f"deployment audit failed: {audit.detail}"
    print(
        "cold start is deterministic: per-shard byte-identical states "
        f"(durable={again.durable_count()}), deployment audit holds"
    )
    reborn.close()
    again.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
