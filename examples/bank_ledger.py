#!/usr/bin/env python3
"""A crash-safe bank ledger, continuously audited against the theory.

Accounts are keys; deposits are ``add`` operations (read-modify-write —
the non-idempotent kind that breaks naive redo tests), and interest credits
are ``copyadd`` operations (read one key, write another — the kind that
creates cross-variable write-read edges).  The ledger runs on the
logical engine while :func:`repro.sim.audit.audit_instant` lifts its
stable log to the abstract model and checks the Recovery Invariant after
every transaction.

Then the machine crashes mid-day, recovers, and the books still balance.

Run:  python examples/bank_ledger.py
"""

from random import Random

from repro.engine import KVDatabase
from repro.sim.audit import audit_instant, installation_graph_of


def open_accounts(db, names):
    for name in names:
        db.execute(("put", name, 1_000))


def business_day(db, rng, names, n_transactions=40):
    """Deposits, withdrawals, and cross-account interest credits."""
    audits = []
    for _ in range(n_transactions):
        roll = rng.random()
        account = rng.choice(names)
        if roll < 0.5:
            db.execute(("add", account, rng.randrange(-200, 400)))
        elif roll < 0.8:
            db.execute(("put", account, rng.randrange(500, 5_000)))
        else:
            other = rng.choice(names)
            # credit `account` with other's balance-derived bonus
            db.execute(("copyadd", account, (other, rng.randrange(1, 50))))
        audits.append(audit_instant(db))
    return audits


def main() -> None:
    names = [f"acct-{c}" for c in "abcdef"]
    db = KVDatabase(
        method="logical",
        cache_capacity=4,
        commit_every=2,        # group commit
        checkpoint_every=15,   # periodic staging-area swings
    )
    rng = Random(2026)

    open_accounts(db, names)
    audits = business_day(db, rng, names)
    violations = [a for a in audits if not a.holds]
    print(f"transactions processed : {len(audits) + len(names)}")
    print(f"invariant audits       : {len(audits)}  violations: {len(violations)}")
    assert not violations

    graph = installation_graph_of(db)
    print(
        f"lifted installation graph: {len(graph)} operations, "
        f"{graph.dag.edge_count()} edges "
        f"({len(graph.removed_edges())} write-read edges removed)"
    )

    balances_before = {name: db.get(name) for name in names}
    print("\n-- power failure! --")
    db.crash_and_recover()
    durable = db.verify_against()
    print(f"recovered; {durable} transactions were durable")
    balances_after = {name: db.get(name) for name in names}

    lost = {
        name: (balances_before[name], balances_after[name])
        for name in names
        if balances_before[name] != balances_after[name]
    }
    if lost:
        print("balances rolled back to the last committed group:")
        for name, (before, after) in sorted(lost.items()):
            print(f"  {name}: {before} -> {after}")
    else:
        print("every balance survived (the crash hit a commit boundary)")

    # The books balance: the recovered state equals the oracle of the
    # durable prefix — verified above by verify_against(); and the
    # recovered ledger accepts new business.
    db.execute(("add", names[0], 1))
    db.commit()
    db.crash_and_recover()
    db.verify_against()
    print("post-recovery deposits survive their own crash: books balance.")


if __name__ == "__main__":
    main()
