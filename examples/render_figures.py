#!/usr/bin/env python3
"""Regenerate the paper's figures as Graphviz dot files.

Writes ``figures/figure4.dot`` (conflict state graph), ``figure5.dot``
(installation graph with the removed edge dashed), ``figure7.dot``
(write graph after collapsing the writers of x), and ``figure8.dot``
(the generalized-split write graph) next to this script.  Render with
``dot -Tpng figures/figure4.dot -o figure4.png`` if Graphviz is
installed; the .dot text itself is readable enough to diff against the
paper.

Run:  python examples/render_figures.py
"""

import pathlib

from repro.core.conflict import ConflictGraph
from repro.core.expr import Var, assign
from repro.core.installation import InstallationGraph
from repro.core.model import Operation, State
from repro.core.state_graph import StateGraph
from repro.core.write_graph import WriteGraph

FIGURES = pathlib.Path(__file__).parent / "figures"


def opq():
    return [
        assign("O", "x", Var("x") + 1),
        assign("P", "y", Var("x") + 1),
        assign("Q", "x", Var("x") + 2),
    ]


def figure4() -> str:
    conflict = ConflictGraph(opq())
    graph = StateGraph.conflict_state_graph(conflict, State())
    lines = ["digraph figure4 {", '  label="Figure 4: conflict state graph";']
    for name in ("O", "P", "Q"):
        writes = ", ".join(f"{k}={v}" for k, v in sorted(graph.writes(name).items()))
        lines.append(f'  {name} [shape=box label="{name}\\nwrites: {writes}"];')
    for a, b, labels in conflict.edges():
        lines.append(f'  {a.name} -> {b.name} [label="{",".join(sorted(labels))}"];')
    lines.append("}")
    return "\n".join(lines)


def figure5() -> str:
    conflict = ConflictGraph(opq())
    installation = InstallationGraph(conflict)
    lines = [
        "digraph figure5 {",
        '  label="Figure 5: installation graph (dashed = removed wr edge)";',
    ]
    for name in ("O", "P", "Q"):
        lines.append(f"  {name} [shape=box];")
    kept = {(a, b) for a, b, _ in installation.dag.edges()}
    for a, b, labels in conflict.edges():
        style = "solid" if (a.name, b.name) in kept else "dashed"
        lines.append(
            f'  {a.name} -> {b.name} '
            f'[style={style} label="{",".join(sorted(labels))}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def figure7() -> str:
    wg = WriteGraph(InstallationGraph(ConflictGraph(opq())), State())
    wg.collapse(["O", "Q"], new_id="OQ")
    lines = [
        "digraph figure7 {",
        '  label="Figure 7: write graph, writers of x collapsed";',
    ]
    for node in wg.nodes():
        ops = ",".join(sorted(op.name for op in node.ops))
        writes = ", ".join(f"{k}={v}" for k, v in sorted(node.writes.items()))
        lines.append(
            f'  "{node.node_id}" [shape=box label="{{{ops}}}\\nwrites: {writes}"];'
        )
    for a, b, _ in wg.dag.edges():
        lines.append(f'  "{a}" -> "{b}";')
    lines.append("}")
    return "\n".join(lines)


def figure8() -> str:
    # P reads old page x and writes new page y; Q overwrites x.
    P = Operation.from_assignments("P", {"y": Var("x") * 1})
    Q = Operation.from_assignments("Q", {"x": Var("x") * 0 + 7})
    wg = WriteGraph(InstallationGraph(ConflictGraph([P, Q])), State({"x": 10}))
    lines = [
        "digraph figure8 {",
        '  label="Figure 8: generalized B-tree split write graph\\n'
        '(P: read old page, write new page; Q: truncate old page)";',
    ]
    for node in wg.nodes():
        ops = ",".join(sorted(op.name for op in node.ops))
        lines.append(f'  "{node.node_id}" [shape=box label="{{{ops}}}"];')
    for a, b, _ in wg.dag.edges():
        lines.append(f'  "{a}" -> "{b}" [label="careful write order"];')
    lines.append("}")
    return "\n".join(lines)


def main() -> None:
    FIGURES.mkdir(exist_ok=True)
    for name, render in [
        ("figure4", figure4),
        ("figure5", figure5),
        ("figure7", figure7),
        ("figure8", figure8),
    ]:
        path = FIGURES / f"{name}.dot"
        path.write_text(render() + "\n")
        print(f"wrote {path}")
    print("\nrender with: dot -Tpng examples/figures/figure4.dot -o figure4.png")


if __name__ == "__main__":
    main()
