#!/usr/bin/env python3
"""Crash and recover a key-value database under all three §6 methods.

Runs the same workload on logical (System R-style), physical, and
physiological engines; crashes each at an awkward moment; recovers; and
verifies the durability contract — the recovered state equals exactly
the committed prefix of the operation stream.  Then sweeps every crash
point to show there is no bad instant.

Run:  python examples/crash_recovery_demo.py
"""

from repro.engine import KVDatabase
from repro.sim import crash_sweep
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload

METHODS = ["logical", "physical", "physiological"]


def one_dramatic_crash() -> None:
    print("=== One crash, three recovery disciplines ===")
    stream = generate_kv_workload(
        9, KVWorkloadSpec(n_operations=80, n_keys=16, put_ratio=0.8)
    )
    for method in METHODS:
        db = KVDatabase(
            method=method,
            cache_capacity=4,        # tiny cache: constant evictions
            commit_every=3,          # group commit: a tail can be lost
            checkpoint_every=20,
        )
        db.run(stream)
        db.crash()                   # cache gone, log tail gone, disk intact
        db.recover()
        durable = db.verify_against()
        report = db.report()
        issued = len(db.applied)
        print(
            f"  {method:14s} issued={issued:3d} durable={durable:3d} "
            f"lost_tail={issued - durable}  "
            f"log={report['log_bytes']:5d}B pages={report['disk_page_writes']:3d} "
            f"replayed={report['method_records_replayed']:3d} "
            f"skipped={report['method_records_skipped']:3d}"
        )
    print("  (every method recovers exactly its durable prefix; the methods")
    print("   differ in *how* — staging swings, blind re-installs, LSN tests)")


def sweep_every_instant() -> None:
    print("\n=== Crash at EVERY instant, recover, continue, verify ===")
    stream = generate_kv_workload(10, KVWorkloadSpec(n_operations=50, n_keys=10))
    for method in METHODS:
        make = lambda m=method: KVDatabase(
            method=m, cache_capacity=4, checkpoint_every=12
        )
        results = crash_sweep(make, stream)
        failures = [r for r in results if not r.recovered]
        status = "all recovered" if not failures else f"{len(failures)} FAILURES"
        print(f"  {method:14s} {len(results)} crash points: {status}")
        assert not failures


def recovery_is_restartable() -> None:
    print("\n=== Recovery survives being crashed too ===")
    stream = generate_kv_workload(11, KVWorkloadSpec(n_operations=40, n_keys=8))
    db = KVDatabase(method="physiological", cache_capacity=4)
    db.run(stream)
    for round_number in range(3):
        db.crash()
        db.recover()   # a crash during recovery just means recovering again
    durable = db.verify_against()
    print(f"  three crash/recover rounds, still exactly {durable} durable ops")


if __name__ == "__main__":
    one_dramatic_crash()
    sweep_every_instant()
    recovery_is_restartable()
    print("\nThe recovery invariant held at every instant, for every method.")
