#!/usr/bin/env python3
"""Kill -9 a live server mid-load; prove the acknowledged commits survive.

The end-to-end crash story for the server front-end, run for real:

1. start ``python -m repro serve`` as a separate OS process with a
   durable log directory;
2. drive concurrent clients over TCP — each puts into its own keyspace
   and records exactly which values the server *acknowledged* as
   committed (the reply to ``commit`` is the stable LSN);
3. ``SIGKILL`` the server process — no atexit, no drain, no goodbye;
   the group-commit pipeline's open window and the staging buffer die
   with it;
4. cold-start a fresh database from nothing but the segment files and
   assert the durability contract both ways: every acknowledged commit
   is present, and a *second* cold start lands byte-identical to the
   first (recovery is deterministic — Corollary 4 does not care that a
   thousand threads wrote the log).

Run:  PYTHONPATH=src python examples/server_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import KVDatabase  # noqa: E402
from repro.server import KVClient  # noqa: E402
from repro.server.harness import client_key  # noqa: E402
from repro.sim.crash import canonical_state  # noqa: E402

N_CLIENTS = 50
OPS_PER_CLIENT = 4  # 50 x 4 = 200 concurrent client operations
METHOD = "physiological"


def start_server(log_dir: str) -> tuple[subprocess.Popen, str, int]:
    """Launch ``python -m repro serve`` and wait for its address line."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            METHOD,
            "--log-dir",
            log_dir,
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()  # "listening on host:port"
    host, port = line.rsplit(" ", 1)[-1].rsplit(":", 1)
    return proc, host, int(port)


def drive_clients(host: str, port: int) -> dict[str, int]:
    """Concurrent clients; returns only the *acknowledged* writes."""
    acked: dict[str, int] = {}
    ack_lock = threading.Lock()
    errors: list[Exception] = []

    def one_client(client: int) -> None:
        try:
            with KVClient(host, port) as kv:
                staged: dict[str, int] = {}
                for j in range(OPS_PER_CLIENT):
                    key = client_key(client, j)
                    value = client * 1000 + j
                    kv.put(key, value)
                    staged[key] = value
                    if (j + 1) % 2 == 0:
                        kv.commit()  # returns only once stable
                        with ack_lock:
                            acked.update(staged)
                        staged.clear()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(i,)) for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return acked


def main() -> int:
    log_dir = tempfile.mkdtemp(prefix="server-smoke-")
    proc, host, port = start_server(log_dir)
    print(f"server pid {proc.pid} listening on {host}:{port}")
    try:
        acked = drive_clients(host, port)
        ops = N_CLIENTS * OPS_PER_CLIENT
        print(f"drove {ops} ops from {N_CLIENTS} clients; "
              f"{len(acked)} acknowledged writes")
    finally:
        # The crash: no shutdown handshake, no pipeline drain.
        proc.send_signal(signal.SIGKILL)
        proc.wait()
    print("server killed (SIGKILL); cold-starting from the segment files")
    time.sleep(0.1)  # let the kernel settle the killed process's files

    reborn = KVDatabase.cold_start(log_dir, method=METHOD)
    missing = {
        key: value
        for key, value in acked.items()
        if reborn.get(key) != value
    }
    assert not missing, f"acknowledged commits lost: {missing}"
    print(f"all {len(acked)} acknowledged writes recovered")

    again = KVDatabase.cold_start(log_dir, method=METHOD)
    first, second = canonical_state(reborn), canonical_state(again)
    assert first == second, "two cold starts diverged"
    print(
        f"cold start is deterministic: byte-identical states "
        f"(durable={first['durable']}, stable_lsn={first['stable_lsn']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
