#!/usr/bin/env python3
"""Generalized LSN-based recovery and the B-tree split (§6.4, Figure 8).

Inserts the same key stream into two B-trees — one logging splits
conventionally (physiological: the moved half is physically imaged into
the log), one with the paper's generalized multi-page operation (the
split record just says "read the old page, write the new page") — and
compares log volume; then demonstrates that the generalized discipline's
*careful write ordering* (new page to disk before the old page is
overwritten) is exactly what keeps it crash-safe.

Run:  python examples/btree_split_logging.py
"""

from repro.btree import BTree
from repro.cache import CachePolicyError
from repro.methods.base import Machine
from repro.workloads.btree_load import BTreeWorkloadSpec, generate_btree_keys


def build(discipline: str, pairs, unsafe: bool = False) -> BTree:
    tree = BTree(
        Machine(cache_capacity=64),
        fanout=6,
        split_discipline=discipline,
        unsafe_split_flush=unsafe,
    )
    for key, payload in pairs:
        tree.insert(key, payload)
    tree.commit()
    return tree


def compare_log_volume() -> None:
    print("=== Log volume: conventional vs generalized split logging ===")
    pairs = generate_btree_keys(7, BTreeWorkloadSpec(n_keys=200, payload_bytes=128))
    conventional = build("physiological", pairs)
    generalized = build("generalized", pairs)
    assert conventional.items() == generalized.items() == dict(pairs)
    print(f"keys inserted        : {len(pairs)}")
    print(f"leaf splits          : {generalized.splits}")
    print(f"physiological log    : {conventional.log_bytes():>8} bytes")
    print(f"generalized log      : {generalized.log_bytes():>8} bytes")
    ratio = conventional.log_bytes() / generalized.log_bytes()
    print(f"reduction            : {ratio:.2f}x "
          "(the moved half never enters the log)")


def show_careful_write_order() -> None:
    print("\n=== The careful write ordering the theory demands ===")
    tree = build("generalized", [(k, b"v") for k in range(8)])
    constraint = tree.pool.pending_constraints()[0]
    print(f"after a split the cache holds a write-graph edge: "
          f"flush {constraint.first_page!r} before {constraint.then_page!r}")
    try:
        tree.pool.flush_page(constraint.then_page)
    except CachePolicyError as exc:
        print(f"flushing the old page first is refused: {exc}")
    tree.pool.flush_page(constraint.first_page)
    tree.pool.flush_page(constraint.then_page)
    print("flushing new-then-old succeeds; the stable state stays explainable.")


def show_ablation() -> None:
    print("\n=== What happens if the ordering is violated ===")
    pairs = [(k, f"row-{k}".encode()) for k in range(24)]

    safe = build("generalized", pairs, unsafe=False)
    safe.crash()
    safe.recover()
    print(f"order honored : recovered {len(safe.items())}/{len(pairs)} keys")

    unsafe = build("generalized", pairs, unsafe=True)
    unsafe.crash()
    unsafe.recover()
    lost = len(pairs) - len(unsafe.items())
    print(f"order VIOLATED: recovered {len(unsafe.items())}/{len(pairs)} keys "
          f"({lost} keys silently destroyed)")
    print("the split-move record can only rebuild the new page from the")
    print("pre-truncation old page; flush the truncation first and the")
    print("moved half is gone from both the state and the log.")


if __name__ == "__main__":
    compare_log_volume()
    show_careful_write_order()
    show_ablation()
