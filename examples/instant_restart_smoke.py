#!/usr/bin/env python3
"""Kill -9 a live sharded server, restart it with ``--lazy-restart``,
and read every acknowledged commit back *before* the replay backlog has
drained.

The instant-restart story, run for real over TCP:

1. start ``python -m repro serve --shards 3`` over a durable deployment
   root and drive concurrent clients, recording exactly which writes
   the server *acknowledged* as committed;
2. ``SIGKILL`` the server mid-flight — no drain, no goodbye;
3. restart it with ``--lazy-restart``: the server binds after analysis
   alone (per-page redo index, no replay), measured here as the wall
   time from process spawn to the first answered request;
4. immediately — while the background replay may still be running —
   read back every acknowledged write over the wire and assert each
   one answers with the committed value (the on-demand fault path
   replays exactly the pages the reads touch);
5. poll ``health`` until the deployment reports ``ready`` with a zero
   backlog, proving the background drain completes on its own.

Run:  PYTHONPATH=src python examples/instant_restart_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.server import KVClient  # noqa: E402
from repro.server.harness import client_key  # noqa: E402

N_SHARDS = 3
N_CLIENTS = 16
OPS_PER_CLIENT = 8
METHOD = "physiological"


def start_server(root: str, *extra: str) -> tuple[subprocess.Popen, str, int]:
    """Launch the server; returns (process, host, port) once listening."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            METHOD,
            "--log-dir",
            root,
            "--port",
            "0",
            *extra,
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    for line in proc.stdout:
        line = line.strip()
        print(f"  [server] {line}")
        if line.startswith("listening on"):
            host, port = line.split()[2].rsplit(":", 1)
            return proc, host, int(port)
    raise RuntimeError("server exited before binding")


def drive_clients(host: str, port: int) -> dict[str, int]:
    """Concurrent committing clients; returns only *acknowledged* writes."""
    acked: dict[str, int] = {}
    ack_lock = threading.Lock()
    errors: list[Exception] = []

    def one_client(client: int) -> None:
        try:
            with KVClient(host, port, retries=3, backoff=0.02) as kv:
                staged: dict[str, int] = {}
                for j in range(OPS_PER_CLIENT):
                    key = client_key(client, j)
                    value = client * 1000 + j
                    kv.put(key, value)
                    staged[key] = value
                    if (j + 1) % 2 == 0:
                        kv.commit()
                        with ack_lock:
                            acked.update(staged)
                        staged.clear()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(i,)) for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return acked


def main() -> int:
    root = tempfile.mkdtemp(prefix="instant-restart-")
    proc, host, port = start_server(root, "--shards", str(N_SHARDS))
    try:
        acked = drive_clients(host, port)
        print(
            f"drove {N_CLIENTS * OPS_PER_CLIENT} ops; "
            f"{len(acked)} acknowledged writes"
        )
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait()
    print("server killed (SIGKILL); restarting with --lazy-restart")
    time.sleep(0.1)

    spawned = time.perf_counter()
    proc, host, port = start_server(root, "--lazy-restart")
    try:
        with KVClient(host, port) as kv:
            first_key = next(iter(acked))
            value = kv.get(first_key)
            first_request_s = time.perf_counter() - spawned
            assert value == acked[first_key], (
                f"first request wrong: {first_key}={value!r}, "
                f"expected {acked[first_key]}"
            )
            health = kv.health()
            state = health.get("state", "?")
            backlog = health.get("replay_backlog_total", 0)
            print(
                f"first request answered {first_request_s * 1e3:.0f} ms "
                f"after spawn (interpreter start included); health: "
                f"state={state} backlog={backlog}"
            )
            # Every acknowledged commit, readable mid-recovery: these
            # reads race the background drain on purpose — the fault
            # path must make each one correct regardless.
            missing = {
                key: value
                for key, value in acked.items()
                if kv.get(key) != value
            }
            assert not missing, f"acknowledged commits lost: {missing}"
            print(
                f"all {len(acked)} acknowledged writes readable during "
                f"recovery"
            )
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                health = kv.health()
                if (
                    health.get("state") == "ready"
                    and not health.get("replay_backlog_total", 0)
                ):
                    break
                time.sleep(0.05)
            assert health.get("state") == "ready", f"drain never finished: {health}"
            shard_states = [
                (s.get("state"), s.get("replay_backlog"))
                for s in health.get("shards", [])
            ]
            print(f"background replay drained; per-shard {shard_states}")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait()
    print("instant-restart smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
