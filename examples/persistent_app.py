#!/usr/bin/env python3
"""Persistent applications beyond the database (§7, reference [10]).

An ordinary deterministic program — here a little order-processing
workflow — is made crash-survivable without writing any recovery code
of its own: its *inputs* are logged, its state is periodically
snapshotted by a shadow-store pointer swing, and recovery replays the
durable input suffix through the program's own transition function.

Run:  python examples/persistent_app.py
"""

from repro.appstate import PersistentApplication


def order_system(state, event):
    """A pure transition function: the whole application."""
    kind, payload = event
    orders = dict(state["orders"])
    revenue = state["revenue"]
    if kind == "place":
        order_id, amount = payload
        orders[order_id] = {"amount": amount, "status": "open"}
    elif kind == "ship":
        order_id = payload
        order = dict(orders[order_id])
        order["status"] = "shipped"
        orders[order_id] = order
        revenue += order["amount"]
    elif kind == "cancel":
        orders.pop(payload, None)
    else:
        raise ValueError(f"unknown event {kind!r}")
    return {"orders": orders, "revenue": revenue}


def main() -> None:
    app = PersistentApplication(
        order_system,
        initial_state={"orders": {}, "revenue": 0},
        checkpoint_every=5,
    )

    day_one = [
        ("place", ("o-1", 120)),
        ("place", ("o-2", 75)),
        ("ship", "o-1"),
        ("place", ("o-3", 300)),
        ("cancel", "o-2"),
        ("ship", "o-3"),
        ("place", ("o-4", 45)),
    ]
    for event in day_one:
        app.post(event)
    app.commit()
    print(f"processed {app.events_posted} events; "
          f"revenue = {app.state['revenue']}")

    app.post(("place", ("o-5", 999)))   # never committed
    print("posted o-5 (not yet committed)... and the power fails.")
    app.crash()
    app.recover()
    print(f"recovered: revenue = {app.state['revenue']}, "
          f"orders = {sorted(app.state['orders'])}")
    print(f"replayed only {app.events_replayed} events "
          f"(the snapshot covered the rest)")
    assert "o-5" not in app.state["orders"]      # uncommitted input lost
    assert app.state["revenue"] == 420            # 120 + 300

    # The recovered application simply keeps going.
    app.post(("ship", "o-4"))
    app.commit()
    app.crash()
    app.recover()
    assert app.state["revenue"] == 465
    print(f"post-recovery shipment survived its own crash: "
          f"revenue = {app.state['revenue']}")


if __name__ == "__main__":
    main()
