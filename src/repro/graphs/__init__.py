"""Directed-acyclic-graph kernel used by every graph in the theory.

The paper works with four kinds of graphs — conflict graphs, installation
graphs, state graphs, and write graphs — and all of them share the same
substrate: a finite DAG over distinct node identifiers with a handful of
order-theoretic notions (predecessors, prefixes, minimal nodes, linear
extensions).  This package provides that substrate once, so the theory
modules in :mod:`repro.core` only add the labels each graph kind needs.

Public surface:

- :class:`~repro.graphs.dag.Dag` — the graph type.
- :func:`~repro.graphs.algorithms.topological_sort`
- :func:`~repro.graphs.algorithms.all_topological_sorts`
- :func:`~repro.graphs.algorithms.all_prefixes`
- :func:`~repro.graphs.algorithms.count_prefixes`
- :func:`~repro.graphs.algorithms.is_linear_extension`
- :func:`~repro.graphs.algorithms.transitive_reduction`
"""

from repro.graphs.dag import CycleError, Dag
from repro.graphs.algorithms import (
    all_prefixes,
    all_topological_sorts,
    count_prefixes,
    is_linear_extension,
    topological_sort,
    transitive_reduction,
)

__all__ = [
    "CycleError",
    "Dag",
    "all_prefixes",
    "all_topological_sorts",
    "count_prefixes",
    "is_linear_extension",
    "topological_sort",
    "transitive_reduction",
]
