"""A small, explicit DAG implementation.

Nodes are arbitrary hashable identifiers.  Edges may carry a set of string
labels (the conflict graph uses labels ``"ww"``, ``"wr"``, ``"rw"`` to record
which conflicts produced an edge).  The class maintains adjacency in both
directions so that predecessor queries — the workhorse of prefix reasoning —
are as cheap as successor queries.

Terminology follows Section 2.1 of the paper:

- the *predecessors* of a node ``n`` are all nodes with a path to ``n``;
- a *prefix* is a node set closed under predecessors (and the subgraph it
  induces).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Hashable, Iterable, Iterator


class CycleError(ValueError):
    """Raised when an operation would create or detect a cycle."""


class Dag:
    """A directed acyclic graph over hashable node identifiers.

    Acyclicity is enforced eagerly: :meth:`add_edge` raises
    :class:`CycleError` if the new edge would close a cycle.  This matches
    the paper's graphs, which are acyclic by construction, and matches the
    side condition of the write graph's *Add an edge* operation.
    """

    # Reachability closures are memoized per node; the cache is dropped
    # wholesale whenever an edge changes (bounded, so a huge graph cannot
    # pin O(N^2) closure memory).
    _REACH_CACHE_LIMIT = 4096

    def __init__(self, nodes: Iterable[Hashable] = (), edges: Iterable[tuple] = ()):
        self._succ: dict[Hashable, dict[Hashable, set[str]]] = {}
        self._pred: dict[Hashable, dict[Hashable, set[str]]] = {}
        self._succ_closure: dict[Hashable, frozenset] = {}
        self._pred_closure: dict[Hashable, frozenset] = {}
        for node in nodes:
            self.add_node(node)
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            else:
                self.add_edge(edge[0], edge[1], labels=edge[2])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Add ``node`` if not already present."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] = (),
        check_acyclic: bool = True,
    ) -> None:
        """Add an edge from ``source`` to ``target``.

        Missing endpoints are added.  If the edge already exists, ``labels``
        are merged into its label set — a pure label merge touches neither
        the predecessor map nor the reachability cache.  Raises
        :class:`CycleError` if the edge would create a cycle (including a
        self-loop).  ``check_acyclic=False`` is the O(1) append fast path
        for constructions that are acyclic by design (graphs built from a
        generating sequence only ever add edges into the newest node).
        """
        if source == target:
            raise CycleError(f"self-loop on {source!r}")
        src_adjacent = self._succ.get(source)
        if src_adjacent is None:
            self.add_node(source)
            src_adjacent = self._succ[source]
        label_set = src_adjacent.get(target)
        if label_set is not None:
            label_set.update(labels)
            return
        if target not in self._succ:
            self.add_node(target)
        if check_acyclic and self.has_path(target, source):
            raise CycleError(f"edge {source!r} -> {target!r} would create a cycle")
        label_set = src_adjacent[target] = set(labels)
        self._pred[target][source] = label_set
        self._invalidate_reachability()

    def remove_edge(self, source: Hashable, target: Hashable) -> None:
        """Remove the edge from ``source`` to ``target`` (KeyError if absent)."""
        del self._succ[source][target]
        del self._pred[target][source]
        self._invalidate_reachability()

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and every edge incident to it."""
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        del self._succ[node]
        del self._pred[node]

    def copy(self) -> "Dag":
        """Return an independent copy (labels are copied, not shared)."""
        clone = Dag()
        for node in self._succ:
            clone.add_node(node)
        for source, target, labels in self.edges():
            clone.add_edge(source, target, labels=labels, check_acyclic=False)
        return clone

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succ)

    def nodes(self) -> list[Hashable]:
        """All nodes, in insertion order."""
        return list(self._succ)

    def edges(self) -> list[tuple[Hashable, Hashable, set[str]]]:
        """All edges as ``(source, target, labels)`` triples."""
        return [
            (source, target, set(labels))
            for source, targets in self._succ.items()
            for target, labels in targets.items()
        ]

    def edge_count(self) -> int:
        """Total number of edges."""
        return sum(len(targets) for targets in self._succ.values())

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        """Is there a direct edge from ``source`` to ``target``?"""
        return source in self._succ and target in self._succ[source]

    def edge_labels(self, source: Hashable, target: Hashable) -> set[str]:
        """Labels on the edge ``source -> target`` (KeyError if absent)."""
        return set(self._succ[source][target])

    def direct_successors(self, node: Hashable) -> set[Hashable]:
        """Nodes one edge after ``node``."""
        return set(self._succ[node])

    def direct_predecessors(self, node: Hashable) -> set[Hashable]:
        """Nodes one edge before ``node``."""
        return set(self._pred[node])

    def in_degree(self, node: Hashable) -> int:
        """Number of direct predecessors."""
        return len(self._pred[node])

    def out_degree(self, node: Hashable) -> int:
        """Number of direct successors."""
        return len(self._succ[node])

    # ------------------------------------------------------------------
    # Reachability and order
    # ------------------------------------------------------------------

    def _invalidate_reachability(self) -> None:
        if self._succ_closure:
            self._succ_closure.clear()
        if self._pred_closure:
            self._pred_closure.clear()

    def has_path(self, source: Hashable, target: Hashable) -> bool:
        """True iff there is a directed path (length >= 0) from source to target."""
        if source not in self._succ or target not in self._succ:
            return False
        if source == target:
            return True
        cached = self._succ_closure.get(source)
        if cached is None:
            cached = self._pred_closure.get(target)
            if cached is not None:
                return source in cached
        else:
            return target in cached
        seen = {source}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for nxt in self._succ[node]:
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def predecessors(self, node: Hashable) -> set[Hashable]:
        """All nodes with a path *to* ``node`` (excluding ``node`` itself)."""
        return set(self._closure(node, self._pred, self._pred_closure))

    def successors(self, node: Hashable) -> set[Hashable]:
        """All nodes reachable *from* ``node`` (excluding ``node`` itself)."""
        return set(self._closure(node, self._succ, self._succ_closure))

    def _closure(
        self, node: Hashable, adjacency: dict, cache: dict[Hashable, frozenset]
    ) -> frozenset:
        """The reachability closure of ``node``, memoized until the edge set
        changes (the cached frontier behind minimal-node and prefix checks
        on append-only graphs)."""
        cached = cache.get(node)
        if cached is not None:
            return cached
        if node not in adjacency:
            return frozenset()
        seen: set[Hashable] = set()
        frontier = deque([node])
        while frontier:
            current = frontier.popleft()
            for nxt in adjacency[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        seen.discard(node)
        result = frozenset(seen)
        if len(cache) >= self._REACH_CACHE_LIMIT:
            cache.clear()
        cache[node] = result
        return result

    def ordered_before(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` precedes ``b`` in the partial order (strict)."""
        return a != b and self.has_path(a, b)

    def comparable(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` are ordered one way or the other."""
        return self.ordered_before(a, b) or self.ordered_before(b, a)

    # ------------------------------------------------------------------
    # Prefixes and minimal elements
    # ------------------------------------------------------------------

    def is_prefix(self, nodes: Iterable[Hashable]) -> bool:
        """True iff ``nodes`` is closed under predecessors.

        This is the paper's definition of a prefix: if a node is in the
        prefix then all of its predecessors are too.  Only direct
        predecessors need checking because closure is transitive.
        """
        node_set = set(nodes)
        if not node_set <= set(self._succ):
            return False
        return all(
            source in node_set
            for node in node_set
            for source in self._pred[node]
        )

    def prefix_closure(self, nodes: Iterable[Hashable]) -> set[Hashable]:
        """The smallest prefix containing ``nodes``."""
        closure: set[Hashable] = set()
        frontier = deque(nodes)
        while frontier:
            node = frontier.popleft()
            if node in closure:
                continue
            closure.add(node)
            frontier.extend(self._pred[node])
        return closure

    def minimal_nodes(self, within: Iterable[Hashable] | None = None) -> set[Hashable]:
        """Minimal nodes of the sub-partial-order induced by ``within``.

        With ``within=None``, the graph's sources.  Otherwise the nodes of
        ``within`` with no predecessor *path from another member of
        ``within``* — the paper's "minimal such operation" in the exposed-
        variable definition and the "minimal uninstalled operation" in the
        recovery loop.
        """
        if within is None:
            return {node for node, sources in self._pred.items() if not sources}
        members = set(within)
        return {
            node
            for node in members
            if members.isdisjoint(self._closure(node, self._pred, self._pred_closure))
        }

    def maximal_nodes(self, within: Iterable[Hashable] | None = None) -> set[Hashable]:
        """Dual of :meth:`minimal_nodes`."""
        if within is None:
            return {node for node, targets in self._succ.items() if not targets}
        members = set(within)
        return {
            node
            for node in members
            if members.isdisjoint(self._closure(node, self._succ, self._succ_closure))
        }

    def induced_subgraph(self, nodes: Iterable[Hashable]) -> "Dag":
        """The subgraph induced by ``nodes`` (edges with both ends inside)."""
        keep = set(nodes)
        sub = Dag()
        for node in self._succ:
            if node in keep:
                sub.add_node(node)
        for source, target, labels in self.edges():
            if source in keep and target in keep:
                sub.add_edge(source, target, labels=labels, check_acyclic=False)
        return sub

    def filter_edges(
        self, keep: Callable[[Hashable, Hashable, set[str]], bool]
    ) -> "Dag":
        """A copy retaining only edges for which ``keep(source, target, labels)``."""
        out = Dag()
        for node in self._succ:
            out.add_node(node)
        for source, target, labels in self.edges():
            if keep(source, target, labels):
                out.add_edge(source, target, labels=labels, check_acyclic=False)
        return out

    # ------------------------------------------------------------------
    # Equality / display
    # ------------------------------------------------------------------

    def same_structure(self, other: "Dag", with_labels: bool = False) -> bool:
        """Structural equality on nodes and edges (optionally labels too)."""
        if set(self._succ) != set(other._succ):
            return False
        for source, targets in self._succ.items():
            if set(targets) != set(other._succ[source]):
                return False
            if with_labels:
                for target, labels in targets.items():
                    if labels != other._succ[source][target]:
                        return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dag(nodes={len(self)}, edges={self.edge_count()})"

    def to_dot(self, name: str = "dag", label: Callable[[Any], str] = str) -> str:
        """Render as Graphviz dot source (for documentation / debugging)."""
        lines = [f"digraph {name} {{"]
        for node in self._succ:
            lines.append(f'  "{label(node)}";')
        for source, target, labels in self.edges():
            suffix = f' [label="{",".join(sorted(labels))}"]' if labels else ""
            lines.append(f'  "{label(source)}" -> "{label(target)}"{suffix};')
        lines.append("}")
        return "\n".join(lines)
