"""Order-theoretic algorithms on :class:`~repro.graphs.dag.Dag`.

These are the combinatorial tools the theory modules lean on:

- *linear extensions* (topological orders) model "any total ordering of the
  operations labeling a conflict graph" (Lemma 1) and "replay in conflict
  graph order" (Theorem 3);
- *prefix enumeration / counting* measures the flexibility a graph grants
  the state-update process (experiment E7 compares conflict-graph and
  installation-graph prefix counts).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from repro.graphs.dag import CycleError, Dag


def topological_sort(dag: Dag, tie_break: bool = True) -> list[Hashable]:
    """One linear extension of ``dag`` (Kahn's algorithm).

    With ``tie_break=True`` ready nodes are taken in insertion order, making
    the result deterministic; insertion order is execution order for graphs
    generated from operation sequences, so the returned order is then the
    original sequence whenever that sequence is a linear extension.
    """
    in_degree = {node: dag.in_degree(node) for node in dag}
    ready = [node for node in dag if in_degree[node] == 0]
    order: list[Hashable] = []
    while ready:
        node = ready.pop(0) if tie_break else ready.pop()
        order.append(node)
        for target in dag.direct_successors(node):
            in_degree[target] -= 1
            if in_degree[target] == 0:
                ready.append(target)
    if len(order) != len(dag):
        raise CycleError("graph has a cycle; no topological order exists")
    return order


def is_linear_extension(dag: Dag, sequence: Sequence[Hashable]) -> bool:
    """True iff ``sequence`` is a total order of all nodes respecting the DAG."""
    if len(sequence) != len(dag) or set(sequence) != set(dag.nodes()):
        return False
    position = {node: index for index, node in enumerate(sequence)}
    return all(
        position[source] < position[target]
        for source, target, _ in dag.edges()
    )


def all_topological_sorts(dag: Dag, limit: int | None = None) -> Iterator[list[Hashable]]:
    """Yield every linear extension of ``dag`` (optionally at most ``limit``).

    Classic backtracking enumeration; exponential in general, so callers
    pass ``limit`` or keep graphs small (tests and the worked figures do).
    """
    in_degree = {node: dag.in_degree(node) for node in dag}
    order: list[Hashable] = []
    emitted = 0

    def backtrack() -> Iterator[list[Hashable]]:
        nonlocal emitted
        if limit is not None and emitted >= limit:
            return
        ready = [node for node in dag if in_degree[node] == 0 and node not in taken]
        if not ready:
            if len(order) == len(dag):
                emitted += 1
                yield list(order)
            return
        for node in ready:
            taken.add(node)
            order.append(node)
            for target in dag.direct_successors(node):
                in_degree[target] -= 1
            yield from backtrack()
            for target in dag.direct_successors(node):
                in_degree[target] += 1
            order.pop()
            taken.discard(node)
            if limit is not None and emitted >= limit:
                return

    taken: set[Hashable] = set()
    yield from backtrack()


def all_prefixes(dag: Dag, limit: int | None = None) -> Iterator[frozenset]:
    """Yield every prefix (down-set) of ``dag`` as a frozenset of nodes.

    Enumerates antichain-by-antichain: a prefix is extended by any minimal
    node of its complement.  The empty prefix is always yielded first.
    Exponential in general (the number of down-sets of an antichain of n
    nodes is 2^n), so callers pass ``limit`` for large graphs.
    """
    seen: set[frozenset] = set()
    frontier = [frozenset()]
    emitted = 0
    while frontier:
        prefix = frontier.pop()
        if prefix in seen:
            continue
        seen.add(prefix)
        yield prefix
        emitted += 1
        if limit is not None and emitted >= limit:
            return
        remaining = set(dag.nodes()) - prefix
        for node in dag.minimal_nodes(remaining):
            extended = prefix | {node}
            if extended not in seen:
                frontier.append(extended)


def count_prefixes(dag: Dag) -> int:
    """The exact number of prefixes (down-sets) of ``dag``.

    Counted by dynamic programming over the node set in topological order
    with memoization on the "frontier" (the antichain of maximal elements of
    the prefix).  For the graph sizes used in experiments (<= ~24 nodes)
    plain enumeration is fine, so this simply counts :func:`all_prefixes`.
    """
    return sum(1 for _ in all_prefixes(dag))


def transitive_reduction(dag: Dag) -> Dag:
    """The minimal edge set with the same reachability relation.

    Labels on retained edges are preserved.  Used when rendering figures so
    the drawn graphs match the paper's (which never draw implied edges).
    """
    reduced = Dag()
    for node in dag:
        reduced.add_node(node)
    for source, target, labels in dag.edges():
        # The edge is redundant iff some other successor of `source`
        # reaches `target`.
        redundant = any(
            mid != target and dag.has_path(mid, target)
            for mid in dag.direct_successors(source)
        )
        if not redundant:
            reduced.add_edge(source, target, labels=labels, check_acyclic=False)
    return reduced


def restrict_order(dag: Dag, nodes: Iterable[Hashable]) -> Dag:
    """The partial order induced on ``nodes`` by reachability in ``dag``.

    Unlike :meth:`Dag.induced_subgraph`, this keeps an edge a -> b whenever
    there is a *path* from a to b in ``dag``, even if intermediate nodes are
    outside ``nodes``.  This is the right notion for "conflict graph order
    restricted to the uninstalled operations".
    """
    members = list(dict.fromkeys(nodes))
    order = Dag()
    for node in members:
        order.add_node(node)
    for a in members:
        for b in members:
            if a is not b and dag.has_path(a, b):
                order.add_edge(a, b, check_acyclic=False)
    return order
