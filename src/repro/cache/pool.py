"""The buffer pool.

Pages live in the pool as mutable working copies; the disk holds the last
flushed image of each.  Flushing is the *install* operation of the
theory: it atomically moves a page's accumulated updates into stable
state.  Two disciplines guard it:

- **WAL**: if a log manager is attached, a page tagged with LSN n may be
  flushed only once the log is stable through n.
- **FlushConstraint**: a pending constraint ``(first, then)`` forbids
  flushing ``then`` until ``first`` has been flushed at least once since
  the constraint was registered.  This is the cache-manager face of the
  write graph's *Add an edge* (§6.4: new B-tree page before old page).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Literal

from repro.logmgr.manager import LogManager
from repro.storage.disk import Disk
from repro.storage.page import Page


class CachePolicyError(RuntimeError):
    """An operation violated a cache discipline (ordering, no-steal...)."""


@dataclass
class FlushConstraint:
    """``first_page`` must be flushed before ``then_page`` may be."""

    first_page: str
    then_page: str
    discharged: bool = False


@dataclass
class _Frame:
    page: Page
    dirty: bool = False
    referenced: bool = True  # clock bit
    pinned: int = 0


class BufferPool:
    """A fixed-capacity page cache over a :class:`Disk`."""

    def __init__(
        self,
        disk: Disk,
        log_manager: LogManager | None = None,
        capacity: int = 64,
        policy: Literal["lru", "clock"] = "lru",
        steal: bool = True,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.disk = disk
        self.log_manager = log_manager
        self.capacity = capacity
        self.policy = policy
        self.steal = steal
        self._frames: dict[str, _Frame] = {}  # insertion order = LRU order
        self._constraints: list[FlushConstraint] = []
        self._clock_hand = 0
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.evictions = 0
        # Optional observer invoked with a page id after every successful
        # flush; recovery methods use it to keep dirty-page tables honest.
        self.on_flush: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------

    def get_page(self, page_id: str, create: bool = False) -> Page:
        """The pool's working copy of ``page_id`` (loaded on miss).

        With ``create=True`` a missing page springs into existence empty
        (the disk image appears at first flush).  The returned object is
        the pool's own copy: mutate it, then call :meth:`mark_dirty`, or
        use :meth:`update` which does both.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            self._touch(page_id, frame)
            return frame.page
        self.misses += 1
        if self.disk.has_page(page_id):
            page = self.disk.read_page(page_id)
        elif create:
            page = Page(page_id)
        else:
            raise KeyError(f"page {page_id!r} neither cached nor on disk")
        self._admit(page)
        return self._frames[page_id].page

    def update(self, page_id: str, mutate: Callable[[Page], None], create: bool = False) -> Page:
        """Fetch, mutate, and mark dirty in one step.

        The page is pinned for the duration of ``mutate``: a mutator that
        reads other pages (a split-move does) can trigger evictions, and
        the page under mutation must not be the victim.
        """
        page = self.get_page(page_id, create=create)
        self.pin(page_id)
        try:
            mutate(page)
            self.mark_dirty(page_id)
        finally:
            self.unpin(page_id)
        return page

    def mark_dirty(self, page_id: str) -> None:
        """Record that the cached copy of ``page_id`` differs from disk."""
        self._frames[page_id].dirty = True

    def is_dirty(self, page_id: str) -> bool:
        """Is ``page_id`` cached with unflushed changes?"""
        frame = self._frames.get(page_id)
        return frame is not None and frame.dirty

    def is_cached(self, page_id: str) -> bool:
        """Is ``page_id`` resident in the pool?"""
        return page_id in self._frames

    def dirty_page_ids(self) -> list[str]:
        """Sorted ids of every dirty cached page."""
        return sorted(pid for pid, frame in self._frames.items() if frame.dirty)

    def pin(self, page_id: str) -> None:
        """Forbid eviction of ``page_id`` until unpinned (counted)."""
        self._frames[page_id].pinned += 1

    def unpin(self, page_id: str) -> None:
        """Release one pin on ``page_id``."""
        frame = self._frames[page_id]
        if frame.pinned == 0:
            raise CachePolicyError(f"page {page_id!r} is not pinned")
        frame.pinned -= 1

    # ------------------------------------------------------------------
    # Flush ordering constraints
    # ------------------------------------------------------------------

    def add_flush_constraint(self, first_page: str, then_page: str) -> FlushConstraint:
        """Require ``first_page`` to reach disk before ``then_page``.

        This is the cache-manager face of the write graph's *Add an edge*
        operation, whose side condition demands acyclicity.  If the new
        ordering would close a cycle among pending constraints, the cache
        resolves it the way real systems do: flush ``first_page`` right
        now (with its own prerequisites), so the obligation is already
        discharged and no edge is needed.
        """
        if self._constraint_path(then_page, first_page):
            self._flush_with_prerequisites(first_page)
            return FlushConstraint(first_page, then_page, discharged=True)
        constraint = FlushConstraint(first_page, then_page)
        self._constraints.append(constraint)
        return constraint

    def _constraint_path(self, source: str, target: str) -> bool:
        """Is there a pending-constraint path source -> ... -> target?"""
        frontier = [source]
        seen = set()
        while frontier:
            page = frontier.pop()
            if page == target:
                return True
            if page in seen:
                continue
            seen.add(page)
            frontier.extend(
                c.then_page
                for c in self._constraints
                if not c.discharged and c.first_page == page
            )
        return False

    def blocked_by(self, page_id: str) -> list[FlushConstraint]:
        """Pending constraints forbidding a flush of ``page_id``."""
        return [
            constraint
            for constraint in self._constraints
            if not constraint.discharged and constraint.then_page == page_id
        ]

    def pending_constraints(self) -> list[FlushConstraint]:
        """Every registered, not-yet-discharged flush constraint."""
        return [c for c in self._constraints if not c.discharged]

    # ------------------------------------------------------------------
    # Flushing (= installing)
    # ------------------------------------------------------------------

    def wal_check(self, page_lsn: int) -> None:
        """The write-ahead rule, consulted against segment boundaries.

        The records that produced a page's updates must be stable before
        the page may reach disk.  The pool asks the log for the stable
        boundary of the *segment* holding ``page_lsn`` — with a segmented
        log that is the only question that needs answering, and it stays
        cheap no matter how long the log grows.  Like real systems, an
        unstable boundary forces the log rather than failing — that is
        what "write-ahead" means; the final check then raises only if
        even a forced flush could not cover the LSN (a genuinely torn
        protocol, e.g. a page tagged with a never-appended LSN).
        """
        if self.log_manager.segment_stable_boundary(page_lsn) < page_lsn:
            self.log_manager.flush(up_to_lsn=page_lsn)
        self.log_manager.wal_check(page_lsn)

    def flush_page(self, page_id: str, force: bool = False) -> None:
        """Write the cached page to disk, enforcing WAL and ordering.

        ``force=True`` bypasses the ordering check — it exists solely for
        the ablation experiments that demonstrate recovery breaking when
        careful write ordering is violated.
        """
        frame = self._frames.get(page_id)
        if frame is None or not frame.dirty:
            return
        if not force:
            blockers = self.blocked_by(page_id)
            if blockers:
                firsts = sorted(c.first_page for c in blockers)
                raise CachePolicyError(
                    f"flush of {page_id!r} blocked until {firsts} flushed "
                    f"(careful write ordering)"
                )
        if self.log_manager is not None and frame.page.lsn >= 0:
            self.wal_check(frame.page.lsn)
        self.disk.write_page(frame.page)
        frame.dirty = False
        self.flushes += 1
        for constraint in self._constraints:
            if constraint.first_page == page_id:
                constraint.discharged = True
        if self.on_flush is not None:
            self.on_flush(page_id)

    def flush_all(self) -> None:
        """Flush every dirty page, in a constraint-respecting order.

        Constraints whose first page already reached disk (it is clean or
        was flushed along the way) are discharged as encountered — the
        required image is already stable, which is all the ordering asks.
        """
        for page_id in self.dirty_page_ids():
            if self.is_dirty(page_id):  # may have been flushed as a prereq
                self._flush_with_prerequisites(page_id)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _admit(self, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.page_id] = _Frame(page=page)

    def _touch(self, page_id: str, frame: _Frame) -> None:
        frame.referenced = True
        if self.policy == "lru":
            # Reinsert to move to the MRU end of the ordered dict.
            del self._frames[page_id]
            self._frames[page_id] = frame

    def _evict_one(self) -> None:
        victim_id = self._choose_victim()
        frame = self._frames[victim_id]
        if frame.dirty:
            if not self.steal:
                raise CachePolicyError(
                    f"no-steal pool is full of dirty pages (victim {victim_id!r})"
                )
            self._flush_with_prerequisites(victim_id)
        del self._frames[victim_id]
        self.evictions += 1

    def _flush_with_prerequisites(self, page_id: str, _seen: set | None = None) -> None:
        """Flush ``page_id``, first flushing any pages that careful write
        ordering requires to go to disk before it.

        ``_seen`` marks pages already handled in this pass — duplicate
        constraints naming the same prerequisite are common and must not
        be mistaken for cycles.  Genuine cycles cannot arise:
        :meth:`add_flush_constraint` refuses to create them (it flushes
        eagerly instead), mirroring the write graph's acyclicity side
        condition.
        """
        seen = _seen if _seen is not None else set()
        if page_id in seen:
            return
        seen.add(page_id)
        for constraint in self.blocked_by(page_id):
            self._flush_with_prerequisites(constraint.first_page, seen)
            constraint.discharged = True
        self.flush_page(page_id)

    def _choose_victim(self) -> str:
        candidates = [
            page_id for page_id, frame in self._frames.items() if frame.pinned == 0
        ]
        if not candidates:
            raise CachePolicyError("every cached page is pinned; cannot evict")
        if self.policy == "lru":
            # First unpinned frame in insertion (LRU) order whose flush is
            # not blocked; fall back to any unpinned frame.
            for page_id in candidates:
                if not self._frames[page_id].dirty or not self.blocked_by(page_id):
                    return page_id
            return candidates[0]
        # Clock: sweep, clearing reference bits.
        ids = list(self._frames)
        for _ in range(2 * len(ids)):
            page_id = ids[self._clock_hand % len(ids)]
            self._clock_hand += 1
            frame = self._frames[page_id]
            if frame.pinned:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            return page_id
        return candidates[0]

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose every cached page and pending constraint (all volatile)."""
        self._frames.clear()
        self._constraints.clear()

    def cached_page_ids(self) -> list[str]:
        """Sorted ids of every resident page."""
        return sorted(self._frames)

    def __iter__(self) -> Iterator[Page]:
        for page_id in self.cached_page_ids():
            yield self._frames[page_id].page

    def __repr__(self) -> str:
        return (
            f"BufferPool(cached={len(self._frames)}/{self.capacity}, "
            f"dirty={len(self.dirty_page_ids())}, policy={self.policy})"
        )
