"""The buffer pool, driven by the §5 install scheduler.

Pages live in the pool as mutable working copies; the disk holds the last
flushed image of each.  Flushing is the *install* operation of the
theory: it atomically moves a page's accumulated updates into stable
state.  Every flush decision — what may go, in what order, what may be
skipped — is answered by one structure, the pool's
:class:`~repro.cache.scheduler.InstallScheduler`, a live write graph with
one uninstalled node per dirty page:

- **WAL** is install's stable-LSN side condition: a page whose node
  carries LSN n installs only once the log is stable through n (the log
  manager's ``ensure_stable`` gate, which forces rather than fails).
- **FlushConstraint** is just the graph's *add-edge* view: registering
  one adds an ordering edge bound to the first page's current node
  generation, so a flush that happened before registration never
  satisfies it retroactively.
- **Flush elision** is *remove-write*: a dirty page whose content equals
  its disk image needs no IO — replaying its pending records against
  that identical stable image regenerates the identical state — so the
  node retires without a page write.
- **Victim selection** is graph-driven under the default
  ``install_policy="graph"``: clean frames first (no install needed at
  all), then minimal uninstalled nodes (installable without prerequisite
  IO).  ``install_policy="legacy"`` keeps the historical recency-only
  choice, as the ablation baseline the E16 experiment measures against.

**Concurrency contract.**  Every public method runs under the pool's
re-entrant :attr:`mutex`, held across whole check-then-act sequences
(victim selection through flush, elision check through remove-write), so
concurrent ``execute()`` callers never see a frame between states.  Lock
order is pool -> scheduler -> log manager; the log manager never calls
back into the pool, so the order is acyclic.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, Literal

from repro.cache.scheduler import InstallScheduler, SchedulerCycleError
from repro.logmgr.manager import LogManager
from repro.obs.trace import NULL_TRACER, Tracer
from repro.storage.disk import Disk
from repro.storage.page import Page


class CachePolicyError(RuntimeError):
    """An operation violated a cache discipline (ordering, no-steal...)."""


class FlushConstraint:
    """``first_page`` must be flushed before ``then_page`` may be.

    A live view over one scheduler edge: the constraint is discharged
    exactly when that edge is gone — i.e. when the first page's node
    *generation current at registration time* (or a later one it
    collapsed into) installed.  A constraint created for an ordering the
    pool resolved eagerly (cycle avoidance) is born discharged.
    """

    def __init__(
        self,
        first_page: str,
        then_page: str,
        scheduler: InstallScheduler | None = None,
        edge: tuple[int, int] | None = None,
    ):
        self.first_page = first_page
        self.then_page = then_page
        self._scheduler = scheduler
        self._edge = edge

    @property
    def discharged(self) -> bool:
        if self._edge is None or self._scheduler is None:
            return True
        return not self._scheduler.has_edge_ids(*self._edge)

    def __repr__(self) -> str:
        state = "discharged" if self.discharged else "pending"
        return f"FlushConstraint({self.first_page!r} -> {self.then_page!r}, {state})"


class _Frame:
    __slots__ = ("page", "dirty", "referenced", "pinned")

    def __init__(self, page: Page):
        self.page = page
        self.dirty = False
        self.referenced = True  # clock bit
        self.pinned = 0


class BufferPool:
    """A fixed-capacity page cache over a :class:`Disk`."""

    def __init__(
        self,
        disk: Disk,
        log_manager: LogManager | None = None,
        capacity: int = 64,
        policy: Literal["lru", "clock"] = "lru",
        steal: bool = True,
        install_policy: Literal["graph", "legacy"] = "graph",
        tracer: Tracer | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if install_policy not in ("graph", "legacy"):
            raise ValueError(f"unknown install policy {install_policy!r}")
        self.disk = disk
        self.log_manager = log_manager
        self.capacity = capacity
        self.policy = policy
        self.steal = steal
        self.install_policy = install_policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.scheduler = InstallScheduler(tracer=self.tracer)
        # Guards the frame map and every flush/eviction decision;
        # re-entrant because flush_all -> _flush_with_prerequisites ->
        # flush_page all re-enter.
        self.mutex = threading.RLock()
        self._frames: dict[str, _Frame] = {}  # insertion order = LRU order
        self._clock_hand = 0
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.evictions = 0
        # Optional observer invoked with a page id after every install
        # (disk write or elision) — for tests and instrumentation.
        self.on_flush: Callable[[str], None] | None = None
        # Optional fault handler consulted on every page access, under
        # the pool mutex, *before* the frame/disk lookup — a lazy
        # restart installs its per-page replay here so a page's first
        # access redoes its log chain before anything reads the stale
        # disk image.  The handler detaches itself (sets this back to
        # None) once its backlog drains.
        self.page_fault: Callable[[str], bool] | None = None

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------

    def get_page(self, page_id: str, create: bool = False) -> Page:
        """The pool's working copy of ``page_id`` (loaded on miss).

        With ``create=True`` a missing page springs into existence empty
        (the disk image appears at first flush).  The returned object is
        the pool's own copy: mutate it, then call :meth:`mark_dirty`, or
        use :meth:`update` which does both.
        """
        with self.mutex:
            if self.page_fault is not None:
                # Lazy-restart hook: replay this page's log chain first,
                # so the lookup below sees the recovered image.  The
                # handler's own page accesses re-enter here and fall
                # through (their pages are popped before replay).
                self.page_fault(page_id)
            frame = self._frames.get(page_id)
            if frame is not None:
                self.hits += 1
                self._touch(page_id, frame)
                return frame.page
            self.misses += 1
            if self.disk.has_page(page_id):
                page = self.disk.read_page(page_id)
            elif create:
                page = Page(page_id)
            else:
                raise KeyError(f"page {page_id!r} neither cached nor on disk")
            self._admit(page)
            return self._frames[page_id].page

    def update(self, page_id: str, mutate: Callable[[Page], None], create: bool = False) -> Page:
        """Fetch, mutate, and mark dirty in one step.

        The page is pinned for the duration of ``mutate``: a mutator that
        reads other pages (a split-move does) can trigger evictions, and
        the page under mutation must not be the victim.
        """
        with self.mutex:
            page = self.get_page(page_id, create=create)
            self.pin(page_id)
            try:
                mutate(page)
                self.mark_dirty(page_id)
            finally:
                self.unpin(page_id)
            return page

    def mark_dirty(self, page_id: str) -> None:
        """Record that the cached copy of ``page_id`` differs from disk.

        This is the scheduler's *collapse*: the update merges into the
        page's live write-graph node (created on the first update of a
        generation), carrying the page's LSN tag as recLSN/lastLSN.
        """
        with self.mutex:
            frame = self._frames[page_id]
            frame.dirty = True
            self.scheduler.collapse(page_id, frame.page.lsn)

    def is_dirty(self, page_id: str) -> bool:
        """Is ``page_id`` cached with unflushed changes?"""
        with self.mutex:
            frame = self._frames.get(page_id)
            return frame is not None and frame.dirty

    def is_cached(self, page_id: str) -> bool:
        """Is ``page_id`` resident in the pool?"""
        with self.mutex:
            return page_id in self._frames

    def dirty_page_ids(self) -> list[str]:
        """Sorted ids of every dirty cached page."""
        with self.mutex:
            return sorted(
                pid for pid, frame in self._frames.items() if frame.dirty
            )

    def pin(self, page_id: str) -> None:
        """Forbid eviction of ``page_id`` until unpinned (counted)."""
        with self.mutex:
            self._frames[page_id].pinned += 1

    def unpin(self, page_id: str) -> None:
        """Release one pin on ``page_id``."""
        with self.mutex:
            frame = self._frames[page_id]
            if frame.pinned == 0:
                raise CachePolicyError(f"page {page_id!r} is not pinned")
            frame.pinned -= 1

    # ------------------------------------------------------------------
    # Flush ordering constraints (= write-graph add-edge)
    # ------------------------------------------------------------------

    def add_flush_constraint(self, first_page: str, then_page: str) -> FlushConstraint:
        """Require ``first_page`` to reach disk before ``then_page`` may.

        Pure *add-edge*: the scheduler binds the ordering to the first
        page's current node generation — if that page is clean, an empty
        obligation node is created, so only a *future* flush of it can
        discharge the constraint (never one that already happened).  If
        the edge would close a cycle the pool resolves it the way real
        systems do: flush ``first_page`` right now (with its own
        prerequisites), so the obligation is already met and no edge is
        needed — the acyclicity side condition, operationalized.
        """
        with self.mutex:
            try:
                edge = self.scheduler.add_edge(first_page, then_page)
            except SchedulerCycleError:
                self._flush_with_prerequisites(first_page)
                return FlushConstraint(first_page, then_page)
            return FlushConstraint(first_page, then_page, self.scheduler, edge)

    def blocked_by(self, page_id: str) -> list[FlushConstraint]:
        """Pending constraints forbidding a flush of ``page_id``."""
        return [
            FlushConstraint(first, then, self.scheduler, edge)
            for first, then, edge in self.scheduler.pending_edges()
            if then == page_id
        ]

    def pending_constraints(self) -> list[FlushConstraint]:
        """Every live ordering edge, as constraint views."""
        return [
            FlushConstraint(first, then, self.scheduler, edge)
            for first, then, edge in self.scheduler.pending_edges()
        ]

    # ------------------------------------------------------------------
    # Flushing (= installing)
    # ------------------------------------------------------------------

    def wal_check(self, page_lsn: int) -> None:
        """The write-ahead rule as install's stable-LSN side condition:
        delegate to the log manager's :meth:`~repro.logmgr.manager.LogManager.ensure_stable`
        gate, which forces the segment holding ``page_lsn`` if needed and
        raises only if even a forced flush could not cover the LSN (a
        genuinely torn protocol, e.g. a page tagged with a never-appended
        LSN)."""
        self.log_manager.ensure_stable(page_lsn)

    def flush_page(self, page_id: str, force: bool = False) -> None:
        """Install the cached page: WAL gate, ordering check, disk write.

        If the dirty page's content already equals its disk image the
        write is *elided* (the scheduler's remove-write): replaying the
        page's pending records against that identical stable image
        regenerates the identical state, so skipping the IO preserves
        recoverability exactly.  ``force=True`` bypasses the ordering
        check — it exists solely for the ablation experiments that
        demonstrate recovery breaking when careful write ordering is
        violated.
        """
        with self.mutex:
            frame = self._frames.get(page_id)
            if frame is None or not frame.dirty:
                return
            if not force:
                blockers = self.scheduler.blockers(page_id)
                if blockers:
                    if self.tracer.enabled:
                        self.tracer.event(
                            "cache.flush_blocked", page=page_id, blockers=blockers
                        )
                    raise CachePolicyError(
                        f"flush of {page_id!r} blocked until {blockers} flushed "
                        f"(careful write ordering)"
                    )
            if (
                self.install_policy == "graph"
                and not force
                and self.disk.has_page(page_id)
                and frame.page.same_contents(self.disk.read_page(page_id))
            ):
                # Remove-write: content already stable; no IO needed.
                node = self.scheduler.remove_write(page_id)
                frame.dirty = False
                if self.tracer.enabled:
                    self.tracer.event(
                        "cache.elide",
                        page=page_id,
                        node=node.node_id if node is not None else None,
                        reason="content_equals_disk",
                    )
                if self.on_flush is not None:
                    self.on_flush(page_id)
                return
            if self.log_manager is not None and frame.page.lsn >= 0:
                self.wal_check(frame.page.lsn)
            self.disk.write_page(frame.page)
            frame.dirty = False
            self.flushes += 1
            node = self.scheduler.install(page_id, force=True)
            if self.tracer.enabled:
                self.tracer.event(
                    "cache.flush",
                    page=page_id,
                    lsn=frame.page.lsn,
                    node=node.node_id if node is not None else None,
                    writes=node.writes if node is not None else 0,
                    forced=force,
                )
            if self.on_flush is not None:
                self.on_flush(page_id)

    def flush_all(self) -> None:
        """Flush every dirty page, in a constraint-respecting order."""
        with self.mutex:
            for page_id in self.dirty_page_ids():
                if self.is_dirty(page_id):  # may have been flushed as a prereq
                    self._flush_with_prerequisites(page_id)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _admit(self, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.page_id] = _Frame(page=page)

    def _touch(self, page_id: str, frame: _Frame) -> None:
        frame.referenced = True
        if self.policy == "lru":
            # Reinsert to move to the MRU end of the ordered dict.
            del self._frames[page_id]
            self._frames[page_id] = frame

    def _evict_one(self) -> None:
        victim_id, tier = self._choose_victim()
        frame = self._frames[victim_id]
        if self.tracer.enabled:
            self.tracer.event(
                "cache.victim", page=victim_id, tier=tier, dirty=frame.dirty
            )
        if frame.dirty:
            if not self.steal:
                raise CachePolicyError(
                    f"no-steal pool is full of dirty pages (victim {victim_id!r})"
                )
            self._flush_with_prerequisites(victim_id)
        del self._frames[victim_id]
        self.evictions += 1

    def _flush_with_prerequisites(self, page_id: str, _seen: set | None = None) -> None:
        """Flush ``page_id``, first flushing any pages the write graph
        orders before it.

        ``_seen`` marks pages already handled in this pass — duplicate
        prerequisites are common and must not recurse forever.  Genuine
        cycles cannot arise: the scheduler's add-edge refuses them (and
        :meth:`add_flush_constraint` then flushes eagerly instead),
        mirroring the write graph's acyclicity side condition.  A
        prerequisite that is *clean* (an empty obligation node) cannot
        be discharged by flushing it — only a future re-dirty-and-flush
        can — so the dependent page's flush will raise, which is the
        correct refusal (the old bookkeeping wrongly discharged it).
        """
        seen = _seen if _seen is not None else set()
        if page_id in seen:
            return
        seen.add(page_id)
        for first in self.scheduler.blockers(page_id):
            self._flush_with_prerequisites(first, seen)
        self.flush_page(page_id)

    def _choose_victim(self) -> tuple[str, str]:
        """Pick an eviction victim; returns ``(page_id, tier)`` where the
        tier names the rule that selected it (traced as ``cache.victim``)."""
        candidates = [
            page_id for page_id, frame in self._frames.items() if frame.pinned == 0
        ]
        if not candidates:
            raise CachePolicyError("every cached page is pinned; cannot evict")
        if self.install_policy == "graph":
            # Graph-driven selection: a clean frame needs no install at
            # all — evicting it costs zero IO; failing that, a minimal
            # uninstalled node (no live predecessors) installs without
            # dragging prerequisite flushes along.  Recency (LRU/clock
            # insertion order) breaks ties within each tier.
            for page_id in candidates:
                if not self._frames[page_id].dirty:
                    return page_id, "clean_frame"
            for page_id in candidates:
                if not self.scheduler.blockers(page_id):
                    return page_id, "minimal_node"
            return candidates[0], "fallback"
        if self.policy == "lru":
            # Legacy: first unpinned frame in insertion (LRU) order whose
            # flush is not blocked; fall back to any unpinned frame.
            for page_id in candidates:
                if not self._frames[page_id].dirty or not self.scheduler.blockers(
                    page_id
                ):
                    return page_id, "lru"
            return candidates[0], "fallback"
        # Legacy clock: sweep, clearing reference bits.
        ids = list(self._frames)
        for _ in range(2 * len(ids)):
            page_id = ids[self._clock_hand % len(ids)]
            self._clock_hand += 1
            frame = self._frames[page_id]
            if frame.pinned:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            return page_id, "clock"
        return candidates[0], "fallback"

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose every cached page and the whole write graph (volatile)."""
        with self.mutex:
            self._frames.clear()
            self.scheduler.reset()

    def cached_page_ids(self) -> list[str]:
        """Sorted ids of every resident page."""
        with self.mutex:
            return sorted(self._frames)

    def __iter__(self) -> Iterator[Page]:
        for page_id in self.cached_page_ids():
            yield self._frames[page_id].page

    def __repr__(self) -> str:
        return (
            f"BufferPool(cached={len(self._frames)}/{self.capacity}, "
            f"dirty={len(self.dirty_page_ids())}, policy={self.policy}, "
            f"install={self.install_policy})"
        )
