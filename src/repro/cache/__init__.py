"""The cache manager (buffer pool).

The cache is where the write graph becomes operational (§5–6): pages
accumulate the effects of many operations, and flushing a page to disk
*installs* every operation whose effects it carries.  The pool

- enforces the write-ahead rule (a page cannot reach disk before the log
  records that produced its updates are stable);
- honors *careful write ordering* constraints — the write-graph "add an
  edge" operation surfaced to the cache, e.g. "flush the new B-tree page
  before overwriting the old one" (§6.4, Figure 8);
- offers LRU and clock eviction, with steal (flush-dirty-victim) and
  no-steal modes.
"""

from repro.cache.pool import BufferPool, CachePolicyError, FlushConstraint

__all__ = ["BufferPool", "CachePolicyError", "FlushConstraint"]
