"""The cache manager (buffer pool + install scheduler).

The cache is where the write graph becomes operational (§5–6): pages
accumulate the effects of many operations, and flushing a page to disk
*installs* every operation whose effects it carries.  The pool's flush
decisions are all delegated to one live §5 write graph, the
:class:`~repro.cache.scheduler.InstallScheduler`:

- the write-ahead rule is install's stable-LSN side condition (a page
  cannot reach disk before the log records that produced its updates are
  stable);
- *careful write ordering* constraints are the write-graph "add an edge"
  operation, e.g. "flush the new B-tree page before overwriting the old
  one" (§6.4, Figure 8), bound to node generations so a constraint is
  never satisfied by a flush that preceded its registration;
- redundant flushes are *elided* via the remove-write operation when a
  dirty page's content already equals its disk image;
- eviction prefers victims the graph says are free (clean frames, then
  minimal uninstalled nodes), with LRU and clock recency orders, steal
  (flush-dirty-victim) and no-steal modes, and a ``legacy`` install
  policy preserving the historical recency-only behaviour for ablation.
"""

from repro.cache.pool import BufferPool, CachePolicyError, FlushConstraint
from repro.cache.scheduler import (
    InstallScheduler,
    PageNode,
    SchedulerCycleError,
    SchedulerError,
)

__all__ = [
    "BufferPool",
    "CachePolicyError",
    "FlushConstraint",
    "InstallScheduler",
    "PageNode",
    "SchedulerCycleError",
    "SchedulerError",
]
