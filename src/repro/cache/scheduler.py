"""The install scheduler: a live §5 write graph over buffer-pool pages.

The paper's §5 write graphs are what a cache manager *is*, seen
abstractly: one uninstalled node per cached dirty page (the page's
accumulated, not-yet-stable updates), edges for careful write orderings,
and exactly four ways the graph may evolve —

- **collapse**: a new update to an already-dirty page merges into the
  page's node (one copy per page, last-writer-wins), and a first update
  to a clean page starts a fresh node;
- **add an edge**: a flush-ordering obligation ``first -> then`` (§6.4
  careful write ordering, Figure 8's new-B-tree-page-before-old); the
  side condition is acyclicity, and the scheduler refuses cycles so the
  pool can resolve them by eager flushing;
- **install**: the page write itself — permitted only when the node has
  no live predecessors (its ordering obligations are met) and some write
  backs it; installing discharges the node's outgoing edges;
- **remove a write**: flush *elision* — a node whose page content the
  disk already holds can be dropped without IO, because replaying its
  records against that identical image regenerates the same state (the
  unexposed-write optimization at page granularity).

:class:`InstallScheduler` is the **single authority** the buffer pool,
the recovery methods, and the auditors consult: what may be flushed
(:meth:`blockers`), in what order (the edge set), what may be skipped
(:meth:`remove_write`), and what is still dirty and since when
(:meth:`rec_lsns` — the dirty page table of §4.3 analysis, read straight
off the live graph instead of parallel bookkeeping).

Node *generations* fix the retroactive-discharge bug: an edge binds to
the first page's current node.  If the first page is clean when the edge
is added, an empty **obligation node** (``writes == 0``) is created; it
cannot be installed — no page write backs it — so the obligation
discharges only when the page is dirtied again and that new content
reaches disk.  A flush that happened *before* the edge was registered
never satisfies it.

**Concurrency contract.**  Every mutation (the four §5 transformations)
and every compound query runs under the scheduler's re-entrant mutex,
so concurrent ``execute()`` callers see the graph transition atomically
from one legal state to the next — a half-added edge or a half-retired
node is never observable.  The mutex is exposed as :attr:`mutex` so the
buffer pool can hold it across its own check-then-act sequences (victim
selection, elision checks) instead of re-deriving them from stale
answers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.trace import NULL_TRACER, Tracer


class SchedulerError(RuntimeError):
    """A §5 side condition was violated."""


class SchedulerCycleError(SchedulerError):
    """Adding the requested edge would close a cycle (add-edge side
    condition); the caller resolves by installing the source first."""


@dataclass
class PageNode:
    """One uninstalled write-graph node: a page's pending updates.

    ``rec_lsn`` is the LSN of the first update collapsed into this
    generation (the §4.3 recLSN); ``last_lsn`` the latest, which is what
    the WAL gate must cover before install.  ``writes`` counts collapsed
    updates — zero marks an obligation node created by add-edge against
    a clean page, which no page write backs and no install may remove.
    """

    node_id: int
    page_id: str
    rec_lsn: int = -1
    last_lsn: int = -1
    writes: int = 0
    installed: bool = False

    def __repr__(self) -> str:
        flag = "*" if self.installed else ""
        return (
            f"PageNode(#{self.node_id}{flag} {self.page_id!r} "
            f"rec={self.rec_lsn} last={self.last_lsn} writes={self.writes})"
        )


@dataclass
class SchedulerStats:
    """Counters for benchmarks: how the graph evolved."""

    installs: int = 0
    collapses: int = 0
    elisions: int = 0
    edges_added: int = 0
    cycles_refused: int = 0

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dict for reports and benches."""
        return {
            "installs": self.installs,
            "collapses": self.collapses,
            "elisions": self.elisions,
            "edges_added": self.edges_added,
            "cycles_refused": self.cycles_refused,
        }


class InstallScheduler:
    """The live write graph of a buffer pool (uninstalled nodes only).

    The installed prefix is implicit: installed nodes are *removed* —
    their effects live on the disk, which is the prefix's determined
    state.  What remains is the uninstalled suffix, which is exactly
    what flush decisions need.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._live: dict[str, PageNode] = {}  # page_id -> its one live node
        self._nodes: dict[int, PageNode] = {}  # node_id -> node
        self._preds: dict[int, set[int]] = {}
        self._succs: dict[int, set[int]] = {}
        self._next_id = 0
        self.stats = SchedulerStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Guards every mutation and compound query; re-entrant so the
        # pool can hold it across its own check-then-act sequences.
        self.mutex = threading.RLock()

    # ------------------------------------------------------------------
    # The four §5 transformations
    # ------------------------------------------------------------------

    def collapse(self, page_id: str, lsn: int = -1) -> PageNode:
        """*Collapse*: merge one more update into ``page_id``'s node.

        Creates the node if the page has no live one (first update of a
        generation); otherwise merges, keeping the earliest ``rec_lsn``
        and the latest ``last_lsn`` — the cache's one-copy-per-page rule
        as the §5 collapse of the update's singleton node into the
        page's node.
        """
        with self.mutex:
            node = self._live.get(page_id)
            if node is None:
                node = self._new_node(page_id)
            else:
                self.stats.collapses += 1
            node.writes += 1
            if lsn >= 0:
                if node.rec_lsn < 0:
                    node.rec_lsn = lsn
                node.last_lsn = max(node.last_lsn, lsn)
            return node

    def add_edge(self, first_page: str, then_page: str) -> tuple[int, int]:
        """*Add an edge*: ``first_page``'s current node must install
        before ``then_page``'s may.

        Endpoints that have no live node get an empty obligation node
        (see module docstring) — this is what makes the constraint bind
        to the *future* flush of ``first_page`` rather than being
        retroactively satisfied by one that already happened.  Raises
        :class:`SchedulerCycleError` when the edge would close a cycle
        (the §5 acyclicity side condition); the pool resolves that by
        installing ``first_page`` eagerly instead.

        Returns the ``(first_node_id, then_node_id)`` edge key, whose
        continued presence is the constraint's not-yet-discharged state.
        """
        if first_page == then_page:
            raise SchedulerCycleError(
                f"self-ordering of {first_page!r} would be a cycle"
            )
        with self.mutex:
            first = self._live.get(first_page) or self._new_node(first_page)
            then = self._live.get(then_page) or self._new_node(then_page)
            if first.node_id in self._succs and self._reaches(
                then.node_id, first.node_id
            ):
                self.stats.cycles_refused += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "scheduler.cycle_refused", first=first_page, then=then_page
                    )
                raise SchedulerCycleError(
                    f"edge {first_page!r} -> {then_page!r} would close a cycle"
                )
            if then.node_id not in self._succs[first.node_id]:
                self._succs[first.node_id].add(then.node_id)
                self._preds[then.node_id].add(first.node_id)
                self.stats.edges_added += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "scheduler.add_edge",
                        first=first_page,
                        then=then_page,
                        first_node=first.node_id,
                        then_node=then.node_id,
                    )
            return (first.node_id, then.node_id)

    def install(self, page_id: str, force: bool = False) -> PageNode | None:
        """*Install*: the page write happened; retire the node.

        Side conditions: no live predecessor (every ordering obligation
        met — ``force`` bypasses this for the ablation experiments, like
        the pool's forced flush it mirrors), and at least one write backs
        the node — an empty obligation node corresponds to no page image
        and can only discharge through a future real flush.  Discharges
        the node's outgoing edges.  Returns the retired node (None if
        the page had no live node: a clean-page flush is a no-op).
        """
        with self.mutex:
            node = self._live.get(page_id)
            if node is None:
                return None
            if node.writes == 0:
                raise SchedulerError(
                    f"page {page_id!r} has only an empty ordering obligation; "
                    f"no page write exists to install it"
                )
            if not force:
                blocking = self._preds[node.node_id]
                if blocking:
                    pages = sorted(self._nodes[b].page_id for b in blocking)
                    raise SchedulerError(
                        f"cannot install {page_id!r}: predecessors {pages} are live"
                    )
            self._retire(node)
            node.installed = True
            self.stats.installs += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "scheduler.install",
                    page=page_id,
                    node=node.node_id,
                    writes=node.writes,
                    rec_lsn=node.rec_lsn,
                    last_lsn=node.last_lsn,
                    forced=force,
                )
            return node

    def remove_write(self, page_id: str) -> PageNode | None:
        """*Remove a write*: elide the flush of ``page_id`` entirely.

        The caller (the pool) has established the side condition at page
        granularity: the cached content equals the disk image, so the
        node's writes are redundant — replaying its log records against
        that identical stable image regenerates the identical state, and
        no reader can observe the difference.  Removing every write
        leaves an empty node, whose install is the trivial no-IO one.
        Requires the same no-live-predecessor condition as install (an
        ordered-before obligation is not dischargeable by skipping).
        """
        with self.mutex:
            node = self._live.get(page_id)
            if node is None:
                return None
            blocking = self._preds[node.node_id]
            if blocking:
                pages = sorted(self._nodes[b].page_id for b in blocking)
                raise SchedulerError(
                    f"cannot elide {page_id!r}: predecessors {pages} are live"
                )
            self._retire(node)
            node.installed = True
            self.stats.elisions += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "scheduler.remove_write",
                    page=page_id,
                    node=node.node_id,
                    writes=node.writes,
                    rec_lsn=node.rec_lsn,
                )
            return node

    # ------------------------------------------------------------------
    # Queries (what the pool and the methods consult)
    # ------------------------------------------------------------------

    def live_node(self, page_id: str) -> PageNode | None:
        """The page's current uninstalled node, if any."""
        with self.mutex:
            return self._live.get(page_id)

    def blockers(self, page_id: str) -> list[str]:
        """Pages whose live nodes must install before ``page_id`` may —
        sorted, empty when the page is flushable now."""
        with self.mutex:
            node = self._live.get(page_id)
            if node is None:
                return []
            return sorted(
                self._nodes[b].page_id for b in self._preds[node.node_id]
            )

    def has_edge_ids(self, first_node_id: int, then_node_id: int) -> bool:
        """Does the edge between these node generations still exist?
        (False once discharged by install/elision or lost to a crash.)"""
        with self.mutex:
            return then_node_id in self._succs.get(first_node_id, ())

    def pending_edges(self) -> list[tuple[str, str, tuple[int, int]]]:
        """Every live ordering edge as (first_page, then_page, edge key)."""
        with self.mutex:
            result = []
            for source_id, targets in self._succs.items():
                for target_id in targets:
                    result.append(
                        (
                            self._nodes[source_id].page_id,
                            self._nodes[target_id].page_id,
                            (source_id, target_id),
                        )
                    )
            return result

    def rec_lsns(self) -> dict[str, int]:
        """The dirty page table (page -> recLSN), read off the graph.

        Obligation nodes and untagged updates carry no recLSN and are
        not the analysis pass's business, so they are omitted.
        """
        with self.mutex:
            return {
                page_id: node.rec_lsn
                for page_id, node in self._live.items()
                if node.writes > 0 and node.rec_lsn >= 0
            }

    def set_rec_lsn(self, page_id: str, lsn: int) -> None:
        """Correct a live node's recLSN (partitioned redo adopts rebuilt
        pages wholesale, where the first-replayed LSN — not the final
        page LSN the adopting update stamps — is the true recLSN)."""
        with self.mutex:
            node = self._live.get(page_id)
            if node is not None and lsn >= 0:
                node.rec_lsn = lsn
                node.last_lsn = max(node.last_lsn, lsn)

    def minimal_pages(self) -> list[str]:
        """Pages whose nodes have no live predecessors — the §5 minimal
        uninstalled nodes, i.e. everything installable right now."""
        with self.mutex:
            return sorted(
                page_id
                for page_id, node in self._live.items()
                if not self._preds[node.node_id]
            )

    def __len__(self) -> int:
        with self.mutex:
            return len(self._live)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def self_check(self) -> list[str]:
        """Structural invariants; returns problems (empty = healthy)."""
        with self.mutex:
            problems: list[str] = []
            for page_id, node in self._live.items():
                if node.page_id != page_id:
                    problems.append(
                        f"node #{node.node_id} filed under {page_id!r}"
                    )
                if node.installed:
                    problems.append(f"installed node #{node.node_id} still live")
                if node.writes > 0 and 0 <= node.last_lsn < node.rec_lsn:
                    problems.append(f"node #{node.node_id} recLSN after lastLSN")
            if len(self._nodes) != len(self._live):
                problems.append("node index and live-page index disagree")
            for source_id, targets in self._succs.items():
                for target_id in targets:
                    if target_id not in self._nodes:
                        problems.append(f"edge to retired node #{target_id}")
                    elif source_id not in self._preds[target_id]:
                        problems.append(
                            f"asymmetric edge #{source_id}->#{target_id}"
                        )
            if self._has_cycle():
                problems.append("ordering edges contain a cycle")
            return problems

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """A crash: every node and edge is volatile and lost."""
        with self.mutex:
            self._live.clear()
            self._nodes.clear()
            self._preds.clear()
            self._succs.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _new_node(self, page_id: str) -> PageNode:
        node = PageNode(node_id=self._next_id, page_id=page_id)
        self._next_id += 1
        self._live[page_id] = node
        self._nodes[node.node_id] = node
        self._preds[node.node_id] = set()
        self._succs[node.node_id] = set()
        return node

    def _retire(self, node: PageNode) -> None:
        for pred in self._preds[node.node_id]:
            self._succs[pred].discard(node.node_id)
        for succ in self._succs[node.node_id]:
            self._preds[succ].discard(node.node_id)
        del self._preds[node.node_id]
        del self._succs[node.node_id]
        del self._nodes[node.node_id]
        del self._live[node.page_id]

    def _reaches(self, source_id: int, target_id: int) -> bool:
        if source_id == target_id:
            return True
        frontier = [source_id]
        seen: set[int] = set()
        while frontier:
            current = frontier.pop()
            if current == target_id:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._succs.get(current, ()))
        return False

    def _has_cycle(self) -> bool:
        in_degree = {nid: len(self._preds[nid]) for nid in self._nodes}
        ready = [nid for nid, deg in in_degree.items() if deg == 0]
        removed = 0
        while ready:
            nid = ready.pop()
            removed += 1
            for succ in self._succs[nid]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        return removed != len(self._nodes)

    def __repr__(self) -> str:
        edges = sum(len(t) for t in self._succs.values())
        return f"InstallScheduler(nodes={len(self._live)}, edges={edges})"
