"""A recoverable key-value database assembled from the substrates.

:class:`~repro.engine.kv.KVDatabase` wraps any §6 recovery method with an
operation stream runner, commit/checkpoint cadence control, and a
durability oracle — the component the crash simulator drives.
"""

from repro.engine.kv import EngineSpec, KVDatabase, Session, VerificationError

__all__ = ["EngineSpec", "KVDatabase", "Session", "VerificationError"]
