"""The recoverable key-value database.

``KVDatabase`` composes a recovery method with cadence policy:

- ``commit_every``: force the log every N operations (N=1 is synchronous
  commit; larger N models group commit and widens the window of
  operations a crash may lose);
- ``checkpoint_every``: take a method checkpoint every N operations
  (None = never), trading normal-operation work against recovery work —
  the knob behind the checkpoint-frequency benchmark;
- ``track_theory``: keep an incremental theory-audit tracker (conflict
  graph, installation graph, exposure memo) synchronized with the stable
  log during normal operation, so :meth:`KVDatabase.theory_audit` checks
  the Recovery Invariant at any instant without rebuilding graphs;
- ``install_policy``: how the buffer pool picks flush victims —
  ``"graph"`` (default) asks the live §5 install scheduler and elides
  redundant writes, ``"legacy"`` keeps the historical recency-only
  behaviour (the E16 ablation baseline);
- ``log_dir`` / ``group_commit`` / ``fsync``: put the log on real binary
  segment files.  ``commit_every`` batches N operations per *force*;
  ``group_commit`` additionally lets N forces share one *fsync* — the
  two group-commit levers multiply.  :meth:`KVDatabase.cold_start`
  reopens a database from the segment directory alone (plus whatever
  disk survived), which is how the cross-process crash tests recover.

The durability contract is checked by :meth:`verify_against`: after a
crash and recovery, the visible state must equal the oracle applied to
exactly the first ``durable_count()`` operations of the stream.

**Concurrency contract.**  One ``KVDatabase`` serves many threads.
Command execution is serialized under the engine's re-entrant mutex —
applying a command is fast, in-memory work — but *commit waits are not*:
with ``commit_pipeline=True`` a session's commit parks outside the
engine lock on the cross-session group-commit pipeline
(:class:`~repro.logmgr.pipeline.GroupCommitPipeline`), so while one
window's fsync is on the disk, other sessions keep executing and their
commits fold into the next window.  ``applied`` is appended under the
engine mutex in log order, which keeps the durable-prefix oracle of
:meth:`verify_against` valid under any interleaving.  Per-client streams
go through :class:`Session` (from :meth:`KVDatabase.session`), which
carries its own commit cadence and last-LSN watermark.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Sequence

from repro.logmgr.pipeline import GroupCommitPipeline
from repro.methods import METHODS, Machine, RecoveryMethodKV
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import RecoveryProgress
from repro.obs.trace import NULL_TRACER, Tracer
from repro.workloads.kv import KVOp, apply_to_oracle


class VerificationError(AssertionError):
    """The recovered state does not match the durable-prefix oracle."""


@dataclass(frozen=True)
class EngineSpec:
    """A declarative engine configuration — the factory path.

    Everything that shapes a :class:`KVDatabase` except *where* its log
    lives: the recovery method, cache and install policy, commit and
    checkpoint cadence, group-commit depth.  A spec is the unit of
    configuration a deployment stores in its manifest: N shards built
    from one spec are N identically-configured engines over N log
    directories, and a process that only has the manifest can rebuild
    any of them (:meth:`build` for a fresh engine, :meth:`cold_start`
    for one recovered from its segment files).

    Specs are frozen and JSON-round-trippable (:meth:`as_dict` /
    :meth:`from_dict`), so two processes that agree on the manifest
    agree on the engine, which is what makes the sharded cold start's
    child processes interchangeable with the parent.
    """

    method: str = "physiological"
    cache_capacity: int = 16
    cache_policy: str = "lru"
    install_policy: str = "graph"
    n_pages: int = 8
    commit_every: int = 1
    checkpoint_every: int | None = None
    method_options: dict | None = None
    log_segment_size: int | None = None
    truncate_on_checkpoint: bool = False
    group_commit: int = 1
    fsync: bool = True
    commit_pipeline: bool = False

    def _kwargs(self) -> dict[str, Any]:
        return asdict(self)

    def build(
        self,
        log_dir=None,
        *,
        tracer: Tracer | None = None,
        track_theory: bool = False,
    ) -> "KVDatabase":
        """A fresh engine per this spec (durable when ``log_dir`` is set)."""
        return KVDatabase(
            log_dir=log_dir,
            tracer=tracer,
            track_theory=track_theory,
            **self._kwargs(),
        )

    def cold_start(
        self,
        log_dir,
        disk=None,
        *,
        recover: bool = True,
        lazy: bool = False,
        tracer: Tracer | None = None,
        progress: "RecoveryProgress | None" = None,
    ) -> "KVDatabase":
        """Restart an engine of this spec from its segment directory."""
        kwargs = self._kwargs()
        kwargs.pop("method")
        return KVDatabase.cold_start(
            log_dir,
            disk=disk,
            method=self.method,
            recover=recover,
            lazy=lazy,
            tracer=tracer,
            progress=progress,
            **kwargs,
        )

    def as_dict(self) -> dict[str, Any]:
        """The spec as a JSON-safe mapping (manifest serialization)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EngineSpec":
        """Rebuild a spec from :meth:`as_dict` output; unknown keys are
        an error — a manifest written by a newer layout must not be
        silently half-read."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown EngineSpec fields: {sorted(unknown)}")
        return cls(**data)


class KVDatabase:
    """A crash-recoverable KV store with configurable method and cadence."""

    def __init__(
        self,
        method: str = "physiological",
        cache_capacity: int = 16,
        cache_policy: str = "lru",
        install_policy: str = "graph",
        n_pages: int = 8,
        commit_every: int = 1,
        checkpoint_every: int | None = None,
        method_options: dict | None = None,
        log_segment_size: int | None = None,
        truncate_on_checkpoint: bool = False,
        track_theory: bool = False,
        tracer: Tracer | None = None,
        log_dir=None,
        group_commit: int = 1,
        fsync: bool = True,
        commit_pipeline: bool = False,
        machine: Machine | None = None,
        progress: RecoveryProgress | None = None,
    ):
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; choose from {sorted(METHODS)}"
            )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if machine is None:
            machine = Machine(
                cache_capacity=cache_capacity,
                cache_policy=cache_policy,
                log_segment_size=log_segment_size,
                install_policy=install_policy,
                tracer=self.tracer,
                log_dir=log_dir,
                group_commit=group_commit,
                fsync=fsync,
                progress=progress,
            )
        self.method: RecoveryMethodKV = METHODS[method](
            machine, n_pages=n_pages, **(method_options or {})
        )
        self.method_name = method
        self.metrics = self._build_metrics()
        self.commit_every = max(1, commit_every)
        self.checkpoint_every = checkpoint_every
        # Retire log segments the method promises never to re-read.  Off
        # by default: media recovery from the log's head needs the whole
        # log unless an archive sink is installed on the manager.
        self.truncate_on_checkpoint = truncate_on_checkpoint
        self.track_theory = track_theory
        self._theory_tracker: Any = None
        self._since_commit = 0
        self._since_checkpoint = 0
        self.applied: list[KVOp] = []
        # Serializes command application and all cadence bookkeeping;
        # re-entrant because checkpoint/commit re-enter from execute().
        self.mutex = threading.RLock()
        self._commit_pipeline_enabled = commit_pipeline
        self._next_session_id = 0
        self.pipeline: GroupCommitPipeline | None = (
            GroupCommitPipeline(self.method.machine.log)
            if commit_pipeline
            else None
        )
        # Lazy-restart state (set by _begin_lazy_restart): the method's
        # replay plan, the background drainer, and its stop flag.
        self._lazy_plan: Any = None
        self._lazy_thread: threading.Thread | None = None
        self._lazy_stop: threading.Event | None = None

    @classmethod
    def cold_start(
        cls,
        log_dir,
        disk=None,
        method: str = "physiological",
        *,
        cache_capacity: int = 16,
        cache_policy: str = "lru",
        install_policy: str = "graph",
        n_pages: int = 8,
        commit_every: int = 1,
        checkpoint_every: int | None = None,
        method_options: dict | None = None,
        log_segment_size: int | None = None,
        truncate_on_checkpoint: bool = False,
        group_commit: int = 1,
        fsync: bool = True,
        commit_pipeline: bool = False,
        recover: bool = True,
        lazy: bool = False,
        tracer: Tracer | None = None,
        progress: RecoveryProgress | None = None,
    ) -> "KVDatabase":
        """Restart from durable state alone: segment files plus a disk.

        This is what a real process does after ``kill -9``: no Python
        objects survive, so the log manager is rebuilt from the segment
        directory (:meth:`~repro.logmgr.manager.LogManager.open`, which
        applies the torn-tail rule to whatever the crash left), the
        ``disk`` is whatever page store survived (a fresh empty
        :class:`~repro.storage.Disk` when pages lived nowhere durable —
        then recovery must replay the whole log, so run it with
        ``checkpoint_every=None`` workloads or ``full_scan`` semantics
        in mind), and ``recover()`` replays the stable prefix.  Pass
        ``recover=False`` to inspect the pre-recovery state.

        ``lazy=True`` is the instant-restart path: only the analysis
        phase runs before this returns — the engine serves immediately,
        each page's first access replays its own log chain through the
        buffer pool's fault hook, and a background thread drains the
        rest in recLSN order.  Once drained (``drain_lazy()`` forces
        it), the state is byte-identical to an eager cold start.
        """
        from repro.logmgr.manager import DEFAULT_SEGMENT_SIZE, LogManager

        tracer_obj = tracer if tracer is not None else NULL_TRACER
        log = LogManager.open(
            log_dir,
            segment_size=(
                log_segment_size if log_segment_size is not None else DEFAULT_SEGMENT_SIZE
            ),
            tracer=tracer_obj,
            group_commit=group_commit,
            fsync=fsync,
        )
        machine = Machine(
            cache_capacity=cache_capacity,
            cache_policy=cache_policy,
            install_policy=install_policy,
            tracer=tracer_obj,
            disk=disk,
            log=log,
            progress=progress,
        )
        db = cls(
            method=method,
            n_pages=n_pages,
            commit_every=commit_every,
            checkpoint_every=checkpoint_every,
            method_options=method_options,
            truncate_on_checkpoint=truncate_on_checkpoint,
            tracer=tracer_obj,
            commit_pipeline=commit_pipeline,
            machine=machine,
        )
        if recover:
            if not (lazy and db._begin_lazy_restart()):
                db.recover()
        return db

    def _build_metrics(self) -> MetricsRegistry:
        """One registry over every component's counters, via collectors.

        The collectors dereference ``self.method.machine`` *at snapshot
        time*, because the pool (and with it the scheduler) is replaced
        by ``reboot_pool()`` during recovery — binding the objects here
        would silently keep reading the dead incarnation.
        """
        registry = MetricsRegistry()
        registry.register_collector("method", lambda: self.method.stats.as_dict())
        registry.register_collector(
            "log",
            lambda m=self: {
                "bytes": m.method.machine.log.total_bytes(),
                "records": len(m.method.machine.log),
                "forces": m.method.machine.log.forced_flushes,
                "stable_lsn": m.method.machine.log.stable_lsn,
            },
        )
        registry.register_collector(
            "disk",
            lambda m=self: {
                "page_writes": m.method.machine.disk.page_writes,
                "bytes_written": m.method.machine.disk.bytes_written,
            },
        )
        registry.register_collector(
            "cache",
            lambda m=self: {
                "hits": m.method.machine.pool.hits,
                "misses": m.method.machine.pool.misses,
                "flushes": m.method.machine.pool.flushes,
                "evictions": m.method.machine.pool.evictions,
            },
        )
        registry.register_collector(
            "scheduler",
            lambda m=self: m.method.machine.pool.scheduler.stats.as_dict(),
        )
        registry.register_collector(
            "durable",
            lambda m=self: (
                m.method.machine.log.store.as_dict()
                if m.method.machine.log.store is not None
                else {}
            ),
        )
        registry.register_collector(
            "pipeline",
            lambda m=self: (
                m.pipeline.stats() if m.pipeline is not None else {}
            ),
        )
        return registry

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------

    def execute(self, command: KVOp) -> Any:
        """Run one command, honoring the commit/checkpoint cadence.

        Application and bookkeeping run under the engine mutex; when the
        commit cadence fires on a pipelined database, the durability
        *wait* happens after the lock is released, so other threads keep
        executing while this one's window is on the disk.
        """
        wait_lsn: int | None = None
        with self.mutex:
            kind = command[0]
            if self.tracer.enabled:
                self.tracer.event("engine.command", kind=kind, key=command[1])
            result = self.method.apply(command)
            if kind in ("put", "add", "copyadd", "delete"):
                self.applied.append(command)
                self._since_commit += 1
                self._since_checkpoint += 1
                if self._since_commit >= self.commit_every:
                    if self.pipeline is not None:
                        wait_lsn = self.method.machine.log.next_lsn - 1
                        self._since_commit = 0
                    else:
                        self.commit()
                if (
                    self.checkpoint_every is not None
                    and self._since_checkpoint >= self.checkpoint_every
                ):
                    self.checkpoint()
                if self.track_theory:
                    self.theory_tracker().sync()
        if wait_lsn is not None:
            self.pipeline.commit(wait_lsn)
        return result

    def run(self, stream: Sequence[KVOp]) -> None:
        """Execute every command of ``stream`` in order."""
        for command in stream:
            self.execute(command)

    def session(self, commit_every: int | None = None) -> "Session":
        """A per-client command stream over this shared database.

        ``commit_every`` is the session's own commit cadence (default:
        the database's).  Sessions are cheap — a server creates one per
        connection — and any number may execute concurrently.
        """
        with self.mutex:
            session_id = self._next_session_id
            self._next_session_id += 1
        return Session(
            self,
            session_id,
            commit_every=(
                commit_every if commit_every is not None else self.commit_every
            ),
        )

    def commit(self) -> None:
        """Force the log; resets the operation-batching counter.

        On a durable log with ``group_commit=N``, a commit *requests* a
        force but only every Nth request pays the fsync — operations of
        a not-yet-synced batch are still volatile (``durable_count``
        says so).  With ``commit_pipeline=True`` the request instead
        joins the cross-session window and blocks until its records are
        stable.  Use :meth:`sync` for a hard durability point.
        """
        if self.pipeline is not None:
            with self.mutex:
                lsn = self.method.machine.log.next_lsn - 1
                self._since_commit = 0
            self.pipeline.commit(lsn)
            return
        with self.mutex:
            self.method.commit()
            self._since_commit = 0

    def sync(self) -> None:
        """Commit with a barrier: everything issued so far is durable on
        return, regardless of the group-commit batch state or any
        in-flight pipeline window (barriers serialize on the log's force
        lock and advance the same stable watermark).  On an in-memory
        log this is identical to :meth:`commit`."""
        with self.mutex:
            self._since_commit = 0
        self.method.machine.log.flush(barrier=True)

    def quiesce(self) -> None:
        """Make the state wholly stable without appending to the log:
        barrier-force, then flush every volatile overlay (dirty pool
        pages; logical's object cache via a root swing).  Afterwards the
        disk snapshot plus the segment files alone reproduce this exact
        state — the handoff point the sharded cold start ships between
        processes.  Idempotent, unlike :meth:`checkpoint`."""
        with self.mutex:
            self.drain_lazy()
            self._since_commit = 0
            self.method.quiesce()

    def checkpoint(self) -> None:
        """Take a method checkpoint; resets the cadence counter.

        A pending lazy-restart backlog is drained first: a fuzzy
        checkpoint logs the pool's live dirty-page table, which cannot
        see pages whose replay has not happened yet — checkpointing past
        them would cut them out of the next analysis.
        """
        with self.mutex:
            self.drain_lazy()
            span = self.tracer.span("checkpoint", method=self.method_name)
            self.method.checkpoint()
            retired = 0
            if self.truncate_on_checkpoint:
                retired = self.method.truncate_log()
            self._since_checkpoint = 0
            span.end(
                stable_lsn=self.method.machine.log.stable_lsn,
                records_retired=retired,
            )

    def get(self, key: str) -> Any:
        """Read ``key`` through the method's cache."""
        return self.method.get(key)

    # ------------------------------------------------------------------
    # Theory audit
    # ------------------------------------------------------------------

    def theory_tracker(self) -> Any:
        """The incremental audit tracker for this database (created on
        first use; the import is lazy to avoid an engine <-> sim cycle)."""
        if self._theory_tracker is None:
            from repro.sim.audit import AuditTracker

            self._theory_tracker = AuditTracker(self.method)
        return self._theory_tracker

    def theory_audit(self, instant: int = -1) -> Any:
        """Evaluate the Recovery Invariant against the stable log right
        now, via the incrementally maintained graphs."""
        return self.theory_tracker().audit(instant)

    # ------------------------------------------------------------------
    # Crash / recovery / verification
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose the cache and the unforced log tail.

        An active commit pipeline is *aborted*, not drained — the crash
        must lose the volatile tail, not flush it on the way down.
        Likewise a lazy-restart backlog is *abandoned*, not replayed:
        its records are stable in the log and the next incarnation's
        analysis will find them again.
        """
        self._stop_lazy()
        if self.pipeline is not None:
            self.pipeline.close(abort=True)
            self.pipeline = None
        with self.mutex:
            if self.tracer.enabled:
                self.tracer.event(
                    "engine.crash",
                    stable_lsn=self.method.machine.log.stable_lsn,
                    lost_tail=self.method.machine.log.next_lsn
                    - 1
                    - self.method.machine.log.stable_lsn,
                )
            self.method.crash()

    def recover(self) -> None:
        """Run the method's recovery procedure (and restart the commit
        pipeline, if this database was configured with one)."""
        self._stop_lazy()
        with self.mutex:
            self.method.recover()
            if self._commit_pipeline_enabled and self.pipeline is None:
                self.pipeline = GroupCommitPipeline(self.method.machine.log)

    # ------------------------------------------------------------------
    # Lazy restart (serve during recovery)
    # ------------------------------------------------------------------

    def _begin_lazy_restart(self) -> bool:
        """Run analysis only and start serving; redo happens per page.

        The method's :meth:`~repro.methods.base.RecoveryMethodKV.begin_lazy_recovery`
        builds the replay plan (installing itself as the buffer pool's
        fault hook), and a daemon thread drains the backlog in recLSN
        order behind the foreground traffic.  Returns False when the
        method has no lazy path — the caller falls back to eager
        recovery.
        """
        with self.mutex:
            plan = self.method.begin_lazy_recovery()
            if plan is None:
                return False
            self._lazy_plan = plan
            if self._commit_pipeline_enabled and self.pipeline is None:
                self.pipeline = GroupCommitPipeline(self.method.machine.log)
            progress = self.method.machine.progress
            if progress.enabled:
                progress.set_phase("background-replay")
            self._lazy_stop = threading.Event()
            self._lazy_thread = threading.Thread(
                target=self._drain_lazy_backlog, name="lazy-redo", daemon=True
            )
            self._lazy_thread.start()
        return True

    def _drain_lazy_backlog(self) -> None:
        plan, stop = self._lazy_plan, self._lazy_stop
        while stop is not None and not stop.is_set():
            if not plan.step():
                break
        if plan.done and stop is not None and not stop.is_set():
            progress = self.method.machine.progress
            if progress.enabled:
                progress.finish()
            if self.tracer.enabled:
                self.tracer.event(
                    "engine.lazy_drained",
                    records=plan.records_fetched,
                )

    def drain_lazy(self) -> None:
        """Synchronously finish any pending background replay.

        A no-op after an eager start or once the backlog is gone.  The
        byte-identity contract holds from here on: the state equals an
        eager cold start's.
        """
        plan = self._lazy_plan
        if plan is not None:
            plan.drain()

    def _stop_lazy(self) -> None:
        """Abandon any lazy restart in progress (crash/shutdown): stop
        the drainer and detach the plan; unreplayed records stay in the
        log for the next incarnation."""
        stop, thread, plan = self._lazy_stop, self._lazy_thread, self._lazy_plan
        if stop is not None:
            stop.set()
        if plan is not None:
            plan.close()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._lazy_plan = None
        self._lazy_thread = None
        self._lazy_stop = None

    def replay_backlog(self) -> int:
        """Pages (records, for logical) still awaiting lazy replay."""
        plan = self._lazy_plan
        return 0 if plan is None else plan.backlog()

    def close(self) -> None:
        """Shut down cleanly: finish any background replay, then drain
        the commit pipeline (one last window covers every appended
        record) and stop its committer thread."""
        self.drain_lazy()
        self._stop_lazy()
        if self.pipeline is not None:
            self.pipeline.close()
            self.pipeline = None

    def crash_and_recover(self) -> None:
        """Crash, then recover — one full fault cycle."""
        self.crash()
        self.recover()

    def durable_count(self) -> int:
        """Operations that would survive a crash right now."""
        return self.method.durable_count()

    def verify_against(self, mutation_stream: Sequence[KVOp] | None = None) -> int:
        """Check the durability contract; returns the durable count.

        ``mutation_stream`` defaults to the mutations this database has
        executed (gets excluded).  The recovered state must equal the
        oracle applied to the durable prefix.
        """
        mutations = (
            [c for c in mutation_stream if c[0] in ("put", "add", "copyadd", "delete")]
            if mutation_stream is not None
            else self.applied
        )
        durable = self.durable_count()
        if durable > len(mutations):
            raise VerificationError(
                f"durable count {durable} exceeds mutations issued {len(mutations)}"
            )
        expected = apply_to_oracle(mutations[:durable])
        actual = self.method.dump()
        if actual != expected:
            missing = {k: v for k, v in expected.items() if actual.get(k) != v}
            extra = {k: v for k, v in actual.items() if expected.get(k) != v}
            raise VerificationError(
                f"recovered state diverges from the durable prefix of "
                f"{durable} operations; missing/wrong={missing!r} extra={extra!r}"
            )
        return durable

    # ------------------------------------------------------------------
    # Stats for benchmarks
    # ------------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Every component's counters, namespaced, plus identity labels.

        Built from the metrics registry's snapshot — each counter
        arrives as ``namespace.key`` and is reported as
        ``namespace_key`` (``method_records_replayed``, ``log_forces``,
        ``scheduler_elisions``, ...).  The registry raises on any name
        collision, and the underscore flattening is re-checked here, so
        the historical silent-overwrite hazard of merging flat dicts is
        structurally gone.
        """
        stats: dict[str, Any] = {}
        for name, value in self.metrics.snapshot().items():
            key = name.replace(".", "_")
            assert key not in stats, f"report key collision on {key!r}"
            stats[key] = value
        for label, value in (
            ("method", self.method_name),
            ("install_policy", self.method.machine.pool.install_policy),
        ):
            assert label not in stats, f"report key collision on {label!r}"
            stats[label] = value
        return stats

    def health(self) -> dict[str, Any]:
        """The liveness essentials, cheap enough to poll.

        ``pipeline_depth`` is the volatile log tail in records (appended
        but not yet stable — what a crash right now would lose);
        ``dirty_pages`` reads the install scheduler's live dirty-page
        table (:meth:`~repro.cache.scheduler.InstallScheduler.rec_lsns`),
        the same table a post-crash analysis pass would reconstruct.
        """
        with self.mutex:
            log = self.method.machine.log
            stable = log.stable_lsn
            next_lsn = log.next_lsn
            dirty = len(self.method.machine.pool.scheduler.rec_lsns())
        backlog = self.replay_backlog()
        return {
            "method": self.method_name,
            "stable_lsn": stable,
            "next_lsn": next_lsn,
            "pipeline_depth": max(0, next_lsn - 1 - stable),
            "dirty_pages": dirty,
            "operations": self.method.stats.operations,
            "recoveries": self.method.stats.recoveries,
            "replay_backlog": backlog,
            "state": "recovering" if backlog else "ready",
        }


class Session:
    """One client's command stream against a shared :class:`KVDatabase`.

    A session owns nothing but cadence state: a commit counter and the
    LSN of its last mutation.  Application is serialized by the engine
    mutex; :meth:`commit` waits for durability of *this session's*
    records — through the cross-session pipeline when the database has
    one (many sessions, one fsync per window), otherwise by forcing the
    log itself (the per-session-forcing baseline the E19 benchmark
    measures against).  Mutation order in ``db.applied`` is the engine
    mutex's acquisition order, which is also log order, so the
    durable-prefix oracle remains exact under any interleaving.
    """

    def __init__(self, db: KVDatabase, session_id: int, commit_every: int = 1):
        self.db = db
        self.session_id = session_id
        self.commit_every = max(1, commit_every)
        self.ops = 0
        self.commits = 0
        self.last_lsn = -1
        self._since_commit = 0

    def execute(self, command: KVOp) -> Any:
        """Apply one command; auto-commits on this session's cadence."""
        db = self.db
        with db.mutex:
            kind = command[0]
            if db.tracer.enabled:
                db.tracer.event(
                    "engine.command",
                    kind=kind,
                    key=command[1],
                    session=self.session_id,
                )
            result = db.method.apply(command)
            if kind in ("put", "add", "copyadd", "delete"):
                db.applied.append(command)
                self.last_lsn = db.method.machine.log.next_lsn - 1
                self.ops += 1
                self._since_commit += 1
                db._since_checkpoint += 1
                if (
                    db.checkpoint_every is not None
                    and db._since_checkpoint >= db.checkpoint_every
                ):
                    db.checkpoint()
                if db.track_theory:
                    db.theory_tracker().sync()
        if self._since_commit >= self.commit_every:
            self.commit()
        return result

    def run(self, stream: Sequence[KVOp]) -> None:
        """Execute every command of ``stream`` in order."""
        for command in stream:
            self.execute(command)

    def commit(self) -> int:
        """Block until this session's records are stable; returns the
        stable LSN observed on return (>= this session's last LSN)."""
        self._since_commit = 0
        self.commits += 1
        db = self.db
        if self.last_lsn < 0:
            return db.method.machine.log.stable_lsn
        if db.pipeline is not None:
            return db.pipeline.commit(self.last_lsn)
        # Per-session forcing: this session pays its own force (and,
        # modulo the manager's group_commit counter, its own fsync).
        with db.mutex:
            db.method.commit()
        return db.method.machine.log.stable_lsn

    def sync(self) -> int:
        """Hard barrier: everything appended so far — all sessions' —
        is durable on return."""
        self._since_commit = 0
        db = self.db
        db.method.machine.log.flush(barrier=True)
        return db.method.machine.log.stable_lsn

    def get(self, key: str) -> Any:
        """Read ``key`` through the shared method cache."""
        with self.db.mutex:
            return self.db.method.get(key)

    def __repr__(self) -> str:
        return (
            f"Session(#{self.session_id} ops={self.ops} "
            f"commits={self.commits} last_lsn={self.last_lsn})"
        )
