"""The System R-style shadow store (§6.1 substrate).

System R keeps the stable database unchanged between checkpoints: updated
pages accumulate in a *staging area*, and writing a checkpoint record
"swings a pointer" that atomically replaces the stable versions with the
staged ones.  We model this as two page directories on one disk — the
*current* directory (stable state) and the *shadow* directory (staging
area) — plus a one-cell root page holding which directory is current.
Swinging the pointer is a single atomic page write, which is exactly the
atomicity the paper's argument needs.

After a crash, whatever the root page points at is the stable state; any
half-filled staging area is simply garbage-collected.
"""

from __future__ import annotations

from repro.storage.disk import Disk
from repro.storage.page import Page

ROOT_PAGE_ID = "__root__"


class ShadowStore:
    """Two page directories with an atomically swung root pointer."""

    def __init__(self, disk: Disk):
        self.disk = disk
        if not disk.has_page(ROOT_PAGE_ID):
            root = Page(ROOT_PAGE_ID, {"current": "A", "checkpoint_lsn": -1})
            disk.write_page(root)

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------

    def current_directory(self) -> str:
        """The directory name the root pointer designates as stable."""
        return self.disk.read_page(ROOT_PAGE_ID).get("current")

    def staging_directory(self) -> str:
        """The other directory — where staged versions accumulate."""
        return "B" if self.current_directory() == "A" else "A"

    def checkpoint_lsn(self) -> int:
        """LSN recorded by the last pointer swing (-1 before the first)."""
        return self.disk.read_page(ROOT_PAGE_ID).get("checkpoint_lsn")

    def _qualify(self, directory: str, page_id: str) -> str:
        return f"{directory}:{page_id}"

    # ------------------------------------------------------------------
    # Reads and staged writes
    # ------------------------------------------------------------------

    def read_current(self, page_id: str) -> Page:
        """The stable version of ``page_id`` (KeyError if never written)."""
        raw = self.disk.read_page(self._qualify(self.current_directory(), page_id))
        return Page(page_id, dict(raw.cells), raw.lsn)

    def has_current(self, page_id: str) -> bool:
        """Does the stable directory hold a version of ``page_id``?"""
        return self.disk.has_page(self._qualify(self.current_directory(), page_id))

    def current_page_ids(self) -> list[str]:
        """Sorted logical page ids present in the stable directory."""
        prefix = self.current_directory() + ":"
        return sorted(
            page_id[len(prefix):]
            for page_id in self.disk.page_ids()
            if page_id.startswith(prefix)
        )

    def stage_page(self, page: Page) -> None:
        """Write a page version into the staging area.  The stable state
        is untouched until :meth:`swing_pointer`."""
        self.stage_pages((page,))

    def stage_pages(self, pages) -> None:
        """Stage a whole batch of page versions at once.

        The batched form of :meth:`stage_page`: the staging directory is
        resolved from the root page once per batch instead of once per
        page (the root read is a full page copy), mirroring the batched
        window treatment on the log's append path.  The stable state is
        untouched until :meth:`swing_pointer`.
        """
        staging = self.staging_directory()
        write_page = self.disk.write_page
        for page in pages:
            write_page(
                Page(
                    self._qualify(staging, page.page_id),
                    dict(page.cells),
                    page.lsn,
                )
            )

    # ------------------------------------------------------------------
    # The atomic installation
    # ------------------------------------------------------------------

    def swing_pointer(self, checkpoint_lsn: int) -> None:
        """Atomically make the staging area the stable state (§6.1).

        Pages the staging area did not update are carried over first (a
        real shadow directory shares their entries; copying models that
        sharing without a page-table indirection).  The final root write
        is the single atomic action that installs every staged operation
        and moves them out of ``redo_set`` at once.
        """
        current, staging = self.current_directory(), self.staging_directory()
        for page_id in self.current_page_ids():
            staged_id = self._qualify(staging, page_id)
            if not self.disk.has_page(staged_id):
                carried = self.disk.read_page(self._qualify(current, page_id))
                self.disk.write_page(Page(staged_id, dict(carried.cells), carried.lsn))
        root = Page(
            ROOT_PAGE_ID,
            {"current": staging, "checkpoint_lsn": checkpoint_lsn},
        )
        self.disk.write_page(root)  # THE atomic pointer swing
        self._scrub(current)

    def _scrub(self, directory: str) -> None:
        """Garbage-collect the now-shadow directory so the next staging
        round starts clean (what System R's allocator reclaim does)."""
        prefix = directory + ":"
        for page_id in list(self.disk.page_ids()):
            if page_id.startswith(prefix):
                self.disk.drop_page(page_id)

    def abandon_staging(self) -> None:
        """Drop any half-built staging area (post-crash cleanup)."""
        self._scrub(self.staging_directory())

    def __repr__(self) -> str:
        return (
            f"ShadowStore(current={self.current_directory()!r}, "
            f"pages={len(self.current_page_ids())})"
        )
