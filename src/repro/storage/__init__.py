"""Simulated stable storage.

The paper's theory is indifferent to how state is physically stored; the
§6 methods, however, rely on one hardware fact — a *page write is atomic*
— and on the failure model that a crash loses everything volatile and
nothing stable.  This package provides exactly that substrate:

- :class:`~repro.storage.page.Page` — a page of key/value cells tagged
  with an LSN (§6.3's page tag);
- :class:`~repro.storage.disk.Disk` — atomic page writes, crash-immune
  contents, write counters, and optional fault injection (lost and torn
  writes) for failure-injection tests;
- :class:`~repro.storage.shadow.ShadowStore` — the System R-style staging
  area with an atomically swung root pointer (§6.1's substitution: the
  paper's description of System R maps to a shadow page directory).
"""

from repro.storage.page import Page
from repro.storage.disk import Disk, DiskFault, LostWriteFault, TornWriteFault
from repro.storage.shadow import ShadowStore

__all__ = [
    "Disk",
    "DiskFault",
    "LostWriteFault",
    "Page",
    "ShadowStore",
    "TornWriteFault",
]
