"""Pages: the unit of atomic stable-state update.

A page holds named cells (key → value).  Cells stand in for byte ranges;
:meth:`Page.size_bytes` gives a deterministic size estimate used by the
log-volume experiments, computed from the repr of the contents so that
bigger values genuinely cost more.

Each page carries ``lsn`` — "each page of the system state is tagged with
the LSN of the last operation that updated it" (§6.3).  Methods that do
not use LSNs simply leave the tag at its initial ``-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

UNTAGGED = -1


@dataclass
class Page:
    """A mutable page of cells with an LSN tag."""

    page_id: str
    cells: dict[str, Any] = field(default_factory=dict)
    lsn: int = UNTAGGED

    def get(self, cell: str, default: Any = None) -> Any:
        """The cell's value, or ``default`` if absent."""
        return self.cells.get(cell, default)

    def put(self, cell: str, value: Any, lsn: int | None = None) -> None:
        """Write one cell, optionally advancing the page LSN tag."""
        self.cells[cell] = value
        if lsn is not None:
            self.stamp(lsn)

    def delete(self, cell: str, lsn: int | None = None) -> None:
        """Remove one cell, optionally advancing the page LSN tag."""
        self.cells.pop(cell, None)
        if lsn is not None:
            self.stamp(lsn)

    def stamp(self, lsn: int) -> None:
        """Advance the page LSN tag (LSNs increase monotonically, §6.3)."""
        if lsn < self.lsn:
            raise ValueError(
                f"page {self.page_id}: LSN must not regress "
                f"({lsn} < {self.lsn})"
            )
        self.lsn = lsn

    def copy(self) -> "Page":
        """An independent snapshot (cells shallow-copied; values are
        treated as immutable throughout the library)."""
        return Page(self.page_id, dict(self.cells), self.lsn)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self.cells.items()))

    def __len__(self) -> int:
        return len(self.cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Page):
            return NotImplemented
        return (
            self.page_id == other.page_id
            and self.cells == other.cells
            and self.lsn == other.lsn
        )

    def same_contents(self, other: "Page") -> bool:
        """Equality ignoring the LSN tag (some methods do not maintain it)."""
        return self.page_id == other.page_id and self.cells == other.cells

    def size_bytes(self) -> int:
        """Deterministic size estimate for log/IO accounting."""
        return sum(len(repr(k)) + len(repr(v)) for k, v in self.cells.items()) + 16

    def __repr__(self) -> str:
        return f"Page({self.page_id!r}, cells={len(self.cells)}, lsn={self.lsn})"
