"""The simulated disk: atomic page writes, crash-immune contents.

The failure model is the standard one:

- :meth:`Disk.write_page` installs a page image atomically — after a
  crash the disk holds either the old image or the new one, never a mix
  (unless a :class:`TornWriteFault` is armed, which is exactly the
  violation the fault-injection tests use to show the model's assumptions
  are load-bearing);
- a crash loses nothing on disk and everything not on disk.

The disk counts writes and bytes so benchmarks can report IO alongside
log volume.
"""

from __future__ import annotations

from typing import Iterator

from repro.storage.page import Page


class DiskFault(Exception):
    """Base for injected faults.  Faults are armed, not raised: they
    silently corrupt the next matching write, the way real firmware bugs
    do; this class exists so tests can mark fault *kinds*."""


class LostWriteFault:
    """The next write to ``page_id`` is silently dropped."""

    def __init__(self, page_id: str):
        self.page_id = page_id
        self.fired = False


class TornWriteFault:
    """The next write to ``page_id`` applies only cells < ``keep_cells``
    (in sorted order), simulating a torn multi-sector write."""

    def __init__(self, page_id: str, keep_cells: int = 1):
        self.page_id = page_id
        self.keep_cells = keep_cells
        self.fired = False


class Disk:
    """A dictionary of page images with atomic replacement semantics."""

    def __init__(self):
        self._pages: dict[str, Page] = {}
        self.page_writes = 0
        self.bytes_written = 0
        self._faults: list[LostWriteFault | TornWriteFault] = []

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------

    def write_page(self, page: Page) -> None:
        """Atomically install a snapshot of ``page``."""
        self.page_writes += 1
        self.bytes_written += page.size_bytes()
        fault = self._pop_fault(page.page_id)
        if isinstance(fault, LostWriteFault):
            return
        image = page.copy()
        if isinstance(fault, TornWriteFault):
            old = self._pages.get(page.page_id)
            merged = old.copy() if old is not None else Page(page.page_id)
            for index, (cell, value) in enumerate(image):
                if index >= fault.keep_cells:
                    break
                merged.cells[cell] = value
            merged.lsn = max(merged.lsn, image.lsn)
            image = merged
        self._pages[page.page_id] = image

    def read_page(self, page_id: str) -> Page:
        """A snapshot of the stored image (callers may mutate their copy)."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id!r} not on disk")
        return self._pages[page_id].copy()

    def has_page(self, page_id: str) -> bool:
        """Is there a stored image for ``page_id``?"""
        return page_id in self._pages

    def page_ids(self) -> list[str]:
        """Sorted ids of every stored page."""
        return sorted(self._pages)

    def pages(self) -> Iterator[Page]:
        """Snapshots of every stored page, in id order."""
        for page_id in self.page_ids():
            yield self._pages[page_id].copy()

    def drop_page(self, page_id: str) -> None:
        """Remove a page image (shadow-directory garbage collection)."""
        self._pages.pop(page_id, None)

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> "Disk":
        """A crash leaves the disk exactly as it is.  Returns self so
        harness code reads naturally (``disk = machine.disk.crash()``)."""
        return self

    def arm_fault(self, fault: LostWriteFault | TornWriteFault) -> None:
        """Queue a fault to corrupt the next matching write."""
        self._faults.append(fault)

    def _pop_fault(self, page_id: str):
        for fault in self._faults:
            if fault.page_id == page_id and not fault.fired:
                fault.fired = True
                self._faults.remove(fault)
                return fault
        return None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Page]:
        """A full image of the disk (for oracles and assertions)."""
        return {page_id: page.copy() for page_id, page in self._pages.items()}

    def __repr__(self) -> str:
        return f"Disk(pages={len(self._pages)}, writes={self.page_writes})"
