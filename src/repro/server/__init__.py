"""A threaded network front-end over one shared :class:`KVDatabase`.

The server (:mod:`repro.server.server`) multiplexes many client
connections onto one engine: each connection gets its own
:class:`~repro.engine.kv.Session`, command application serializes on the
engine mutex, and commits fan into the cross-session group-commit
pipeline — which is where the throughput comes from (one fsync per
window, not per client).  The protocol is line-delimited JSON, small
enough to drive with ``nc`` and exact enough for the crash tests: a
``commit`` reply is a durability promise the post-``kill -9`` oracle
holds the server to.

:mod:`repro.server.client` is the matching blocking client;
:mod:`repro.server.harness` drives thousands of *simulated* clients
(sessions multiplexed over a bounded worker pool, in-process or over
sockets) and measures commit throughput — the E19 experiment.
"""

from repro.server.client import KVClient
from repro.server.harness import LoadResult, run_simulated_clients
from repro.server.server import KVServer
from repro.server.top import render_top, run_top

__all__ = [
    "KVClient",
    "KVServer",
    "LoadResult",
    "render_top",
    "run_simulated_clients",
    "run_top",
]
