"""A small blocking client for the line-delimited JSON KV protocol."""

from __future__ import annotations

import json
import socket
import time
from typing import Any


class ServerError(RuntimeError):
    """The server replied ``{"ok": false, ...}``."""


class KVClient:
    """One connection to a :class:`~repro.server.server.KVServer`.

    Blocking, one request in flight at a time — which is exactly a
    *session*: the server binds this connection to one engine session,
    so :meth:`commit` is a durability barrier for this client's own
    mutations.  Not thread-safe; give each thread its own client.

    ``retries=N`` (default 0: off) arms bounded reconnect-and-retry
    with exponential backoff against the connection-level failures a
    server restart produces — refused connects while the listener is
    down, resets and half-closed sockets when it dies mid-request.
    The retried request is re-sent on a *fresh connection*, i.e. a
    fresh server session: at-least-once delivery, so it is only safe
    for idempotent traffic or harnesses that reconcile against the
    durable prefix afterwards (the E21 shard-restart window does).
    Protocol-level errors (:class:`ServerError`) are never retried —
    the server answered; retrying would just repeat the refusal.
    """

    # What a restart window looks like from the client side.  Timeouts
    # are deliberately excluded: a slow fsync is not a dead server, and
    # re-sending over a socket that may yet answer would double-apply.
    _RETRYABLE = (
        ConnectionError,  # reset, refused, aborted, our "closed" below
        BrokenPipeError,
        OSError,
    )

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
    ):
        self._address = (host, port)
        self._timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._rfile = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            self._address, timeout=self._timeout
        )
        self._rfile = self._sock.makefile("rb")

    def _teardown(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, **payload: Any) -> dict[str, Any]:
        """Send one request object; return the reply, raising on error.

        With ``retries=0`` any connection failure propagates.  Otherwise
        up to ``retries`` reconnect-and-resend rounds are attempted
        before the last failure propagates.  The redial itself rides
        under the same budget: a refused connect while the listener is
        still down burns one more attempt, backed off exponentially —
        that is what lets a client coast over a restart window.
        """
        line = json.dumps(payload).encode() + b"\n"
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self._connect()
                    if attempt:
                        self.reconnects += 1
                self._sock.sendall(line)
                reply_line = self._rfile.readline()
                if not reply_line:
                    raise ConnectionError("server closed the connection")
                break
            except socket.timeout:
                raise
            except self._RETRYABLE:
                self._teardown()
                if attempt >= self.retries:
                    raise
                time.sleep(self.backoff * (2**attempt))
                attempt += 1
        reply = json.loads(reply_line)
        if not reply.get("ok"):
            raise ServerError(reply.get("error", "unknown server error"))
        return reply

    # Convenience verbs -------------------------------------------------

    def put(self, key: str, value: int) -> int:
        """Write ``key``; returns the LSN of the logged mutation."""
        return self.request(op="put", key=key, value=value)["lsn"]

    def add(self, key: str, value: int) -> int:
        """Read-modify-write increment; returns the mutation's LSN."""
        return self.request(op="add", key=key, value=value)["lsn"]

    def copyadd(self, key: str, src: str, value: int) -> int:
        """Cross-key read-then-write (logical/physical methods only)."""
        return self.request(op="copyadd", key=key, src=src, value=value)["lsn"]

    def delete(self, key: str) -> int:
        """Delete ``key``; returns the mutation's LSN."""
        return self.request(op="delete", key=key)["lsn"]

    def get(self, key: str) -> Any:
        """Read ``key`` (``None`` when absent)."""
        return self.request(op="get", key=key)["value"]

    def commit(self) -> int:
        """Block until this session's mutations are durable."""
        return self.request(op="commit")["stable_lsn"]

    def sync(self) -> int:
        """Hard barrier over every session's mutations."""
        return self.request(op="sync")["stable_lsn"]

    def stats(self) -> dict[str, Any]:
        """Server + engine counters (sessions, pipeline, method stats,
        per-op latency quantiles under ``stats()["latency"]``)."""
        return self.request(op="stats")["stats"]

    def health(self) -> dict[str, Any]:
        """Liveness essentials: uptime, sessions, stable LSNs, pipeline
        depth, dirty pages (per shard on a sharded deployment)."""
        return self.request(op="health")["health"]

    def ping(self) -> bool:
        """Liveness check; True when the server answers."""
        return bool(self.request(op="ping").get("pong"))

    def close(self) -> None:
        """Say goodbye (best effort) and close the socket."""
        if self._sock is not None:
            try:
                self._sock.sendall(b'{"op": "quit"}\n')
            except OSError:
                pass
        self._teardown()

    def __enter__(self) -> "KVClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
