"""A small blocking client for the line-delimited JSON KV protocol."""

from __future__ import annotations

import json
import socket
from typing import Any


class ServerError(RuntimeError):
    """The server replied ``{"ok": false, ...}``."""


class KVClient:
    """One connection to a :class:`~repro.server.server.KVServer`.

    Blocking, one request in flight at a time — which is exactly a
    *session*: the server binds this connection to one engine session,
    so :meth:`commit` is a durability barrier for this client's own
    mutations.  Not thread-safe; give each thread its own client.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def request(self, **payload: Any) -> dict[str, Any]:
        """Send one request object; return the reply, raising on error."""
        self._sock.sendall(json.dumps(payload).encode() + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = json.loads(line)
        if not reply.get("ok"):
            raise ServerError(reply.get("error", "unknown server error"))
        return reply

    # Convenience verbs -------------------------------------------------

    def put(self, key: str, value: int) -> int:
        """Write ``key``; returns the LSN of the logged mutation."""
        return self.request(op="put", key=key, value=value)["lsn"]

    def add(self, key: str, value: int) -> int:
        """Read-modify-write increment; returns the mutation's LSN."""
        return self.request(op="add", key=key, value=value)["lsn"]

    def copyadd(self, key: str, src: str, value: int) -> int:
        """Cross-key read-then-write (logical/physical methods only)."""
        return self.request(op="copyadd", key=key, src=src, value=value)["lsn"]

    def delete(self, key: str) -> int:
        """Delete ``key``; returns the mutation's LSN."""
        return self.request(op="delete", key=key)["lsn"]

    def get(self, key: str) -> Any:
        """Read ``key`` (``None`` when absent)."""
        return self.request(op="get", key=key)["value"]

    def commit(self) -> int:
        """Block until this session's mutations are durable."""
        return self.request(op="commit")["stable_lsn"]

    def sync(self) -> int:
        """Hard barrier over every session's mutations."""
        return self.request(op="sync")["stable_lsn"]

    def stats(self) -> dict[str, Any]:
        """Server + engine counters (sessions, pipeline, method stats)."""
        return self.request(op="stats")["stats"]

    def ping(self) -> bool:
        """Liveness check; True when the server answers."""
        return bool(self.request(op="ping").get("pong"))

    def close(self) -> None:
        """Say goodbye (best effort) and close the socket."""
        try:
            self._sock.sendall(b'{"op": "quit"}\n')
        except OSError:
            pass
        self._rfile.close()
        self._sock.close()

    def __enter__(self) -> "KVClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
