"""``repro top``: a polling terminal dashboard over the wire protocol.

Zero-dependency ``top`` for a live deployment: polls ``stats`` +
``health`` over one :class:`~repro.server.client.KVClient` connection
and renders per-shard liveness (stable LSN, volatile pipeline depth,
dirty pages), deployment throughput rates (ops/commits/fsyncs per
second, from deltas between polls), and the server's per-op latency
quantiles (p50/p95/p99 from the log-scale histograms).

Single-shot mode (``--once``) renders one snapshot without rates and
exits — the CI-friendly form, and the building block for scripts.
"""

from __future__ import annotations

import time
from typing import Any

_CLEAR = "\x1b[2J\x1b[H"


def _total(stats: dict[str, Any], suffix: str) -> int:
    """Sum a counter across shards: ``suffix`` + every ``shardNN_suffix``."""
    total = 0
    for key, value in stats.items():
        if key == suffix or key.endswith("_" + suffix):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                total += value
    return int(total)


def _fmt_seconds(seconds: float) -> str:
    """A latency as a human unit (ns/µs/ms/s)."""
    if seconds <= 0:
        return "0"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def _rate(now: int, before: int | None, dt: float | None) -> str:
    if before is None or not dt or dt <= 0:
        return "-"
    return f"{(now - before) / dt:,.0f}/s"


def render_top(
    address: tuple[str, int],
    stats: dict[str, Any],
    health: dict[str, Any],
    prev_stats: dict[str, Any] | None = None,
    dt: float | None = None,
) -> str:
    """One dashboard frame, as a multi-line string."""
    host, port = address
    lines: list[str] = []
    telemetry = "on" if stats.get("telemetry") else "off"
    lines.append(
        f"repro top — {host}:{port} — uptime {health.get('uptime_s', 0.0):.1f}s "
        f"— sessions {health.get('sessions_active', 0)} active / "
        f"{health.get('sessions_served', 0)} served — telemetry {telemetry}"
    )

    ops = _total(stats, "method_operations")
    commits = _total(stats, "pipeline_commits")
    fsyncs = _total(stats, "durable_fsyncs")
    forces = _total(stats, "log_forces")
    prev = prev_stats or {}
    lines.append(
        f"throughput: ops={ops:,} ({_rate(ops, _total(prev, 'method_operations') if prev else None, dt)})"
        f"  commits={commits:,} ({_rate(commits, _total(prev, 'pipeline_commits') if prev else None, dt)})"
        f"  fsyncs={fsyncs:,} ({_rate(fsyncs, _total(prev, 'durable_fsyncs') if prev else None, dt)})"
        f"  log-forces={forces:,}"
    )

    shards = health.get("shards")
    if shards:
        lines.append("")
        lines.append(
            f"{'shard':>5}  {'stable_lsn':>10}  {'depth':>5}  "
            f"{'dirty':>5}  {'ops':>10}  {'recoveries':>10}  "
            f"{'backlog':>7}  {'state':<10}"
        )
        for index, shard in enumerate(shards):
            lines.append(
                f"{index:>5}  {shard.get('stable_lsn', -1):>10}  "
                f"{shard.get('pipeline_depth', 0):>5}  "
                f"{shard.get('dirty_pages', 0):>5}  "
                f"{shard.get('operations', 0):>10}  "
                f"{shard.get('recoveries', 0):>10}  "
                f"{shard.get('replay_backlog', 0):>7}  "
                f"{shard.get('state', 'ready'):<10}"
            )
        backlog_total = health.get("replay_backlog_total", 0)
        if backlog_total:
            lines.append(
                f"lazy restart: {backlog_total} pages awaiting replay "
                f"(deployment {health.get('state', 'recovering')})"
            )
    elif "stable_lsn" in health:
        lines.append(
            f"engine: stable_lsn={health['stable_lsn']} "
            f"depth={health.get('pipeline_depth', 0)} "
            f"dirty={health.get('dirty_pages', 0)} "
            f"method={health.get('method', '?')} "
            f"backlog={health.get('replay_backlog', 0)} "
            f"state={health.get('state', 'ready')}"
        )

    latency = stats.get("latency") or {}
    observed = {op: s for op, s in latency.items() if s.get("count")}
    if observed:
        lines.append("")
        lines.append(
            f"{'op':<10} {'count':>8} {'mean':>9} {'p50':>9} {'p95':>9} {'p99':>9}"
        )
        for op, summary in sorted(observed.items()):
            lines.append(
                f"{op:<10} {summary['count']:>8} "
                f"{_fmt_seconds(summary['mean']):>9} "
                f"{_fmt_seconds(summary['p50']):>9} "
                f"{_fmt_seconds(summary['p95']):>9} "
                f"{_fmt_seconds(summary['p99']):>9}"
            )
    elif stats.get("telemetry"):
        lines.append("no request latency observed yet")
    else:
        lines.append("latency quantiles unavailable (server telemetry off)")
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    once: bool = False,
    iterations: int | None = None,
    out=None,
) -> int:
    """Poll and render until interrupted (or once / N iterations)."""
    import sys

    from repro.server.client import KVClient

    out = out if out is not None else sys.stdout
    with KVClient(host, port) as client:
        prev_stats: dict[str, Any] | None = None
        prev_at: float | None = None
        count = 0
        while True:
            stats = client.stats()
            health = client.health()
            now = time.monotonic()
            dt = (now - prev_at) if prev_at is not None else None
            frame = render_top(
                (host, port), stats, health, prev_stats=prev_stats, dt=dt
            )
            if once or iterations is not None:
                print(frame, file=out, flush=True)
            else:
                print(_CLEAR + frame, file=out, flush=True)
            count += 1
            if once or (iterations is not None and count >= iterations):
                return 0
            prev_stats, prev_at = stats, now
            time.sleep(interval)
