"""The KV server: one engine, many connections, one commit pipeline.

Protocol: one JSON object per line, UTF-8, ``\\n``-terminated.

Requests::

    {"op": "put", "key": "a", "value": 1}
    {"op": "get", "key": "a"}
    {"op": "add", "key": "a", "value": 5}
    {"op": "delete", "key": "a"}
    {"op": "copyadd", "key": "a", "src": "b", "value": 5}
    {"op": "commit"}          # this session's records durable on reply
    {"op": "sync"}            # hard barrier over every session's records
    {"op": "stats"}           # engine + pipeline counters + latency quantiles
    {"op": "health"}          # liveness: stable LSNs, dirty pages, uptime
    {"op": "ping"}

Replies are ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``;
a malformed line gets an error reply rather than a dropped connection.

**Concurrency contract.**  Each connection runs on its own thread
(:class:`socketserver.ThreadingTCPServer`) and owns one engine
:class:`~repro.engine.kv.Session`; every engine interaction goes
through the session, whose contract (engine-mutex application, commit
waits outside the lock) makes the handler safe without any locking of
its own.  ``commit`` replies only after the session's last LSN is
stable — under the pipeline, that is one shared fsync per window, so a
thousand clients committing concurrently cost a handful of fsyncs.

**Sharded deployments.**  The server is duck-typed over its database:
anything with ``session()`` / ``report()`` / ``close()`` serves, and a
:class:`~repro.shard.ShardedDatabase` qualifies — its sessions route
each command to the key's owning shard, so the handler needs no
sharding special case and ``serve --shards N`` is the same front-end
over N engines.

**Telemetry.**  With ``telemetry=True`` (the default) every dispatched
request lands its wall-clock latency in a per-op log-scale histogram
(``server.latency.put`` / ``.get`` / ``.commit`` / …), and ``stats``
replies carry the quantile summaries (p50/p95/p99) next to the engine's
merged counter snapshot; ``health`` answers the cheap liveness
questions (per-shard stable LSN, volatile pipeline depth, dirty-page
count, uptime) without touching the full registry.  ``telemetry=False``
reduces the per-request cost to one attribute check — the E22 benchmark
bounds the difference at ≤5% of commits/s.

The budget dictates the architecture: per-*operation* tracing costs
microseconds of JSON per record, which at tens of thousands of ops/s is
a double-digit throughput tax (measured in E22) — so the default serve
telemetry never puts the engine's event firehose on the hot path.
Instead the server's own tracer (``tracer=``, teed into the on-disk
flight ring by ``repro serve``) carries the cheap-but-sufficient crash
narrative: the ``server.serve`` span (left open while serving, so a
SIGKILL renders it INTERRUPTED in the postmortem) and a **heartbeat**
event every ``heartbeat_interval`` seconds with the health snapshot —
stable LSNs, pipeline depth, dirty pages, session counts.  A few
records per second buys a postmortem that says what the deployment
looked like moments before it died; the full per-op firehose stays an
explicit opt-in (``serve --trace-ops``) with its cost documented.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from typing import Any

from repro.engine.kv import KVDatabase
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER

# Mutations a connection may issue; everything else is a control op.
MUTATIONS = ("put", "add", "copyadd", "delete")


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        """One connection's loop: bind a session, answer line by line."""
        server: KVServer = self.server  # type: ignore[assignment]
        session = server.db.session(commit_every=server.session_commit_every)
        with server.track(session):
            for raw in self.rfile:
                line = raw.strip()
                if not line:
                    continue
                try:
                    reply = self._dispatch(session, json.loads(line))
                except Exception as exc:  # noqa: BLE001 — reply, don't die
                    reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                self.wfile.write(json.dumps(reply).encode() + b"\n")
                self.wfile.flush()
                if reply.get("bye"):
                    return

    def _dispatch(self, session, request: dict) -> dict[str, Any]:
        server: KVServer = self.server  # type: ignore[assignment]
        if not server.telemetry:
            return self._dispatch_inner(session, request)
        started = time.perf_counter()
        try:
            return self._dispatch_inner(session, request)
        finally:
            server.observe_latency(
                request.get("op"), time.perf_counter() - started
            )

    def _dispatch_inner(self, session, request: dict) -> dict[str, Any]:
        op = request.get("op")
        key = request.get("key")
        if op in MUTATIONS:
            if op == "copyadd":
                value = (request["src"], request["value"])
            elif op == "delete":
                value = None
            else:
                value = request["value"]
            session.execute((op, key, value))
            return {"ok": True, "lsn": session.last_lsn}
        if op == "get":
            return {"ok": True, "value": session.get(key)}
        if op == "commit":
            return {"ok": True, "stable_lsn": session.commit()}
        if op == "sync":
            return {"ok": True, "stable_lsn": session.sync()}
        if op == "stats":
            server: KVServer = self.server  # type: ignore[assignment]
            return {"ok": True, "stats": server.stats()}
        if op == "health":
            server = self.server  # type: ignore[assignment]
            return {"ok": True, "health": server.health()}
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "quit":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


class KVServer(socketserver.ThreadingTCPServer):
    """A thread-per-connection front-end over one database — a single
    :class:`KVDatabase` or a :class:`~repro.shard.ShardedDatabase`
    (anything whose sessions speak execute/get/commit/sync/last_lsn)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        db: KVDatabase | Any,
        host: str = "127.0.0.1",
        port: int = 0,
        session_commit_every: int = 1,
        telemetry: bool = True,
        tracer: Any = None,
        heartbeat_interval: float = 1.0,
    ):
        self.db = db
        self.session_commit_every = session_commit_every
        self.telemetry = telemetry
        self.heartbeat_interval = heartbeat_interval
        self.started_at = time.monotonic()
        self._sessions_lock = threading.Lock()
        self.sessions_served = 0
        self.sessions_active = 0
        # Per-op request latency histograms, created on first sighting of
        # each op (unknown ops included — their latency is real too).
        self.metrics = MetricsRegistry()
        self._latency: dict[str, Histogram] = {}
        self._latency_lock = threading.Lock()
        # The server's own tracer — NOT necessarily the engine's: the
        # default serve configuration keeps the engine untraced (the
        # per-op firehose is too expensive for the hot path) and gives
        # the server a flight-ring tracer for the crash narrative.
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = getattr(db, "tracer", None) or NULL_TRACER
        # A span the server deliberately never closes while serving: a
        # SIGKILL leaves it open, which the postmortem renders as the
        # INTERRUPTED marker of what the process was doing when it died.
        self._serve_span = None
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        super().__init__((host, port), _Handler)
        if self.tracer.enabled:
            host_bound, port_bound = self.address
            self._serve_span = self.tracer.span(
                "server.serve", host=host_bound, port=port_bound
            )
            if self.telemetry and self.heartbeat_interval > 0:
                self._heartbeat_thread = threading.Thread(
                    target=self._heartbeat_loop,
                    name="kv-server-heartbeat",
                    daemon=True,
                )
                self._heartbeat_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is real even when 0 was asked."""
        return self.socket.getsockname()[:2]

    def track(self, session):
        """Context manager counting one connection's session lifetime."""
        server = self

        class _Track:
            def __enter__(self):
                with server._sessions_lock:
                    server.sessions_served += 1
                    server.sessions_active += 1
                return session

            def __exit__(self, *exc):
                with server._sessions_lock:
                    server.sessions_active -= 1
                return False

        return _Track()

    def observe_latency(self, op: Any, seconds: float) -> None:
        """Land one request's wall-clock latency in its op's histogram."""
        if not isinstance(op, str):
            op = "malformed"
        hist = self._latency.get(op)
        if hist is None:
            with self._latency_lock:
                hist = self._latency.get(op)
                if hist is None:
                    hist = self.metrics.histogram(f"server.latency.{op}")
                    self._latency[op] = hist
        hist.observe(seconds)

    def latency_summaries(self) -> dict[str, dict]:
        """Per-op quantile summaries for every op seen so far."""
        with self._latency_lock:
            items = list(self._latency.items())
        return {op: hist.summary() for op, hist in sorted(items)}

    def stats(self) -> dict[str, Any]:
        """Server counters, the database's merged registry snapshot (for
        a sharded deployment: every shard's counters, ``shardNN_``-
        prefixed), uptime, and per-op latency quantiles."""
        with self._sessions_lock:
            stats: dict[str, Any] = {
                "sessions_served": self.sessions_served,
                "sessions_active": self.sessions_active,
            }
        stats["uptime_s"] = time.monotonic() - self.started_at
        stats["telemetry"] = self.telemetry
        stats.update(self.db.report())
        if self.telemetry:
            stats["latency"] = self.latency_summaries()
        return stats

    def health(self) -> dict[str, Any]:
        """The cheap liveness answer: session counts, uptime, and the
        database's :meth:`~repro.engine.kv.KVDatabase.health` (per-shard
        stable LSN / pipeline depth / dirty pages when sharded)."""
        with self._sessions_lock:
            health: dict[str, Any] = {
                "sessions_served": self.sessions_served,
                "sessions_active": self.sessions_active,
            }
        health["uptime_s"] = time.monotonic() - self.started_at
        health["telemetry"] = self.telemetry
        if hasattr(self.db, "health"):
            health.update(self.db.health())
        return health

    def _heartbeat_loop(self) -> None:
        """Emit one compact health event per interval into the tracer.

        This is the flight ring's steady-state diet: a few records per
        second that say what the deployment looked like — so the
        postmortem's final events carry the last known stable LSNs even
        though no per-op event was ever traced.
        """
        while not self._heartbeat_stop.wait(self.heartbeat_interval):
            try:
                health = self.db.health() if hasattr(self.db, "health") else {}
            except Exception:  # noqa: BLE001 — a dying engine stops beats
                continue
            fields: dict[str, Any] = {
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "sessions": self.sessions_active,
            }
            for key in (
                "stable_lsn",
                "pipeline_depth",
                "dirty_pages",
                "replay_backlog",
                "state",
                "n_shards",
                "stable_lsn_total",
                "pipeline_depth_total",
                "dirty_pages_total",
                "replay_backlog_total",
            ):
                if key in health:
                    fields[key] = health[key]
            if "shards" in health:
                fields["stable_lsns"] = [
                    s.get("stable_lsn", -1) for s in health["shards"]
                ]
            self.tracer.event("server.heartbeat", **fields)

    def serve_background(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread; returns it."""
        thread = threading.Thread(
            target=self.serve_forever, name="kv-server", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting, close the socket, drain the commit pipeline."""
        self.shutdown()
        self.server_close()
        self._heartbeat_stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5.0)
            self._heartbeat_thread = None
        if self._serve_span is not None:
            self._serve_span.end(clean_shutdown=True)
            self._serve_span = None
        self.db.close()
