"""The KV server: one engine, many connections, one commit pipeline.

Protocol: one JSON object per line, UTF-8, ``\\n``-terminated.

Requests::

    {"op": "put", "key": "a", "value": 1}
    {"op": "get", "key": "a"}
    {"op": "add", "key": "a", "value": 5}
    {"op": "delete", "key": "a"}
    {"op": "copyadd", "key": "a", "src": "b", "value": 5}
    {"op": "commit"}          # this session's records durable on reply
    {"op": "sync"}            # hard barrier over every session's records
    {"op": "stats"}           # engine + pipeline counters
    {"op": "ping"}

Replies are ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``;
a malformed line gets an error reply rather than a dropped connection.

**Concurrency contract.**  Each connection runs on its own thread
(:class:`socketserver.ThreadingTCPServer`) and owns one engine
:class:`~repro.engine.kv.Session`; every engine interaction goes
through the session, whose contract (engine-mutex application, commit
waits outside the lock) makes the handler safe without any locking of
its own.  ``commit`` replies only after the session's last LSN is
stable — under the pipeline, that is one shared fsync per window, so a
thousand clients committing concurrently cost a handful of fsyncs.

**Sharded deployments.**  The server is duck-typed over its database:
anything with ``session()`` / ``report()`` / ``close()`` serves, and a
:class:`~repro.shard.ShardedDatabase` qualifies — its sessions route
each command to the key's owning shard, so the handler needs no
sharding special case and ``serve --shards N`` is the same front-end
over N engines.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any

from repro.engine.kv import KVDatabase

# Mutations a connection may issue; everything else is a control op.
MUTATIONS = ("put", "add", "copyadd", "delete")


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        """One connection's loop: bind a session, answer line by line."""
        server: KVServer = self.server  # type: ignore[assignment]
        session = server.db.session(commit_every=server.session_commit_every)
        with server.track(session):
            for raw in self.rfile:
                line = raw.strip()
                if not line:
                    continue
                try:
                    reply = self._dispatch(session, json.loads(line))
                except Exception as exc:  # noqa: BLE001 — reply, don't die
                    reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                self.wfile.write(json.dumps(reply).encode() + b"\n")
                self.wfile.flush()
                if reply.get("bye"):
                    return

    def _dispatch(self, session, request: dict) -> dict[str, Any]:
        op = request.get("op")
        key = request.get("key")
        if op in MUTATIONS:
            if op == "copyadd":
                value = (request["src"], request["value"])
            elif op == "delete":
                value = None
            else:
                value = request["value"]
            session.execute((op, key, value))
            return {"ok": True, "lsn": session.last_lsn}
        if op == "get":
            return {"ok": True, "value": session.get(key)}
        if op == "commit":
            return {"ok": True, "stable_lsn": session.commit()}
        if op == "sync":
            return {"ok": True, "stable_lsn": session.sync()}
        if op == "stats":
            server: KVServer = self.server  # type: ignore[assignment]
            return {"ok": True, "stats": server.stats()}
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "quit":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


class KVServer(socketserver.ThreadingTCPServer):
    """A thread-per-connection front-end over one database — a single
    :class:`KVDatabase` or a :class:`~repro.shard.ShardedDatabase`
    (anything whose sessions speak execute/get/commit/sync/last_lsn)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        db: KVDatabase | Any,
        host: str = "127.0.0.1",
        port: int = 0,
        session_commit_every: int = 1,
    ):
        self.db = db
        self.session_commit_every = session_commit_every
        self._sessions_lock = threading.Lock()
        self.sessions_served = 0
        self.sessions_active = 0
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is real even when 0 was asked."""
        return self.socket.getsockname()[:2]

    def track(self, session):
        """Context manager counting one connection's session lifetime."""
        server = self

        class _Track:
            def __enter__(self):
                with server._sessions_lock:
                    server.sessions_served += 1
                    server.sessions_active += 1
                return session

            def __exit__(self, *exc):
                with server._sessions_lock:
                    server.sessions_active -= 1
                return False

        return _Track()

    def stats(self) -> dict[str, Any]:
        """Server-level counters plus the engine's full report."""
        with self._sessions_lock:
            stats: dict[str, Any] = {
                "sessions_served": self.sessions_served,
                "sessions_active": self.sessions_active,
            }
        stats.update(self.db.report())
        return stats

    def serve_background(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread; returns it."""
        thread = threading.Thread(
            target=self.serve_forever, name="kv-server", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting, close the socket, drain the commit pipeline."""
        self.shutdown()
        self.server_close()
        self.db.close()
