"""Drive thousands of simulated clients against one engine (E19).

A *simulated client* is an engine :class:`~repro.engine.kv.Session`
with its own disjoint keyspace (``c{i}:k{j}``) and its own commit
cadence — thousands of them are multiplexed over a bounded worker-thread
pool, the way a real server multiplexes connections over an event loop.
This measures the thing the E19 experiment is about: how commit
throughput scales with client fan-in when every commit is a durability
barrier.  Per-session forcing pays one log force per commit; the
cross-session pipeline coalesces all concurrent commits into one fsync
per window, so throughput rises with fan-in instead of flatlining at
the disk's fsync rate.

Disjoint keyspaces make the client-side oracle exact: after a crash,
each client's recovered keys must form a prefix of that client's own
committed history, independent of interleaving.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.engine.kv import KVDatabase


@dataclass
class LoadResult:
    """What one simulated-client run measured."""

    clients: int
    ops: int
    commits: int
    elapsed: float
    commit_latencies: list = field(default_factory=list, repr=False)

    @property
    def commits_per_sec(self) -> float:
        return self.commits / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    def latency_ms(self, quantile: float) -> float:
        """Commit-latency quantile in milliseconds (0 when unmeasured)."""
        if not self.commit_latencies:
            return 0.0
        ordered = sorted(self.commit_latencies)
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[index] * 1000.0

    def as_dict(self) -> dict:
        """The measurement as one JSON-ready mapping (for BENCH files)."""
        return {
            "clients": self.clients,
            "ops": self.ops,
            "commits": self.commits,
            "elapsed_s": round(self.elapsed, 4),
            "commits_per_sec": round(self.commits_per_sec, 1),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "commit_p50_ms": round(self.latency_ms(0.50), 3),
            "commit_p99_ms": round(self.latency_ms(0.99), 3),
        }


def client_key(client: int, slot: int) -> str:
    """The canonical key for one client's slot (disjoint keyspaces)."""
    return f"c{client}:k{slot}"


def run_simulated_clients(
    db: KVDatabase,
    n_clients: int,
    ops_per_client: int = 4,
    commit_every: int = 2,
    workers: int = 16,
    key_slots: int = 4,
) -> LoadResult:
    """Run ``n_clients`` sessions to completion; returns the measurement.

    Each client puts ``ops_per_client`` values into its own keyspace,
    committing every ``commit_every`` mutations and once at the end, so
    every client ends durable.  ``workers`` bounds true thread
    concurrency — 10k clients are 10k sessions, not 10k threads.
    """
    latencies: list[float] = []
    commits = 0

    def one_client(client: int) -> tuple[int, list[float]]:
        session = db.session(commit_every=ops_per_client + 1)  # manual commits
        local: list[float] = []
        since = 0
        for j in range(ops_per_client):
            session.execute(
                ("put", client_key(client, j % key_slots), client * 1000 + j)
            )
            since += 1
            if since >= commit_every:
                start = time.perf_counter()
                session.commit()
                local.append(time.perf_counter() - start)
                since = 0
        if since:
            start = time.perf_counter()
            session.commit()
            local.append(time.perf_counter() - start)
        return session.ops, local

    with ThreadPoolExecutor(max_workers=workers) as pool:
        # The executor spawns threads lazily, one per submit; without a
        # warm-up that startup cost lands inside the measurement (and
        # falls disproportionately on fast runs).  Park one blocking
        # task per worker so all threads exist before the clock starts.
        gate = threading.Barrier(workers)
        for warmer in [pool.submit(gate.wait) for _ in range(workers)]:
            warmer.result()
        started = time.perf_counter()
        results = list(pool.map(one_client, range(n_clients)))
        elapsed = time.perf_counter() - started
    total_ops = sum(ops for ops, _ in results)
    for _, local in results:
        latencies.extend(local)
        commits += len(local)
    return LoadResult(
        clients=n_clients,
        ops=total_ops,
        commits=commits,
        elapsed=elapsed,
        commit_latencies=latencies,
    )
