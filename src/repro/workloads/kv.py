"""Key-value workloads for the recoverable engine (experiment E5).

Generates put/get streams over a keyspace with a configurable hotspot
skew.  The engine experiments run these streams, crash the simulated
machine at chosen instants, recover, and compare against an in-memory
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator, Literal

KVOp = tuple  # (kind, key, value); value is (src, delta) for "copyadd"


@dataclass(frozen=True)
class KVWorkloadSpec:
    """Shape of a key-value workload.

    ``hot_fraction`` of operations target ``hot_keys`` of the keyspace —
    the standard 80/20-style skew that makes page-level caching and
    per-page LSN tracking earn their keep.  ``add_ratio`` mixes in
    read-modify-write increments, the non-idempotent operations that
    stress redo tests hardest.
    """

    n_operations: int = 200
    n_keys: int = 32
    put_ratio: float = 0.7
    add_ratio: float = 0.0
    copyadd_ratio: float = 0.0
    delete_ratio: float = 0.05
    hot_fraction: float = 0.8
    hot_keys: int = 4
    value_range: int = 10_000

    def key(self, index: int) -> str:
        """The canonical key name for index ``index``."""
        return f"k{index:04d}"


def generate_kv_workload(seed: int, spec: KVWorkloadSpec | None = None) -> list[KVOp]:
    """A reproducible stream of (kind, key, value) commands."""
    spec = spec or KVWorkloadSpec()
    rng = Random(seed)
    stream: list[KVOp] = []
    for _ in range(spec.n_operations):
        if rng.random() < spec.hot_fraction:
            key = spec.key(rng.randrange(max(1, spec.hot_keys)))
        else:
            key = spec.key(rng.randrange(spec.n_keys))
        roll = rng.random()
        if roll < spec.put_ratio:
            stream.append(("put", key, rng.randrange(spec.value_range)))
        elif roll < spec.put_ratio + spec.add_ratio:
            stream.append(("add", key, 1 + rng.randrange(100)))
        elif roll < spec.put_ratio + spec.add_ratio + spec.copyadd_ratio:
            src = spec.key(rng.randrange(spec.n_keys))
            stream.append(("copyadd", key, (src, 1 + rng.randrange(100))))
        elif (
            roll
            < spec.put_ratio + spec.add_ratio + spec.copyadd_ratio + spec.delete_ratio
        ):
            stream.append(("delete", key, None))
        else:
            stream.append(("get", key, None))
    return stream


def apply_to_oracle(stream: list[KVOp]) -> dict[str, int]:
    """The final key-value mapping a correct system must expose."""
    oracle: dict[str, int] = {}
    for kind, key, value in stream:
        if kind == "put":
            oracle[key] = value  # type: ignore[assignment]
        elif kind == "add":
            oracle[key] = (oracle.get(key) or 0) + value  # type: ignore[operator]
        elif kind == "copyadd":
            src, delta = value  # type: ignore[misc]
            oracle[key] = (oracle.get(src) or 0) + delta
        elif kind == "delete":
            oracle.pop(key, None)
    return oracle


def prefixes_of(stream: list[KVOp]) -> Iterator[list[KVOp]]:
    """Every prefix of the stream (crash points for exhaustive sweeps)."""
    for cut in range(len(stream) + 1):
        yield stream[:cut]
