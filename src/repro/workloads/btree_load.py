"""B-tree insert workloads (experiment E6).

Key streams designed to force page splits: sequential streams split the
rightmost leaf repeatedly, random streams split across the tree, and
clustered streams hammer one region.  The split-logging experiments
measure logged bytes and crash-recoverability under each pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Literal

Pattern = Literal["sequential", "random", "clustered"]


@dataclass(frozen=True)
class BTreeWorkloadSpec:
    """Shape of a B-tree insert workload."""

    n_keys: int = 256
    pattern: Pattern = "random"
    key_space: int = 1_000_000
    cluster_width: int = 64
    payload_bytes: int = 16


def generate_btree_keys(seed: int, spec: BTreeWorkloadSpec | None = None) -> list[tuple[int, bytes]]:
    """A reproducible list of (key, payload) pairs to insert."""
    spec = spec or BTreeWorkloadSpec()
    rng = Random(seed)
    payload = lambda key: (f"val-{key}".encode().ljust(spec.payload_bytes, b"."))[: spec.payload_bytes]

    if spec.pattern == "sequential":
        keys = list(range(spec.n_keys))
    elif spec.pattern == "clustered":
        keys = []
        center = rng.randrange(spec.key_space)
        for _ in range(spec.n_keys):
            if rng.random() < 0.1:
                center = rng.randrange(spec.key_space)
            keys.append(center + rng.randrange(spec.cluster_width))
    else:
        keys = rng.sample(range(spec.key_space), spec.n_keys)

    # De-duplicate while preserving order (B-tree inserts are upserts, but
    # unique keys make oracle comparison crisper).
    seen: set[int] = set()
    unique = []
    for key in keys:
        if key not in seen:
            seen.add(key)
            unique.append(key)
    return [(key, payload(key)) for key in unique]
