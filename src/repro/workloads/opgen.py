"""Random operation-sequence generation.

The theory experiments (E1–E4, E7, E8) need many operation sequences with
controllable shape: how many variables, how often operations read, how
often writes are blind, and how many variables one operation may write.
``random_operations`` produces sequences from a seeded
:class:`random.Random`, so every experiment is reproducible from its seed.

Operation bodies are built from the expression DSL so their read sets are
honest (derived from the expressions), and every generated body is
injective enough that wrong replays are *detectable*: values are drawn
from distinct affine transforms, so two different execution orders rarely
collide on the same state by accident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Iterable

from repro.core.expr import Const, Expr, Var
from repro.core.model import Operation


@dataclass(frozen=True)
class OpSequenceSpec:
    """Shape parameters for a random operation sequence.

    ``blind_ratio`` is the probability that a generated assignment ignores
    existing state (a blind write) — the knob that creates unexposed
    variables.  ``read_extra`` is the probability of folding an extra read
    variable into an assignment's expression, which raises conflict
    density.  ``multi_write_ratio`` is the probability an operation writes
    two variables (like the paper's C and H).
    """

    n_operations: int = 8
    n_variables: int = 4
    blind_ratio: float = 0.4
    read_extra: float = 0.35
    multi_write_ratio: float = 0.2
    value_range: int = 97  # prime; keeps affine maps well-mixed

    def variables(self) -> list[str]:
        """The variable names this spec draws from."""
        return [f"v{i}" for i in range(self.n_variables)]


def _random_expr(rng: Random, spec: OpSequenceSpec, blind: bool, target: str) -> Expr:
    """One right-hand side; blind means no variables are read."""
    if blind:
        return Const(rng.randrange(spec.value_range))
    source = rng.choice(spec.variables())
    expr: Expr = Var(source) * (1 + rng.randrange(5)) + rng.randrange(spec.value_range)
    if rng.random() < spec.read_extra:
        other = rng.choice(spec.variables())
        expr = expr + Var(other) * (1 + rng.randrange(3))
    return expr


def random_operations(seed: int, spec: OpSequenceSpec | None = None) -> list[Operation]:
    """A reproducible random operation sequence for ``seed``."""
    spec = spec or OpSequenceSpec()
    rng = Random(seed)
    operations = []
    for index in range(spec.n_operations):
        if rng.random() < spec.multi_write_ratio and spec.n_variables >= 2:
            targets = rng.sample(spec.variables(), 2)
        else:
            targets = [rng.choice(spec.variables())]
        assignments = {}
        for target in targets:
            blind = rng.random() < spec.blind_ratio
            assignments[target] = _random_expr(rng, spec, blind, target)
        operations.append(Operation.from_assignments(f"O{index}", assignments))
    return operations


@dataclass(frozen=True)
class Scenario:
    """A named worked example from the paper, ready to run."""

    name: str
    description: str
    operations: tuple[Operation, ...]
    crashed_values: dict = field(hash=False)
    expected_recoverable: bool


def scenario_library() -> dict[str, Scenario]:
    """The paper's worked examples (Figures 1–5 and the §5 examples).

    Keys: ``figure1``, ``figure2``, ``figure3``, ``figure4`` (the O,P,Q
    running example), ``section5_efg``, ``section5_hj``.  Crashed values
    describe the stable state at the crash instant each figure discusses.
    """
    from repro.core.expr import assign, blind_write

    A = assign("A", "x", Var("y") + 1)
    B = blind_write("B", "y", 2)
    C = Operation.from_assignments("C", {"x": Var("x") + 1, "y": Var("y") + 1})
    D = assign("D", "x", Var("y") + 1)

    O = assign("O", "x", Var("x") + 1)
    P = assign("P", "y", Var("x") + 1)
    Q = assign("Q", "x", Var("x") + 2)

    E = assign("E", "x", Var("y") + 1)
    F = assign("F", "y", Var("x") + 1)
    G = assign("G", "x", Var("x") + 1)

    H = Operation.from_assignments("H", {"x": Var("x") + 1, "y": Var("y") + 1})
    J = blind_write("J", "y", 0)

    return {
        "figure1": Scenario(
            name="figure1",
            description="Scenario 1: A then B; B installed first violates the "
            "read-write edge, state is unrecoverable",
            operations=(A, B),
            crashed_values={"x": 0, "y": 2},
            expected_recoverable=False,
        ),
        "figure2": Scenario(
            name="figure2",
            description="Scenario 2: B then A; installing A first only violates "
            "a write-read edge, replaying B recovers",
            operations=(B, A),
            crashed_values={"x": 3, "y": 0},
            expected_recoverable=True,
        ),
        "figure3": Scenario(
            name="figure3",
            description="Scenario 3: C then D; only C's write of y installed; x "
            "is unexposed (D blind-writes it), replaying D recovers",
            operations=(C, D),
            crashed_values={"x": 0, "y": 1},
            expected_recoverable=True,
        ),
        "figure4": Scenario(
            name="figure4",
            description="Running example O,P,Q (conflict state graph of Fig. 4, "
            "installation graph of Fig. 5, write graph of Fig. 7)",
            operations=(O, P, Q),
            crashed_values={"x": 0, "y": 2},  # {P} installed: y has final value
            expected_recoverable=True,
        ),
        "section5_efg": Scenario(
            name="section5_efg",
            description="E,F,G of §5: x and y must be installed atomically; "
            "updating y singly (F's value without E's and G's x) leaves a state "
            "no replay subset can recover.  (Updating x singly is the subtler "
            "half: the state happens to be explained by the empty prefix, but "
            "a redo test that skips E and G still fails — see the tests.)",
            operations=(E, F, G),
            crashed_values={"x": 0, "y": 2},  # y has its final value, x does not
            expected_recoverable=False,
        ),
        "section5_hj": Scenario(
            name="section5_hj",
            description="H,J of §5: J's blind write makes y unexposed after H, "
            "so installing H needs only x",
            operations=(H, J),
            crashed_values={"x": 1, "y": 0},
            expected_recoverable=True,
        ),
    }


def variables_of(operations: Iterable[Operation]) -> set[str]:
    """Every variable accessed by ``operations``."""
    result: set[str] = set()
    for operation in operations:
        result |= operation.variables()
    return result
