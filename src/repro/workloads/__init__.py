"""Workload generators.

Random operation sequences parameterized by conflict density
(:mod:`repro.workloads.opgen`), key-value workloads for the engine
(:mod:`repro.workloads.kv`), and B-tree insert workloads
(:mod:`repro.workloads.btree_load`).
"""

from repro.workloads.opgen import OpSequenceSpec, random_operations, scenario_library
from repro.workloads.kv import KVWorkloadSpec, generate_kv_workload
from repro.workloads.btree_load import BTreeWorkloadSpec, generate_btree_keys

__all__ = [
    "BTreeWorkloadSpec",
    "KVWorkloadSpec",
    "OpSequenceSpec",
    "generate_btree_keys",
    "generate_kv_workload",
    "random_operations",
    "scenario_library",
]
