"""repro — an executable theory of redo recovery.

This library reproduces *A Theory of Redo Recovery* (David Lomet and Mark
Tuttle, SIGMOD 2003) as working code:

- the graph model — conflict graphs, state graphs, installation graphs,
  exposed variables, explainable states (:mod:`repro.core`);
- the abstract recovery procedure, the Recovery Invariant, and write
  graphs (:mod:`repro.core.recovery`, :mod:`repro.core.invariant`,
  :mod:`repro.core.write_graph`);
- the real recovery methods of §6 — logical, physical, physiological, and
  generalized LSN-based recovery — built on simulated disk, cache, and log
  substrates (:mod:`repro.methods`, :mod:`repro.storage`,
  :mod:`repro.cache`, :mod:`repro.logmgr`);
- a recoverable key-value engine and a B-tree whose page splits are logged
  with the paper's generalized multi-page operations (:mod:`repro.engine`,
  :mod:`repro.btree`);
- crash simulation and invariant-audit harnesses (:mod:`repro.sim`).

Quickstart::

    from repro import ConflictGraph, InstallationGraph, State, Var, assign, blind_write
    from repro import is_explainable

    A = assign("A", "x", Var("y") + 1)
    B = blind_write("B", "y", 2)
    conflict = ConflictGraph([A, B])
    installation = InstallationGraph(conflict)

See ``examples/quickstart.py`` for the full tour.
"""

from repro.core import (
    Add,
    ConflictGraph,
    Const,
    ExposureMemo,
    Expr,
    InstallationGraph,
    InvariantReport,
    Log,
    LogRecord,
    Operation,
    RecoveryOutcome,
    RedoDecision,
    State,
    StateGraph,
    Var,
    VariableIndex,
    VariablePartition,
    WriteGraph,
    WriteGraphError,
    WriteNode,
    assign,
    blind_write,
    check_recovery_invariant,
    explains,
    exposed_variables,
    find_explaining_prefixes,
    increment,
    installed_set,
    is_applicable,
    is_explainable,
    is_exposed,
    is_potentially_recoverable,
    partition_operations,
    recover,
    recover_partitioned,
    replay,
    replay_order,
    run_sequence,
    state_sequence,
    unexposed_variables,
)

__version__ = "1.0.0"

__all__ = [
    "Add",
    "ConflictGraph",
    "Const",
    "ExposureMemo",
    "Expr",
    "InstallationGraph",
    "InvariantReport",
    "Log",
    "LogRecord",
    "Operation",
    "RecoveryOutcome",
    "RedoDecision",
    "State",
    "StateGraph",
    "Var",
    "VariableIndex",
    "VariablePartition",
    "WriteGraph",
    "WriteGraphError",
    "WriteNode",
    "assign",
    "blind_write",
    "check_recovery_invariant",
    "explains",
    "exposed_variables",
    "find_explaining_prefixes",
    "increment",
    "installed_set",
    "is_applicable",
    "is_explainable",
    "is_exposed",
    "is_potentially_recoverable",
    "partition_operations",
    "recover",
    "recover_partitioned",
    "replay",
    "replay_order",
    "run_sequence",
    "state_sequence",
    "unexposed_variables",
    "__version__",
]
