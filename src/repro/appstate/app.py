"""Crash-survivable deterministic applications.

A persistent application is a pure transition function
``step(state, event) -> state`` plus an initial state.  Durability comes
entirely from redo recovery:

- posting an event appends a logical log record (the event, verbatim)
  and advances the volatile state through ``step``;
- a checkpoint forces the log, serializes the current state into the
  staging area, and swings the shadow pointer — one atomic action that
  installs the whole history so far and truncates the redo set (the
  System R pattern of §6.1, reused for arbitrary program state);
- recovery loads the last snapshot and replays every later stable event
  through ``step``.

Determinism of ``step`` is the whole contract: replaying the same
events from the same snapshot must rebuild the same state.  States and
events must be plain data (tuples/ints/strings/dicts...), since they
live in log records and page cells.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.logmgr import CheckpointRecord, LogicalRedo
from repro.methods.base import Machine
from repro.storage import Page, ShadowStore

SNAPSHOT_PAGE = "app-state"
Transition = Callable[[Any, Any], Any]


class TransitionError(RuntimeError):
    """The transition function rejected an event."""


class PersistentApplication:
    """A deterministic application made crash-survivable by redo logging."""

    def __init__(
        self,
        step: Transition,
        initial_state: Any,
        machine: Machine | None = None,
        checkpoint_every: int | None = None,
    ):
        self.step = step
        self.initial_state = initial_state
        self.machine = machine if machine is not None else Machine()
        self.shadow = ShadowStore(self.machine.disk)
        self.checkpoint_every = checkpoint_every
        self.state: Any = initial_state
        self.events_posted = 0
        self.events_replayed = 0
        self._since_checkpoint = 0

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------

    def post(self, event: Any) -> Any:
        """Apply ``event``; its log record is the durability story."""
        self.machine.log.append(LogicalRedo(("app-event", event, None)))
        self.state = self._apply(event)
        self.events_posted += 1
        self._since_checkpoint += 1
        if (
            self.checkpoint_every is not None
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return self.state

    def _apply(self, event: Any) -> Any:
        try:
            return self.step(self.state, event)
        except TransitionError:
            raise
        except Exception as exc:  # surface programmer errors loudly
            raise TransitionError(
                f"transition failed on event {event!r}: {exc}"
            ) from exc

    def commit(self) -> None:
        """Force the log: everything posted so far becomes durable."""
        self.machine.log.flush()

    def checkpoint(self) -> None:
        """Snapshot the state; one pointer swing installs everything."""
        self.machine.log.flush()
        checkpoint_lsn = self.machine.log.stable_lsn
        self.shadow.stage_page(Page(SNAPSHOT_PAGE, {"state": self.state}))
        self.machine.log.append(CheckpointRecord(("app", checkpoint_lsn)))
        self.machine.log.flush()
        self.shadow.swing_pointer(checkpoint_lsn)
        self._since_checkpoint = 0

    # ------------------------------------------------------------------
    # Durability contract
    # ------------------------------------------------------------------

    def durable_event_count(self) -> int:
        """Events whose log records are stable (the crash-survivable prefix)."""
        return self.machine.log.stable_count_of(LogicalRedo)

    def expected_state_after(self, events: list) -> Any:
        """The oracle: fold ``events`` over the initial state."""
        state = self.initial_state
        for event in events:
            state = self.step(state, event)
        return state

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose the volatile state and the unforced log tail."""
        self.machine.crash()
        self.state = None  # volatile state is gone

    def recover(self) -> None:
        """Snapshot + replay: the Figure 6 procedure specialized to one
        snapshot record and a logical event log."""
        self.machine.reboot_pool()
        self.shadow = ShadowStore(self.machine.disk)
        self.shadow.abandon_staging()
        checkpoint_lsn = self.shadow.checkpoint_lsn()
        if self.shadow.has_current(SNAPSHOT_PAGE):
            self.state = self.shadow.read_current(SNAPSHOT_PAGE).get("state")
        else:
            self.state = self.initial_state
        for entry in self.machine.log.stable_records_from(checkpoint_lsn + 1):
            if not isinstance(entry.payload, LogicalRedo):
                continue
            _, event, _ = entry.payload.description
            self.state = self._apply(event)
            self.events_replayed += 1

    def __repr__(self) -> str:
        return (
            f"PersistentApplication(events={self.events_posted}, "
            f"replayed={self.events_replayed})"
        )
