"""Persistent applications through redo recovery (§7 / reference [10]).

The paper's closing direction — "define new classes of logged operations
having recovery methods with potential advantages ... especially when
extending recovery to new areas" — points at Lomet's *Persistent
Applications Using Generalized Redo Recovery* (ICDE 1998): make an
ordinary deterministic program crash-survivable by logging its *inputs*
and replaying them through the program's own transition function.

:class:`~repro.appstate.app.PersistentApplication` provides exactly
that on this library's substrates: events are logical log records, the
application state is an opaque value rebuilt by replay, and periodic
checkpoints snapshot the state into the shadow store so replay starts
from the last snapshot rather than from birth.  The recovery invariant
specializes cleanly: the snapshot *is* the installed prefix, the events
after the snapshot LSN *are* the redo set, and determinism of the
transition function is what makes the replayed state explainable.
"""

from repro.appstate.app import PersistentApplication, TransitionError

__all__ = ["PersistentApplication", "TransitionError"]
