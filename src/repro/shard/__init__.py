"""Sharded deployments: Theorem 3 promoted to the architecture.

A :class:`~repro.shard.keymap.Keymap` partitions the keyspace across N
independent :class:`~repro.engine.kv.KVDatabase` shards — per-shard
WALs, per-shard group-commit pipelines, process-parallel cold start —
with a ``DEPLOY.json`` manifest making the deployment root
self-describing.  See :mod:`repro.shard.sharded` for the argument.
"""

from repro.shard.keymap import Keymap, ShardRoutingError
from repro.shard.sharded import (
    MANIFEST_NAME,
    DeploymentError,
    ShardedDatabase,
    ShardedSession,
    is_deployment_root,
    read_manifest,
    shard_dirname,
)

__all__ = [
    "MANIFEST_NAME",
    "DeploymentError",
    "Keymap",
    "ShardRoutingError",
    "ShardedDatabase",
    "ShardedSession",
    "is_deployment_root",
    "read_manifest",
    "shard_dirname",
]
