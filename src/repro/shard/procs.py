"""Picklable per-shard workers for process-parallel deployment work.

Everything here runs in ``spawn`` children of a
:class:`~concurrent.futures.ProcessPoolExecutor`, so it must be
module-level and traffic only in plain picklable data: task dicts in,
result dicts out.  Page images cross the process boundary as
``{page_id: (cells, lsn)}`` (:func:`pack_disk` / :func:`unpack_disk`) —
the same shape :func:`repro.sim.crash.canonical_state` uses for
byte-identity checks, which is deliberate: what ships between processes
is exactly what the equivalence tests compare.

The handoff protocol for :func:`recover_shard` is *recover, quiesce,
ship the disk*: the child replays the shard's stable log (paying the
torn-tail truncation against the real segment files), then
``quiesce()``s so the disk image alone captures the recovered state —
no log appends, so the segment files are unchanged modulo the tail
truncation and a second cold start lands on the same bytes.  The parent
rebuilds the shard from the shipped image with ``recover=False``;
the child's file-level truncation already happened, so the parent's
``LogManager.open`` sees a clean log.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any

from repro.engine.kv import EngineSpec
from repro.obs.progress import RecoveryProgress
from repro.storage import Disk, Page


def pack_disk(disk: Disk) -> dict[str, tuple[dict, int]]:
    """A disk's page images as picklable ``{page_id: (cells, lsn)}``."""
    return {
        page.page_id: (dict(page.cells), page.lsn) for page in disk.pages()
    }


def unpack_disk(pages: dict[str, tuple[dict, int]]) -> Disk:
    """Rebuild a :class:`Disk` from :func:`pack_disk` output."""
    disk = Disk()
    for page_id, (cells, lsn) in pages.items():
        disk.write_page(Page(page_id, dict(cells), lsn))
    return disk


def shard_progress_line(shard: int, snap: dict) -> str:
    """One human-readable recovery progress line for a shard."""
    return (
        f"[shard-{shard:02d}] {snap['phase']}: "
        f"segments={snap['segments']} records={snap['records']} "
        f"replayed={snap['replayed']} "
        f"bytes={snap['bytes']} ({snap['elapsed_s']:.2f}s)"
    )


def recover_shard(task: dict[str, Any]) -> dict[str, Any]:
    """Cold-start one shard in this process; return its quiesced image.

    ``task``: ``shard`` (index), ``dir`` (segment directory), ``spec``
    (:meth:`EngineSpec.as_dict`), ``pages`` (survivor disk image, may be
    empty), ``progress`` (print live recovery lines to stderr — stderr
    because it crosses the spawn-child boundary unbuffered and leaves
    stdout to the protocol).  ``elapsed_s`` times the replay+quiesce
    alone — the per-shard recovery cost, free of pool startup and result
    pickling, which is what the E21 critical-path metric aggregates.
    """
    spec = EngineSpec.from_dict(task["spec"])
    survivor = unpack_disk(task.get("pages") or {})
    progress = None
    if task.get("progress"):
        shard_index = task["shard"]

        def print_line(snap: dict, shard=shard_index) -> None:
            print(shard_progress_line(shard, snap), file=sys.stderr, flush=True)

        progress = RecoveryProgress(on_update=print_line)
    started = time.perf_counter()
    db = spec.cold_start(task["dir"], disk=survivor, progress=progress)
    db.quiesce()
    elapsed = time.perf_counter() - started
    report = db.report()
    result = {
        "shard": task["shard"],
        "pages": pack_disk(db.method.machine.disk),
        "elapsed_s": elapsed,
        "stable_lsn": db.method.machine.log.stable_lsn,
        "durable": db.durable_count(),
        "scanned": report.get("method_records_scanned", 0),
        "replayed": report.get("method_records_replayed", 0),
        "torn_tails": report.get("durable_torn_tails", 0),
    }
    db.close()
    return result


def drive_shard(task: dict[str, Any]) -> dict[str, Any]:
    """Drive one fresh shard with concurrent client sessions; return the
    sustained rate.  The E21 throughput worker: because shards share no
    WAL, mutex, or pipeline, per-shard sustained rates measured in
    isolation sum to the deployment's aggregate capacity.

    ``task``: ``shard``, ``dir`` (or None for in-memory), ``spec``,
    ``clients`` (list of per-client command lists), ``commit_every``.
    """
    spec = EngineSpec.from_dict(task["spec"])
    db = spec.build(log_dir=task.get("dir"))
    commit_every = task.get("commit_every", 1)
    sessions = [db.session(commit_every=commit_every) for _ in task["clients"]]

    def run_client(session, ops):
        session.run(ops)
        session.commit()

    threads = [
        threading.Thread(target=run_client, args=(session, ops))
        for session, ops in zip(sessions, task["clients"])
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    report = db.report()
    db.close()
    return {
        "shard": task["shard"],
        "ops": sum(session.ops for session in sessions),
        "commits": sum(session.commits for session in sessions),
        "elapsed_s": elapsed,
        "fsyncs": report.get("durable_fsyncs", 0),
    }
