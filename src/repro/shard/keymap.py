"""Deterministic key→shard placement.

The :class:`Keymap` is the deployment-level analogue of
:func:`repro.methods.base.page_of`: a salted crc32 over the key, modulo
the shard count.  Determinism is the load-bearing property — every
process that agrees on ``(n_shards, seed)`` agrees on ownership, so the
router, the cold-start children, and the deployment audit can each
recompute placement independently instead of consulting a directory.

Theorem 3 rides on this: the keymap partitions the *variables* (keys,
and through each engine's ``page_of`` the pages) into disjoint sets, so
each shard's log explains exactly its own pages and the shards recover
independently.  Cross-shard operations would break the partition, which
is why :meth:`Keymap.owner` refuses a ``copyadd`` whose source lives on
a different shard rather than guessing.
"""

from __future__ import annotations

import zlib

from repro.workloads.kv import KVOp

MUTATIONS = ("put", "add", "copyadd", "delete")


class ShardRoutingError(ValueError):
    """A command the keymap cannot place on a single shard."""


class Keymap:
    """Deterministic, seeded key→shard hash shared by every process."""

    __slots__ = ("n_shards", "seed", "_salt")

    def __init__(self, n_shards: int, seed: int = 0):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.seed = seed
        # The salt folds the seed into the hashed bytes, so two keymaps
        # with different seeds place keys differently — the knob the
        # rebalancing experiments will turn.
        self._salt = f"{seed}:".encode()

    def shard_of(self, key: str) -> int:
        """The shard that owns ``key`` (stable across processes)."""
        return zlib.crc32(self._salt + key.encode()) % self.n_shards

    def owner(self, command: KVOp) -> int:
        """The single shard a command belongs to.

        For ``copyadd`` both keys must colocate: the operation reads the
        source and writes the destination, and a cross-shard edge would
        puncture the page-disjointness that lets shards recover
        independently (Theorem 3).  Colocation is the application's job
        (choose keys, or a future keymap with affinity); here it is
        checked, not papered over.
        """
        kind, key = command[0], command[1]
        dst = self.shard_of(key)
        if kind == "copyadd":
            src = command[2][0]
            src_shard = self.shard_of(src)
            if src_shard != dst:
                raise ShardRoutingError(
                    f"copyadd {key!r} <- {src!r} spans shards "
                    f"{dst} and {src_shard}; cross-shard operations are "
                    f"not supported — colocate the keys"
                )
        return dst

    def split(self, stream) -> list[list[KVOp]]:
        """Partition a command stream into per-shard substreams.

        Relative order within each shard is preserved, which is all the
        durability oracle needs: commands on different shards touch
        disjoint keys, so any interleaving of the substreams is
        equivalent to the original stream.
        """
        parts: list[list[KVOp]] = [[] for _ in range(self.n_shards)]
        for command in stream:
            parts[self.owner(command)].append(command)
        return parts

    def as_dict(self) -> dict:
        """Manifest serialization."""
        return {"n_shards": self.n_shards, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict) -> "Keymap":
        """Rebuild from :meth:`as_dict` output."""
        return cls(n_shards=data["n_shards"], seed=data.get("seed", 0))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Keymap)
            and self.n_shards == other.n_shards
            and self.seed == other.seed
        )

    def __hash__(self) -> int:
        return hash((self.n_shards, self.seed))

    def __repr__(self) -> str:
        return f"Keymap(n_shards={self.n_shards}, seed={self.seed})"
