"""The sharded deployment: a keyspace router over N independent engines.

Theorem 3 says page-disjoint partitions of the log recover
independently.  ``methods/partition.py`` uses that as a *redo
optimization* — one log, partitioned replay.  This module promotes it to
the *deployment architecture*: the :class:`~repro.shard.keymap.Keymap`
partitions the keyspace up front, each shard is a full
:class:`~repro.engine.kv.KVDatabase` with its own ``FileLogStore``
directory (``shard-00/``, ``shard-01/``, …) and its own group-commit
pipeline, and the partition-disjointness that Theorem 3 *assumes* is
true by construction — no two shards ever share a page, a log record,
or an fsync.  Two consequences fall out:

- **throughput**: commits on different shards never serialize on a
  common log mutex or share a committer window, so aggregate capacity
  is the sum of per-shard capacity;
- **restart**: each shard's recovery reads only its own segment files
  and writes only its own pages, so cold start fans out across
  *processes* (:meth:`ShardedDatabase.cold_start`) — real parallelism,
  unlike the GIL-bound thread-pool redo inside one engine.

A deployment root is self-describing: ``DEPLOY.json`` (the manifest)
records the shard count, keymap seed, engine spec, and per-shard
directories, so ``cold_start(root)`` needs no other configuration —
the same property :meth:`LogManager.open` gives a single segment
directory, one level up.

**The cross-process handoff.**  The simulated :class:`Disk` is a Python
object, so a child process's recovered state must be shipped, not
shared.  The protocol (see :mod:`repro.shard.procs`) is *recover,
quiesce, ship the disk image*: after ``quiesce()`` the disk plus the
segment files alone capture the shard, with **no log appends**, so the
parent re-opens each shard with ``recover=False`` and repeated cold
starts stay byte-identical.  Warm :meth:`recover` quiesces too, which
is what makes warm and cold recovery land on the same bytes — the
equivalence the E21 crash legs check per shard, per method.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Sequence

from repro.engine.kv import EngineSpec, KVDatabase
from repro.obs.metrics import MetricsRegistry
from repro.shard.keymap import MUTATIONS, Keymap
from repro.shard.procs import pack_disk, recover_shard, unpack_disk
from repro.storage import Disk
from repro.workloads.kv import KVOp

MANIFEST_NAME = "DEPLOY.json"
MANIFEST_VERSION = 1

# Inner sessions never auto-commit; the sharded session owns the cadence.
_NEVER = 2**62


class DeploymentError(RuntimeError):
    """A deployment root that cannot be opened, or a shape mismatch."""


def shard_dirname(shard: int) -> str:
    """The conventional per-shard directory name (``shard-00``, …)."""
    return f"shard-{shard:02d}"


def write_manifest(
    root: Path, keymap: Keymap, spec: EngineSpec, shard_dirs: Sequence[str]
) -> Path:
    """Write ``DEPLOY.json`` atomically (write-then-rename, like the
    shadow root: a crash leaves the old manifest or the new, never a
    torn one)."""
    manifest = {
        "version": MANIFEST_VERSION,
        "n_shards": keymap.n_shards,
        "keymap": keymap.as_dict(),
        "spec": spec.as_dict(),
        "shard_dirs": list(shard_dirs),
    }
    path = root / MANIFEST_NAME
    tmp = root / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def read_manifest(root) -> dict:
    """Load and validate a deployment manifest."""
    path = Path(root) / MANIFEST_NAME
    if not path.is_file():
        raise DeploymentError(f"no {MANIFEST_NAME} under {root}")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DeploymentError(f"corrupt manifest {path}: {exc}") from exc
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise DeploymentError(
            f"manifest version {version!r} unsupported (want {MANIFEST_VERSION})"
        )
    dirs = manifest.get("shard_dirs")
    if not isinstance(dirs, list) or len(dirs) != manifest.get("n_shards"):
        raise DeploymentError(f"manifest {path} shard_dirs/n_shards mismatch")
    return manifest


def is_deployment_root(path) -> bool:
    """Does ``path`` hold a sharded deployment manifest?"""
    return (Path(path) / MANIFEST_NAME).is_file()


class ShardedDatabase:
    """N engines behind one keymap — the deployment-level database.

    Presents the :class:`KVDatabase` surface the server front-end needs
    (``session`` / ``report`` / ``close``) plus the crash-cycle surface
    the harnesses drive (``crash`` / ``recover`` / ``verify_against`` /
    ``theory_audit``), routing every command to the shard the keymap
    names.  Construct via :meth:`create` (fresh) or :meth:`cold_start`
    (from a deployment root).
    """

    def __init__(
        self,
        shards: Sequence[KVDatabase],
        keymap: Keymap,
        spec: EngineSpec,
        root=None,
    ):
        if len(shards) != keymap.n_shards:
            raise DeploymentError(
                f"{len(shards)} shards for a {keymap.n_shards}-way keymap"
            )
        self.shards = list(shards)
        self.keymap = keymap
        self.spec = spec
        self.root = Path(root) if root is not None else None
        self._session_lock = threading.Lock()
        self._next_session_id = 0
        # One deployment-level registry over every shard's, namespaced
        # shard00., shard01., … — merge() makes collisions impossible.
        self.metrics = MetricsRegistry()
        for index, shard in enumerate(self.shards):
            self.metrics.merge(f"shard{index:02d}", shard.metrics)
        self.cold_report: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        root=None,
        n_shards: int = 2,
        spec: EngineSpec | None = None,
        seed: int = 0,
        tracer=None,
    ) -> "ShardedDatabase":
        """A fresh deployment: N identically-configured shards.

        With ``root`` set, each shard gets its own segment directory
        under it and the manifest is written, making the root
        self-describing for :meth:`cold_start`; with ``root=None`` the
        shards are in-memory (tests and quick experiments).
        """
        spec = spec if spec is not None else EngineSpec()
        keymap = Keymap(n_shards, seed=seed)
        if root is None:
            shards = [spec.build(tracer=tracer) for _ in range(n_shards)]
            return cls(shards, keymap, spec)
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if is_deployment_root(root):
            raise DeploymentError(
                f"{root} already holds a deployment; use cold_start"
            )
        dirs = [shard_dirname(index) for index in range(n_shards)]
        shards = [spec.build(log_dir=root / d, tracer=tracer) for d in dirs]
        write_manifest(root, keymap, spec, dirs)
        return cls(shards, keymap, spec, root=root)

    @classmethod
    def cold_start(
        cls,
        root,
        disks: Sequence[Disk] | None = None,
        processes: int | None = None,
        tracer=None,
        on_progress=None,
        progress: bool = False,
        lazy: bool = False,
    ) -> "ShardedDatabase":
        """Restart a whole deployment from its root directory.

        Reads the manifest, then fans one recovery task per shard across
        a ``spawn`` :class:`ProcessPoolExecutor`: each child replays its
        shard's segment files (applying the torn-tail rule to the real
        files), quiesces, and ships the disk image back; the parent
        rebuilds each shard from the shipped image without replaying.
        Shards share nothing, so the fan-out needs no coordination and
        the deployment's recovery time is the *slowest shard*, not the
        sum — the Theorem 3 restart dividend.

        ``disks`` optionally supplies per-shard survivor images (the
        crash harnesses' snapshot of what the page store held at the
        crash).  ``processes`` bounds the pool, defaulting to
        ``min(n_shards, cpu_count)``; ``processes=0`` recovers inline in
        this process (no pool — the debugging path, and what a child
        must use since pools don't nest).

        ``self.cold_report`` afterwards holds the timing breakdown:
        ``wall_s`` (observed, includes pool startup and pickling),
        ``critical_path_s`` (max per-shard replay time as measured
        inside the children — the deployment's recovery latency on a
        machine with >= N cores), and ``per_shard`` details, each
        carrying ``time_to_ready_s`` — the parent-observed wall time
        from fan-out start to that shard's image arriving, i.e. when
        that shard *could* begin serving.

        ``on_progress`` (if given) is called with each shard's result
        summary the moment it completes (fan-out order, not shard
        order); ``progress=True`` additionally has each child print a
        live per-shard recovery line to stderr.

        ``lazy=True`` is the instant-restart path: no process pool and
        no up-front replay — every shard runs analysis only
        (:meth:`KVDatabase.cold_start` with ``lazy=True``) and is
        serving when this returns, its redo backlog draining in the
        background and on first page touch.  Each shard's
        ``time_to_ready_s`` is then its analysis time alone; ``health``
        reports the remaining per-shard backlogs until the drain
        completes (or :meth:`drain_lazy` forces it).
        """
        root = Path(root)
        manifest = read_manifest(root)
        keymap = Keymap.from_dict(manifest["keymap"])
        spec = EngineSpec.from_dict(manifest["spec"])
        dirs = manifest["shard_dirs"]
        n_shards = keymap.n_shards
        if disks is not None and len(disks) != n_shards:
            raise DeploymentError(
                f"{len(disks)} survivor disks for {n_shards} shards"
            )
        if lazy:
            started = time.perf_counter()
            shards = []
            per_shard = []
            for index in range(n_shards):
                shard_started = time.perf_counter()
                shard = spec.cold_start(
                    root / dirs[index],
                    disk=disks[index] if disks is not None else None,
                    lazy=True,
                    tracer=tracer,
                )
                shards.append(shard)
                summary = {
                    "shard": index,
                    "dir": str(root / dirs[index]),
                    "elapsed_s": time.perf_counter() - shard_started,
                    "time_to_ready_s": time.perf_counter() - started,
                    "replay_backlog": shard.replay_backlog(),
                }
                per_shard.append(summary)
                if on_progress is not None:
                    on_progress(summary)
            deployment = cls(shards, keymap, spec, root=root)
            deployment.cold_report = {
                "wall_s": time.perf_counter() - started,
                "critical_path_s": max(r["elapsed_s"] for r in per_shard),
                "per_shard": per_shard,
                "lazy": True,
            }
            return deployment
        tasks = [
            {
                "shard": index,
                "dir": str(root / dirs[index]),
                "spec": spec.as_dict(),
                "pages": pack_disk(disks[index]) if disks is not None else {},
                "progress": bool(progress),
            }
            for index in range(n_shards)
        ]
        started = time.perf_counter()

        def note_done(result: dict) -> None:
            result["time_to_ready_s"] = time.perf_counter() - started
            if on_progress is not None:
                on_progress({k: v for k, v in result.items() if k != "pages"})

        if processes == 0:
            results = []
            for task in tasks:
                result = recover_shard(task)
                note_done(result)
                results.append(result)
        else:
            workers = (
                processes
                if processes is not None
                else min(n_shards, os.cpu_count() or 1)
            )
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=get_context("spawn")
            ) as pool:
                futures = [pool.submit(recover_shard, task) for task in tasks]
                results = []
                for future in as_completed(futures):
                    result = future.result()
                    note_done(result)
                    results.append(result)
        wall_s = time.perf_counter() - started
        results.sort(key=lambda result: result["shard"])
        shards = [
            spec.cold_start(
                root / dirs[result["shard"]],
                disk=unpack_disk(result["pages"]),
                recover=False,
                tracer=tracer,
            )
            for result in results
        ]
        deployment = cls(shards, keymap, spec, root=root)
        deployment.cold_report = {
            "wall_s": wall_s,
            "critical_path_s": max(r["elapsed_s"] for r in results),
            "per_shard": [
                {k: v for k, v in r.items() if k != "pages"} for r in results
            ],
        }
        return deployment

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, key: str) -> int:
        """The shard index owning ``key``."""
        return self.keymap.shard_of(key)

    def execute(self, command: KVOp) -> Any:
        """Run one command on the owning shard (its cadence applies)."""
        return self.shards[self.keymap.owner(command)].execute(command)

    def run(self, stream: Sequence[KVOp]) -> None:
        """Execute every command of ``stream`` in order."""
        for command in stream:
            self.execute(command)

    def get(self, key: str) -> Any:
        """Read ``key`` from its owning shard."""
        return self.shards[self.keymap.shard_of(key)].get(key)

    def session(self, commit_every: int | None = None) -> "ShardedSession":
        """A per-client stream over the whole deployment (what the
        server front-end binds per connection)."""
        with self._session_lock:
            session_id = self._next_session_id
            self._next_session_id += 1
        return ShardedSession(
            self,
            session_id,
            commit_every=(commit_every if commit_every is not None else 1),
        )

    # ------------------------------------------------------------------
    # Durability control
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Commit every shard."""
        for shard in self.shards:
            shard.commit()

    def sync(self) -> None:
        """Hard durability barrier on every shard."""
        for shard in self.shards:
            shard.sync()

    def checkpoint(self) -> None:
        """Checkpoint every shard."""
        for shard in self.shards:
            shard.checkpoint()

    def quiesce(self) -> None:
        """Quiesce every shard (disk images alone then capture the
        deployment)."""
        for shard in self.shards:
            shard.quiesce()

    # ------------------------------------------------------------------
    # Crash / recovery / verification
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Crash every shard: caches and unforced log tails are lost.

        One deployment-wide failure (the box dies) rather than N
        independent ones — per-shard faults are the fault campaign's
        territory.
        """
        for shard in self.shards:
            shard.crash()

    def recover(self) -> None:
        """Warm recovery, shard by shard, each followed by a quiesce.

        The quiesce is what keeps warm recovery byte-identical to
        :meth:`cold_start`: the cold path must quiesce (the disk image
        is all that crosses the process boundary), so the warm path
        mirrors it.
        """
        for shard in self.shards:
            shard.recover()
            shard.quiesce()

    def drain_lazy(self) -> None:
        """Finish every shard's background replay synchronously (a
        no-op after an eager cold start)."""
        for shard in self.shards:
            shard.drain_lazy()

    def replay_backlog(self) -> int:
        """Deployment-wide pages still awaiting lazy replay."""
        return sum(shard.replay_backlog() for shard in self.shards)

    def close(self) -> None:
        """Shut down every shard cleanly (drain commit pipelines)."""
        for shard in self.shards:
            shard.close()

    def durable_count(self) -> int:
        """Deployment-wide operations that would survive a crash."""
        return sum(shard.durable_count() for shard in self.shards)

    def dump(self) -> dict[str, Any]:
        """The merged visible key-value mapping (shards are disjoint,
        so a plain union is exact)."""
        merged: dict[str, Any] = {}
        for shard in self.shards:
            merged.update(shard.method.dump())
        return merged

    def verify_against(
        self, mutation_stream: Sequence[KVOp] | None = None
    ) -> int:
        """Per-shard durability contract; returns the deployment's
        durable count.

        With an explicit stream, the keymap splits it into the per-shard
        substreams (order within a shard is what each shard's oracle
        needs — commands on other shards touch disjoint keys).  Without
        one, each shard verifies against its own ``applied`` history.
        """
        if mutation_stream is None:
            return sum(shard.verify_against() for shard in self.shards)
        parts = self.keymap.split(
            [c for c in mutation_stream if c[0] in MUTATIONS]
        )
        return sum(
            shard.verify_against(parts[index])
            for index, shard in enumerate(self.shards)
        )

    def theory_audit(self):
        """The whole-deployment Recovery Invariant verdict (per-shard
        witnesses stitched by :func:`repro.sim.audit.audit_deployment`)."""
        from repro.sim.audit import audit_deployment

        return audit_deployment(self)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Every shard's counters in one flat dict, ``shardNN_``-prefixed
        via the merged registry, plus deployment identity labels."""
        stats: dict[str, Any] = {}
        for name, value in self.metrics.snapshot().items():
            key = name.replace(".", "_")
            assert key not in stats, f"report key collision on {key!r}"
            stats[key] = value
        for label, value in (
            ("n_shards", self.keymap.n_shards),
            ("keymap_seed", self.keymap.seed),
            ("spec_method", self.spec.method),
        ):
            assert label not in stats, f"report key collision on {label!r}"
            stats[label] = value
        return stats

    def health(self) -> dict[str, Any]:
        """Per-shard liveness (:meth:`KVDatabase.health` per shard) plus
        deployment shape — the payload behind the server's ``health`` op."""
        per_shard = [shard.health() for shard in self.shards]
        backlog_total = sum(h["replay_backlog"] for h in per_shard)
        return {
            "n_shards": self.keymap.n_shards,
            "stable_lsn_total": sum(h["stable_lsn"] for h in per_shard),
            "pipeline_depth_total": sum(h["pipeline_depth"] for h in per_shard),
            "dirty_pages_total": sum(h["dirty_pages"] for h in per_shard),
            "replay_backlog_total": backlog_total,
            "state": "recovering" if backlog_total else "ready",
            "shards": per_shard,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedDatabase(n_shards={self.keymap.n_shards}, "
            f"method={self.spec.method!r}, root={str(self.root)!r})"
        )


class ShardedSession:
    """One client's stream over the deployment.

    Wraps one never-auto-committing inner :class:`~repro.engine.kv.Session`
    per shard and owns the commit cadence itself, so a cadence commit
    covers exactly the shards this session touched since its last commit
    — an untouched shard pays nothing, which is where the fan-out
    throughput comes from.  The surface mirrors ``Session`` (``execute``
    / ``get`` / ``commit`` / ``sync`` / ``last_lsn``), which is all the
    server handler uses, so the front-end routes per-command without a
    single sharding special case.

    LSNs are per-shard streams; ``last_lsn`` is the LSN of this
    session's last mutation *on its shard* (``last_shard``), which is
    the pair a client needs to correlate an ack with a durability point.
    """

    def __init__(self, db: ShardedDatabase, session_id: int, commit_every: int = 1):
        self.db = db
        self.session_id = session_id
        self.commit_every = max(1, commit_every)
        self._inner = [shard.session(commit_every=_NEVER) for shard in db.shards]
        self._touched: set[int] = set()
        self._since_commit = 0
        self.ops = 0
        self.commits = 0
        self.last_lsn = -1
        self.last_shard = -1

    def execute(self, command: KVOp) -> Any:
        """Apply one command on its owning shard; auto-commits every
        touched shard on this session's cadence."""
        shard = self.db.keymap.owner(command)
        inner = self._inner[shard]
        result = inner.execute(command)
        if command[0] in MUTATIONS:
            self._touched.add(shard)
            self.ops += 1
            self.last_lsn = inner.last_lsn
            self.last_shard = shard
            self._since_commit += 1
            if self._since_commit >= self.commit_every:
                self.commit()
        return result

    def run(self, stream: Sequence[KVOp]) -> None:
        """Execute every command of ``stream`` in order."""
        for command in stream:
            self.execute(command)

    def commit(self) -> int:
        """Make this session's records durable: commit every shard
        touched since the last commit.  Returns the stable LSN covering
        this session's last mutation on its shard (what a server acks).
        """
        self._since_commit = 0
        self.commits += 1
        touched, self._touched = self._touched, set()
        stable = -1
        for shard in sorted(touched):
            observed = self._inner[shard].commit()
            if shard == self.last_shard:
                stable = observed
        if stable < 0 and self.last_shard >= 0:
            stable = self.db.shards[self.last_shard].method.machine.log.stable_lsn
        return stable

    def sync(self) -> int:
        """Hard barrier on *every* shard — all sessions' records on all
        shards are durable on return."""
        self._since_commit = 0
        self._touched.clear()
        stable = -1
        for index, inner in enumerate(self._inner):
            observed = inner.sync()
            if index == self.last_shard:
                stable = observed
        return stable

    def get(self, key: str) -> Any:
        """Read ``key`` from its owning shard."""
        return self._inner[self.db.keymap.shard_of(key)].get(key)

    def __repr__(self) -> str:
        return (
            f"ShardedSession(#{self.session_id} ops={self.ops} "
            f"commits={self.commits} last=({self.last_shard},{self.last_lsn}))"
        )
