"""Postmortem: join the flight ring with the WAL tail after a crash.

A SIGKILL leaves two independent witnesses on disk: the WAL segment
files (the durable truth — what recovery will replay, torn tail and
all) and the flight ring (the observational truth — the last trace
events the process emitted before it died).  ``repro postmortem <dir>``
reads both **read-only** — no truncation, no recovery, nothing the
tools touch changes what a later cold start will see — and renders one
forensic narrative: the last stable LSN per log (the same number
``logdump`` prints last), any torn tail with its byte offset, the final
events from the ring, and every span the crash left open, rendered
INTERRUPTED via the lenient span-tree builder (a ring holds only a
tail, so dangling span references are expected, not errors).

``collect_postmortem`` returns the structured report (what tests
assert); ``render_postmortem`` turns it into the human account.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.flightrec import FlightRecorder, FlightRecorderError, flight_ring_path
from repro.obs.timeline import RecoveryTimeline


def scan_log_tail(directory) -> dict[str, Any]:
    """Read-only scan of one segment directory's stable suffix.

    Walks every archive + segment file with the same zero-copy frame
    walker recovery and ``logdump`` use, but never writes: returns the
    record count, the last stable LSN, and any torn tail (file, byte
    offset, reason).  A crash-torn log is data here, not an error.
    """
    from repro.logmgr.codec import (
        CodecError,
        TornTail,
        decode_file_header,
        iter_record_views,
        verify_seal,
    )
    from repro.logmgr.filelog import (
        ARCHIVE_SUFFIX,
        SEGMENT_SUFFIX,
        _map_buffer,
        read_seal,
    )

    directory = Path(directory)
    paths = sorted(directory.glob(f"segment-*{ARCHIVE_SUFFIX}")) + sorted(
        directory.glob(f"segment-*{SEGMENT_SUFFIX}")
    )
    records = 0
    last_lsn: int | None = None
    torn: list[dict[str, Any]] = []
    errors: list[str] = []
    for path in paths:
        buf, close = _map_buffer(path)
        try:
            try:
                decode_file_header(buf)
            except CodecError as exc:
                errors.append(f"{path.name}: bad header ({exc})")
                continue
            sealed = verify_seal(buf, read_seal(path))
            if sealed is not None:
                views = iter_record_views(buf, end=sealed[0], verify_crc=False)
            else:
                views = iter_record_views(buf)
            try:
                for lsn, _lo, _hi in views:
                    records += 1
                    last_lsn = lsn if last_lsn is None else max(last_lsn, lsn)
            except TornTail as tear:
                torn.append(
                    {
                        "file": path.name,
                        "offset": tear.offset,
                        "reason": tear.reason,
                    }
                )
        finally:
            close()
    return {
        "dir": str(directory),
        "files": len(paths),
        "records": records,
        "last_lsn": last_lsn,
        "torn_tails": torn,
        "errors": errors,
    }


def collect_postmortem(root, ring_path=None, last_events: int = 20) -> dict[str, Any]:
    """Gather the structured postmortem for a log dir or deployment root.

    ``root`` may be a single engine's segment directory or a sharded
    deployment root (holding ``DEPLOY.json``); the flight ring is looked
    up at its canonical location under ``root`` unless ``ring_path``
    overrides it.  Missing pieces degrade (a report with no ring still
    has the WAL tail, and vice versa); only a root with *neither* is an
    error (``ok: False``).
    """
    root = Path(root)
    logs: dict[str, dict[str, Any]] = {}
    if root.is_dir():
        from repro.shard import is_deployment_root, read_manifest

        if is_deployment_root(root):
            manifest = read_manifest(root)
            for dirname in manifest["shard_dirs"]:
                logs[dirname] = scan_log_tail(root / dirname)
        else:
            logs["."] = scan_log_tail(root)

    ring: dict[str, Any] | None = None
    interrupted: list[dict[str, Any]] = []
    finale: list[dict[str, Any]] = []
    path = Path(ring_path) if ring_path is not None else Path(flight_ring_path(root))
    if path.is_file():
        try:
            recorder = FlightRecorder.open(str(path))
        except (FlightRecorderError, OSError) as exc:
            ring = {"path": str(path), "error": str(exc)}
        else:
            try:
                records = recorder.records()
            finally:
                recorder.close()
            timeline = RecoveryTimeline.from_flight_ring(records)
            for node in timeline.open_spans():
                interrupted.append(
                    {
                        "id": node.span_id,
                        "name": node.name,
                        "fields": dict(node.fields),
                    }
                )
            finale = records[-last_events:]
            ring = {
                "path": str(path),
                "records": len(records),
                "seq_range": (
                    [records[0]["seq"], records[-1]["seq"]] if records else None
                ),
            }
    have_logs = any(log["files"] for log in logs.values())
    return {
        "root": str(root),
        "ok": bool(have_logs or (ring is not None and "error" not in ring)),
        "logs": logs,
        "ring": ring,
        "interrupted_spans": interrupted,
        "final_events": finale,
    }


def _event_line(record: dict) -> str:
    kind = record.get("type", "?")
    name = record.get("name", "?")
    fields = record.get("fields") or {}
    detail = ", ".join(f"{k}={v}" for k, v in sorted(fields.items()))
    marker = {"span_start": "+", "span_end": "-", "event": "."}.get(kind, "?")
    line = f"  {record.get('seq', '?'):>8} {marker} {name}"
    if detail:
        line += f" ({detail})"
    if record.get("truncated"):
        line += " [payload truncated]"
    return line


def render_postmortem(report: dict[str, Any]) -> str:
    """The forensic narrative, as one multi-line string."""
    lines: list[str] = [f"== postmortem: {report['root']} =="]
    for name, log in sorted(report["logs"].items()):
        where = "log" if name == "." else f"log [{name}]"
        if not log["files"]:
            lines.append(f"{where}: no segment files")
            continue
        last = log["last_lsn"] if log["last_lsn"] is not None else "-"
        lines.append(
            f"{where}: {log['records']} stable records in {log['files']} "
            f"file(s), last stable LSN {last}"
        )
        for tear in log["torn_tails"]:
            lines.append(
                f"  torn tail in {tear['file']} at byte {tear['offset']}: "
                f"{tear['reason']} (recovery will truncate here)"
            )
        for error in log["errors"]:
            lines.append(f"  structural error: {error}")

    ring = report["ring"]
    if ring is None:
        lines.append("flight ring: none found")
    elif "error" in ring:
        lines.append(f"flight ring: {ring['path']} unreadable ({ring['error']})")
    else:
        span = (
            f", seq {ring['seq_range'][0]}..{ring['seq_range'][1]}"
            if ring["seq_range"]
            else ""
        )
        lines.append(
            f"flight ring: {ring['records']} surviving records{span} "
            f"({ring['path']})"
        )
        if report["interrupted_spans"]:
            lines.append("spans open at the crash (INTERRUPTED):")
            for node in report["interrupted_spans"]:
                detail = ", ".join(
                    f"{k}={v}" for k, v in sorted(node["fields"].items())
                )
                suffix = f" ({detail})" if detail else ""
                lines.append(
                    f"  span #{node['id']} {node['name']}{suffix}  [INTERRUPTED]"
                )
        else:
            lines.append("no spans were open at the crash")
        if report["final_events"]:
            lines.append(
                f"final {len(report['final_events'])} trace records before death:"
            )
            lines.extend(_event_line(r) for r in report["final_events"])
    return "\n".join(lines)
