"""The metrics registry: one namespaced read path for every counter.

Before this module, the system's operational counters were scattered:
``MethodStats`` on each recovery method, ``SchedulerStats`` on the
install scheduler, loose attributes on the log manager, disk, and
buffer pool — and :meth:`repro.engine.KVDatabase.report` merged them
into one flat dict with ``update()``, silently at risk of key
collisions.  The :class:`MetricsRegistry` unifies them:

- **instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are owned by the registry and named with dotted
  namespaces (``obs.trace_records``, ``recovery.redo_start``);
- **collectors** adopt the existing per-component stats objects without
  rewriting them: a collector is a namespace plus a callable returning
  a plain mapping, and its keys are published as ``namespace.key``
  (``method.records_replayed``, ``scheduler.elisions``, ``log.forces``);
- :meth:`MetricsRegistry.snapshot` materializes everything into one
  dict and **raises on any name collision** instead of silently
  overwriting — the fix for the historical ``report()`` hazard;
- :meth:`MetricsRegistry.delta` subtracts two snapshots, which is what
  benchmarks and the crash harnesses want ("how much redo work did
  *this* recovery do").
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Mapping

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
_NAMESPACE_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class MetricsError(ValueError):
    """A metrics-naming violation: bad name, type clash, or collision."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(
            f"metric name {name!r} must be dotted lowercase "
            f"(namespace.key, e.g. 'method.records_replayed')"
        )
    return name


class Counter:
    """A monotonically increasing count (increments are atomic)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class Gauge:
    """A point-in-time value: set directly, or computed by a callable."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], Any] | None = None):
        self.name = name
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        """Set the gauge (illegal on computed gauges)."""
        if self._fn is not None:
            raise MetricsError(f"gauge {self.name!r} is computed; cannot set")
        self._value = value

    @property
    def value(self) -> Any:
        """The current value (calling the callable for computed gauges)."""
        return self._fn() if self._fn is not None else self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}={self.value})"


class Histogram:
    """A running distribution summary: count / total / min / max.

    Deliberately no buckets — the repo's benchmarks want exact summary
    moments, and bucket boundaries would be one more thing to tune.
    A snapshot publishes four keys: ``<name>.count``, ``<name>.total``,
    ``<name>.min``, ``<name>.max``.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Any = None
        self.max: Any = None
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        """Record one observation (atomic: the four summary fields move
        together, so a concurrent snapshot never sees a half-applied
        observation)."""
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        """The mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        """The four summary values keyed by suffix."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r} n={self.count} mean={self.mean():.3g})"


class MetricsRegistry:
    """Counters, gauges, histograms, and adopted stats — one namespace.

    Instruments are created on first request (``counter(name)`` is
    get-or-create); requesting an existing name as a different
    instrument type raises.  Collectors adopt external stats objects;
    their keys surface as ``namespace.key`` in every snapshot.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._collectors: dict[str, Callable[[], Mapping[str, Any]]] = {}

    # -- instruments ---------------------------------------------------

    def _instrument(self, name: str, kind: type):
        _check_name(name)
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not kind:
                raise MetricsError(
                    f"{name!r} already registered as {type(existing).__name__}"
                )
            return existing
        instrument = kind(name)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._instrument(name, Counter)

    def gauge(self, name: str, fn: Callable[[], Any] | None = None) -> Gauge:
        """Get or create the gauge ``name`` (optionally computed by ``fn``)."""
        _check_name(name)
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not Gauge:
                raise MetricsError(
                    f"{name!r} already registered as {type(existing).__name__}"
                )
            return existing
        instrument = Gauge(name, fn)
        self._instruments[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._instrument(name, Histogram)

    # -- collectors ----------------------------------------------------

    def register_collector(
        self, namespace: str, collect: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Adopt an external stats source under ``namespace``.

        ``collect`` is called at snapshot time and must return a plain
        mapping; each key ``k`` is published as ``namespace.k``.  This
        is how the registry absorbs the pre-existing ``MethodStats``,
        ``SchedulerStats``, and log/disk/pool counters without moving
        them.
        """
        if not _NAMESPACE_RE.match(namespace):
            raise MetricsError(f"bad collector namespace {namespace!r}")
        if namespace in self._collectors:
            raise MetricsError(f"collector namespace {namespace!r} already taken")
        self._collectors[namespace] = collect

    def merge(self, prefix: str, other: "MetricsRegistry") -> None:
        """Fold ``other``'s metrics into this registry under ``prefix``.

        Late-bound, not a copy: ``other.snapshot`` is adopted as a
        collector, so every future snapshot of this registry re-reads
        the child registry live and publishes its dotted names as
        ``prefix.<name>``.  This is how a deployment folds N per-shard
        registries into one report — each shard keeps its own registry
        (same code path as a standalone engine) and the router pays one
        ``merge("shard00", ...)`` per shard.  Namespacing makes cross-
        shard collisions impossible by construction; a duplicate
        ``prefix`` raises, same as any collector namespace.
        """
        if other is self:
            raise MetricsError("cannot merge a registry into itself")
        self.register_collector(prefix, other.snapshot)

    # -- reads ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every metric, one dict, dotted names; raises on collisions."""
        out: dict[str, Any] = {}

        def put(key: str, value: Any) -> None:
            if key in out:
                raise MetricsError(f"metric name collision on {key!r}")
            out[key] = value

        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                for suffix, value in instrument.summary().items():
                    put(f"{name}.{suffix}", value)
            else:
                put(name, instrument.value)
        for namespace, collect in self._collectors.items():
            for key, value in collect().items():
                put(f"{namespace}.{key}", value)
        return out

    def as_dict(self) -> dict[str, Any]:
        """Alias of :meth:`snapshot` (symmetry with the stats objects)."""
        return self.snapshot()

    def delta(self, previous: Mapping[str, Any]) -> dict[str, Any]:
        """Current snapshot minus ``previous``, numeric keys subtracted.

        Keys absent from ``previous`` count from zero; non-numeric
        values (labels) are passed through unchanged.  The shape every
        "work done by this phase" measurement wants.
        """
        current = self.snapshot()
        out: dict[str, Any] = {}
        for key, value in current.items():
            before = previous.get(key, 0)
            if isinstance(value, (int, float)) and isinstance(before, (int, float)):
                out[key] = value - before
            else:
                out[key] = value
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(instruments={len(self._instruments)}, "
            f"collectors={sorted(self._collectors)})"
        )
