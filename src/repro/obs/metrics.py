"""The metrics registry: one namespaced read path for every counter.

Before this module, the system's operational counters were scattered:
``MethodStats`` on each recovery method, ``SchedulerStats`` on the
install scheduler, loose attributes on the log manager, disk, and
buffer pool — and :meth:`repro.engine.KVDatabase.report` merged them
into one flat dict with ``update()``, silently at risk of key
collisions.  The :class:`MetricsRegistry` unifies them:

- **instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are owned by the registry and named with dotted
  namespaces (``obs.trace_records``, ``recovery.redo_start``);
- **collectors** adopt the existing per-component stats objects without
  rewriting them: a collector is a namespace plus a callable returning
  a plain mapping, and its keys are published as ``namespace.key``
  (``method.records_replayed``, ``scheduler.elisions``, ``log.forces``);
- :meth:`MetricsRegistry.snapshot` materializes everything into one
  dict and **raises on any name collision** instead of silently
  overwriting — the fix for the historical ``report()`` hazard;
- :meth:`MetricsRegistry.delta` subtracts two snapshots, which is what
  benchmarks and the crash harnesses want ("how much redo work did
  *this* recovery do").
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Mapping

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
_NAMESPACE_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class MetricsError(ValueError):
    """A metrics-naming violation: bad name, type clash, or collision."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(
            f"metric name {name!r} must be dotted lowercase "
            f"(namespace.key, e.g. 'method.records_replayed')"
        )
    return name


class Counter:
    """A monotonically increasing count (increments are atomic)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class Gauge:
    """A point-in-time value: set directly, or computed by a callable."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], Any] | None = None):
        self.name = name
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        """Set the gauge (illegal on computed gauges)."""
        if self._fn is not None:
            raise MetricsError(f"gauge {self.name!r} is computed; cannot set")
        self._value = value

    @property
    def value(self) -> Any:
        """The current value (calling the callable for computed gauges)."""
        return self._fn() if self._fn is not None else self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}={self.value})"


class Histogram:
    """A quantile-capable distribution on fixed log-scale buckets.

    Exact moments (count / total / min / max) plus a fixed array of
    geometrically spaced buckets so :meth:`quantile` can answer p50 /
    p95 / p99 without retaining observations.  The bucket layout is
    compile-time fixed — no tuning, no allocation per observation:

    - bucket ``i`` covers ``[LOW * GROWTH**i, LOW * GROWTH**(i+1))``
      with ``LOW = 2**-24`` (~6e-8) and ``GROWTH = 2**(1/4)`` (four
      buckets per octave, ~19% relative width — quantile error is
      bounded by one bucket's width);
    - values below ``LOW`` (including 0) land in an underflow bucket
      read back as ``LOW``; values past the top land in an overflow
      bucket read back as the top boundary.  The range covers ~1e-7 to
      ~2e3, i.e. 100 ns to half an hour when observations are seconds —
      every latency this system can produce.

    The bucket index is integer arithmetic on ``math.frexp`` (no
    ``log`` call): ``frexp`` gives the power of two, and one comparison
    ladder against precomputed sub-octave boundaries picks the quarter.

    A snapshot publishes ``<name>.count``, ``.total``, ``.min``,
    ``.max``, ``.mean``, ``.p50``, ``.p95``, ``.p99``.  All-zero when
    empty — an empty histogram has an explicit empty summary, it never
    divides by its zero count.
    """

    # Four buckets per octave over 2**-24 .. 2**11 gives 140 buckets +
    # under/overflow.  frexp(LOW) == (0.8388608, -23).
    _GROWTH = 2.0 ** 0.25
    _LOW_EXP = -23  # frexp exponent of the lowest boundary's octave
    _OCTAVES = 35
    _N_BUCKETS = _OCTAVES * 4
    _LOW = 2.0 ** (_LOW_EXP - 1)  # ~5.96e-8, the underflow boundary
    # Sub-octave boundaries for the comparison ladder: a mantissa m in
    # [0.5, 1) falls in quarter q iff m >= 0.5 * GROWTH**q.
    _QUARTERS = (0.5 * 2.0 ** 0.25, 0.5 * 2.0 ** 0.5, 0.5 * 2.0 ** 0.75)

    __slots__ = ("name", "count", "total", "min", "max", "_buckets", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Any = None
        self.max: Any = None
        self._buckets = [0] * (self._N_BUCKETS + 2)  # + underflow, overflow
        self._lock = threading.Lock()

    def _bucket_of(self, value: float) -> int:
        """The bucket index for ``value`` (0 = underflow, last = overflow)."""
        if value < self._LOW:
            return 0
        mantissa, exponent = math.frexp(value)
        octave = exponent - self._LOW_EXP
        if octave < 0:
            return 0
        quarters = self._QUARTERS
        quarter = (
            3 if mantissa >= quarters[2]
            else 2 if mantissa >= quarters[1]
            else 1 if mantissa >= quarters[0]
            else 0
        )
        index = octave * 4 + quarter + 1
        if index > self._N_BUCKETS:
            return self._N_BUCKETS + 1
        return index

    @classmethod
    def bucket_bound(cls, index: int) -> float:
        """The upper boundary of bucket ``index`` (what quantile reads
        back: the conservative edge, never an undershoot)."""
        if index <= 0:
            return cls._LOW
        capped = min(index, cls._N_BUCKETS)
        return cls._LOW * (cls._GROWTH ** capped)

    def observe(self, value) -> None:
        """Record one observation (atomic: moments and bucket move
        together, so a concurrent snapshot never sees a half-applied
        observation)."""
        bucket = self._bucket_of(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._buckets[bucket] += 1

    def mean(self) -> float:
        """The mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1), read off the buckets.

        Returns the upper boundary of the bucket holding the q-th
        observation — within one bucket width (~19%) of the true value,
        clamped to the observed min/max so p0/p100 are exact.  0.0 when
        empty.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile {q!r} out of [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            if q <= 0.0:
                return self.min
            if q >= 1.0:
                return self.max
            # Nearest-rank: the bucket holding the ceil(q*count)-th
            # observation, read back as its upper boundary (a latency
            # quantile should overshoot, never undershoot).
            rank = max(1, math.ceil(q * self.count))
            seen = 0
            for index, n in enumerate(self._buckets):
                seen += n
                if n and seen >= rank:
                    bound = self.bucket_bound(index)
                    return max(self.min, min(self.max, bound))
            return self.max  # unreachable; belt and braces

    def summary(self) -> dict[str, Any]:
        """The summary values keyed by suffix — explicitly all-zero for
        an empty histogram (the zero count is never a divisor)."""
        if self.count == 0:
            return {
                "count": 0, "total": 0, "min": 0, "max": 0,
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r} n={self.count} mean={self.mean():.3g})"


class MetricsRegistry:
    """Counters, gauges, histograms, and adopted stats — one namespace.

    Instruments are created on first request (``counter(name)`` is
    get-or-create); requesting an existing name as a different
    instrument type raises.  Collectors adopt external stats objects;
    their keys surface as ``namespace.key`` in every snapshot.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._collectors: dict[str, Callable[[], Mapping[str, Any]]] = {}

    # -- instruments ---------------------------------------------------

    def _instrument(self, name: str, kind: type):
        _check_name(name)
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not kind:
                raise MetricsError(
                    f"{name!r} already registered as {type(existing).__name__}"
                )
            return existing
        instrument = kind(name)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._instrument(name, Counter)

    def gauge(self, name: str, fn: Callable[[], Any] | None = None) -> Gauge:
        """Get or create the gauge ``name`` (optionally computed by ``fn``)."""
        _check_name(name)
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not Gauge:
                raise MetricsError(
                    f"{name!r} already registered as {type(existing).__name__}"
                )
            return existing
        instrument = Gauge(name, fn)
        self._instruments[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._instrument(name, Histogram)

    # -- collectors ----------------------------------------------------

    def register_collector(
        self, namespace: str, collect: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Adopt an external stats source under ``namespace``.

        ``collect`` is called at snapshot time and must return a plain
        mapping; each key ``k`` is published as ``namespace.k``.  This
        is how the registry absorbs the pre-existing ``MethodStats``,
        ``SchedulerStats``, and log/disk/pool counters without moving
        them.
        """
        if not _NAMESPACE_RE.match(namespace):
            raise MetricsError(f"bad collector namespace {namespace!r}")
        if namespace in self._collectors:
            raise MetricsError(f"collector namespace {namespace!r} already taken")
        self._collectors[namespace] = collect

    def merge(self, prefix: str, other: "MetricsRegistry") -> None:
        """Fold ``other``'s metrics into this registry under ``prefix``.

        Late-bound, not a copy: ``other.snapshot`` is adopted as a
        collector, so every future snapshot of this registry re-reads
        the child registry live and publishes its dotted names as
        ``prefix.<name>``.  This is how a deployment folds N per-shard
        registries into one report — each shard keeps its own registry
        (same code path as a standalone engine) and the router pays one
        ``merge("shard00", ...)`` per shard.  Namespacing makes cross-
        shard collisions impossible by construction; a duplicate
        ``prefix`` raises, same as any collector namespace.
        """
        if other is self:
            raise MetricsError("cannot merge a registry into itself")
        self.register_collector(prefix, other.snapshot)

    # -- reads ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every metric, one dict, dotted names; raises on collisions."""
        out: dict[str, Any] = {}

        def put(key: str, value: Any) -> None:
            if key in out:
                raise MetricsError(f"metric name collision on {key!r}")
            out[key] = value

        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                for suffix, value in instrument.summary().items():
                    put(f"{name}.{suffix}", value)
            else:
                put(name, instrument.value)
        for namespace, collect in self._collectors.items():
            for key, value in collect().items():
                put(f"{namespace}.{key}", value)
        return out

    def as_dict(self) -> dict[str, Any]:
        """Alias of :meth:`snapshot` (symmetry with the stats objects)."""
        return self.snapshot()

    def delta(self, previous: Mapping[str, Any]) -> dict[str, Any]:
        """Current snapshot minus ``previous``, numeric keys subtracted.

        Keys absent from ``previous`` count from zero; non-numeric
        values (labels) are passed through unchanged.  The shape every
        "work done by this phase" measurement wants.
        """
        current = self.snapshot()
        out: dict[str, Any] = {}
        for key, value in current.items():
            before = previous.get(key, 0)
            if isinstance(value, (int, float)) and isinstance(before, (int, float)):
                out[key] = value - before
            else:
                out[key] = value
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(instruments={len(self._instruments)}, "
            f"collectors={sorted(self._collectors)})"
        )
