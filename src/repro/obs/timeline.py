"""Replaying a trace into a human-readable recovery account.

A trace file (or ring buffer) is a flat, totally ordered record stream;
this module rebuilds its span tree and renders the story a recovery
engineer wants to read: what the engine did, why each page flushed or
was elided (with its write-graph reason), where redo started, and what
every segment of the redo scan decided per record.

:func:`load_trace` parses and *validates* a JSON-lines trace —
malformed lines, unknown record types, events referencing never-opened
spans, and double-closed spans all raise :class:`TraceReadError` — so
"the traced run produced a well-formed trace" is a checkable property,
not an assumption.  Unclosed spans are legal: a crash mid-recovery
leaves exactly that shape, and the timeline reports them as
interrupted.

:class:`RecoveryTimeline` additionally cross-checks: its
:meth:`~RecoveryTimeline.totals` aggregates the per-record redo events,
and the tests assert those equal the engine's
:class:`~repro.obs.metrics.MetricsRegistry` snapshot — the trace and
the counters are two views of one history and must agree.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from typing import Any, Iterable

_RECORD_TYPES = ("span_start", "span_end", "event")


class TraceReadError(ValueError):
    """The trace is malformed (bad JSON, bad structure, bad references)."""


def load_trace(path: str) -> list[dict]:
    """Parse a JSON-lines trace file, validating every record.

    Each line must be a JSON object with an integer ``seq`` and a
    ``type`` of ``span_start``/``span_end``/``event`` carrying that
    type's required keys.  Returns the records in file order.
    """
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceReadError(f"{path}:{lineno}: bad JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise TraceReadError(f"{path}:{lineno}: record is not an object")
            _validate_record(record, f"{path}:{lineno}")
            records.append(record)
    return records


def _validate_record(record: dict, where: str) -> None:
    kind = record.get("type")
    if kind not in _RECORD_TYPES:
        raise TraceReadError(f"{where}: unknown record type {kind!r}")
    if not isinstance(record.get("seq"), int):
        raise TraceReadError(f"{where}: missing integer 'seq'")
    if not isinstance(record.get("fields", {}), dict):
        raise TraceReadError(f"{where}: 'fields' is not an object")
    if kind in ("span_start", "span_end"):
        if not isinstance(record.get("id"), int):
            raise TraceReadError(f"{where}: span record missing integer 'id'")
    if kind in ("span_start", "event"):
        if not isinstance(record.get("name"), str):
            raise TraceReadError(f"{where}: record missing 'name'")


class SpanNode:
    """One span of the rebuilt tree: fields, child spans, child events."""

    __slots__ = ("span_id", "name", "fields", "end_fields", "children", "events", "closed")

    def __init__(self, span_id: int, name: str, fields: dict):
        self.span_id = span_id
        self.name = name
        self.fields = fields
        self.end_fields: dict = {}
        self.children: list[SpanNode] = []
        self.events: list[dict] = []
        self.closed = False

    def field(self, key: str, default: Any = None) -> Any:
        """A field value, end fields taking precedence over start fields."""
        if key in self.end_fields:
            return self.end_fields[key]
        return self.fields.get(key, default)

    def walk(self) -> Iterable["SpanNode"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["SpanNode"]:
        """Every descendant span (including self) named ``name``."""
        return [node for node in self.walk() if node.name == name]

    def __repr__(self) -> str:
        state = "closed" if self.closed else "OPEN"
        return (
            f"SpanNode(#{self.span_id} {self.name!r} {state}, "
            f"children={len(self.children)}, events={len(self.events)})"
        )


def build_span_tree(
    records: Iterable[dict], lenient: bool = False
) -> tuple[list[SpanNode], list[dict]]:
    """Rebuild the span forest from a record stream.

    Returns ``(roots, top_events)`` where ``top_events`` are events
    emitted outside any span.  Raises :class:`TraceReadError` on
    references to unknown spans or double closes; leaving spans open is
    allowed (interrupted runs).

    ``lenient=True`` is for *tails* of a trace — a flight ring holds
    only the newest N records, so a span's start may have been
    overwritten while its end or events survive.  In that mode dangling
    references degrade instead of raising: an unknown parent makes the
    span a root, an end for an unknown span synthesizes a closed root
    (so its fields still render), an event for an unknown span becomes
    a top-level event, and a double close merges end fields.
    """
    nodes: dict[int, SpanNode] = {}
    roots: list[SpanNode] = []
    top_events: list[dict] = []
    for record in records:
        kind = record["type"]
        if kind == "span_start":
            if record["id"] in nodes:
                if lenient:
                    continue  # wrapped duplicate: keep the first sighting
                raise TraceReadError(f"span id {record['id']} opened twice")
            node = SpanNode(record["id"], record["name"], record.get("fields", {}))
            nodes[record["id"]] = node
            parent = record.get("parent")
            if parent is None:
                roots.append(node)
            elif parent in nodes:
                nodes[parent].children.append(node)
            elif lenient:
                roots.append(node)  # parent's start fell off the ring
            else:
                raise TraceReadError(
                    f"span #{record['id']} has unknown parent #{parent}"
                )
        elif kind == "span_end":
            node = nodes.get(record["id"])
            if node is None:
                if not lenient:
                    raise TraceReadError(f"span_end for unknown span #{record['id']}")
                node = SpanNode(record["id"], record.get("name", "?"), {})
                nodes[record["id"]] = node
                roots.append(node)
            if node.closed:
                if not lenient:
                    raise TraceReadError(f"span #{record['id']} closed twice")
                node.end_fields = {**node.end_fields, **record.get("fields", {})}
            else:
                node.closed = True
                node.end_fields = record.get("fields", {})
        else:  # event
            span_id = record.get("span")
            node = nodes.get(span_id) if span_id is not None else None
            if node is not None:
                node.events.append(record)
            elif span_id is None or lenient:
                top_events.append(record)
            else:
                raise TraceReadError(
                    f"event {record.get('name')!r} references unknown "
                    f"span #{span_id}"
                )
    return roots, top_events


def _all_events(roots: list[SpanNode], top_events: list[dict]) -> Iterable[dict]:
    yield from top_events
    for root in roots:
        for node in root.walk():
            yield from node.events


class RecoveryTimeline:
    """A trace, rebuilt and rendered as a recovery story.

    Construct from parsed records, a file
    (:meth:`from_file`), or a live
    :class:`~repro.obs.trace.RingBufferSink` (:meth:`from_sink`).
    """

    def __init__(self, records: Iterable[dict], lenient: bool = False):
        self.records = list(records)
        self.roots, self.top_events = build_span_tree(self.records, lenient=lenient)

    @classmethod
    def from_file(cls, path: str) -> "RecoveryTimeline":
        """Load and validate a JSON-lines trace file."""
        return cls(load_trace(path))

    @classmethod
    def from_sink(cls, sink: Iterable[dict]) -> "RecoveryTimeline":
        """Build from an in-memory sink (e.g. a ring buffer)."""
        return cls(list(sink))

    @classmethod
    def from_flight_ring(cls, ring: Iterable[dict]) -> "RecoveryTimeline":
        """Build leniently from a flight ring (a tail with dangling refs)."""
        return cls(list(ring), lenient=True)

    # -- queries -------------------------------------------------------

    def spans(self, name: str) -> list[SpanNode]:
        """Every span named ``name``, in trace order."""
        found: list[SpanNode] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def recoveries(self) -> list[SpanNode]:
        """The ``recovery`` spans (one per crash/recover cycle traced)."""
        return self.spans("recovery")

    def open_spans(self) -> list[SpanNode]:
        """Every span left unclosed — what the process was doing when it died."""
        found: list[SpanNode] = []
        for root in self.roots:
            found.extend(node for node in root.walk() if not node.closed)
        found.sort(key=lambda node: node.span_id)
        return found

    def events(self, name: str | None = None) -> list[dict]:
        """Every event (optionally filtered by name), in trace order."""
        events = sorted(_all_events(self.roots, self.top_events), key=lambda r: r["seq"])
        if name is None:
            return events
        return [e for e in events if e.get("name") == name]

    # -- aggregation ---------------------------------------------------

    def totals(self) -> dict[str, int]:
        """Trace-derived counters, named to match the metrics registry.

        ``method.records_scanned`` / ``_replayed`` / ``_skipped`` come
        from the per-record redo events; ``cache.flushes`` and
        ``scheduler.elisions`` from the flush-decision events.  For a
        database traced from birth these must equal the corresponding
        keys of its :class:`~repro.obs.metrics.MetricsRegistry`
        snapshot — the cross-check the golden-file test enforces.
        """
        decisions = TallyCounter(
            e["fields"].get("decision") for e in self.events("recovery.record")
        )
        # Partitioned redo traces a summary event instead of per-record
        # events (worker threads do the replaying); fold those in.
        part_scanned = part_replayed = part_skipped = 0
        for event in self.events("recovery.partitioned"):
            part_scanned += event["fields"].get("scanned", 0)
            part_replayed += event["fields"].get("replayed", 0)
            part_skipped += event["fields"].get("skipped", 0)
        replayed = decisions.get("replayed", 0) + part_replayed
        skipped = decisions.get("skipped", 0) + part_skipped
        return {
            "method.records_scanned": sum(decisions.values()) + part_scanned,
            "method.records_replayed": replayed,
            "method.records_skipped": skipped,
            "cache.flushes": len(self.events("cache.flush")),
            "scheduler.elisions": len(self.events("scheduler.remove_write")),
        }

    def _segment_line(self, segment: SpanNode) -> str:
        decisions = TallyCounter(
            e["fields"].get("decision") for e in segment.events
            if e.get("name") == "recovery.record"
        )
        reasons = TallyCounter(
            e["fields"].get("reason") for e in segment.events
            if e.get("name") == "recovery.record"
            and e["fields"].get("decision") == "skipped"
        )
        scanned = sum(decisions.values())
        parts = [
            f"segment [{segment.field('base_lsn')}..{segment.field('end_lsn')}]:",
            f"scanned={scanned}",
            f"replayed={decisions.get('replayed', 0)}",
            f"skipped={decisions.get('skipped', 0)}",
        ]
        if reasons:
            detail = ", ".join(f"{r}={n}" for r, n in sorted(reasons.items()))
            parts.append(f"(skips: {detail})")
        if not segment.closed:
            parts.append("[interrupted]")
        return " ".join(parts)

    # -- rendering -----------------------------------------------------

    def render(self, max_decisions: int = 12) -> str:
        """The human-readable account, as one multi-line string."""
        lines: list[str] = []
        commands = self.events("engine.command")
        forces = self.events("log.force")
        flushes = self.events("cache.flush")
        elides = self.events("cache.elide")
        blocked = self.events("cache.flush_blocked")
        lines.append(
            f"trace: {len(self.records)} records — "
            f"{len(commands)} commands, {len(forces)} log forces, "
            f"{len(flushes)} page flushes, {len(elides)} elisions, "
            f"{len(blocked)} blocked flush attempts"
        )

        for index, recovery in enumerate(self.recoveries(), start=1):
            header = (
                f"recovery #{index} ({recovery.field('method', '?')}"
                f"{', full scan' if recovery.field('full_scan') else ''}) — "
                f"redo_start={recovery.field('redo_start', '?')} "
                f"scanned={recovery.field('scanned', '?')} "
                f"replayed={recovery.field('replayed', '?')} "
                f"skipped={recovery.field('skipped', '?')}"
            )
            if not recovery.closed:
                header += "  [INTERRUPTED]"
            lines.append(header)
            for analysis in recovery.find("recovery.analysis"):
                detail = ", ".join(
                    f"{k}={v}"
                    for k, v in {**analysis.fields, **analysis.end_fields}.items()
                )
                lines.append(f"  analysis: {detail}")
            for segment in recovery.find("recovery.segment"):
                lines.append("  " + self._segment_line(segment))
            for event in recovery.events:
                if event.get("name") == "recovery.partitioned":
                    detail = ", ".join(
                        f"{k}={v}" for k, v in sorted(event["fields"].items())
                    )
                    lines.append(f"  partitioned redo: {detail}")
        if not self.recoveries():
            lines.append("no recovery spans in this trace")

        decisions = flushes + elides + blocked
        decisions.sort(key=lambda e: e["seq"])
        if decisions:
            lines.append(f"flush decisions ({len(decisions)}):")
            for event in decisions[:max_decisions]:
                fields = event["fields"]
                if event["name"] == "cache.flush":
                    lines.append(
                        f"  install {fields.get('page')} "
                        f"(node #{fields.get('node')}, writes={fields.get('writes')}, "
                        f"lsn={fields.get('lsn')}, blockers clear)"
                    )
                elif event["name"] == "cache.elide":
                    lines.append(
                        f"  elide {fields.get('page')} "
                        f"(node #{fields.get('node')}, {fields.get('reason')})"
                    )
                else:
                    lines.append(
                        f"  blocked {fields.get('page')} "
                        f"(waiting on {fields.get('blockers')})"
                    )
            if len(decisions) > max_decisions:
                lines.append(f"  ... and {len(decisions) - max_decisions} more")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RecoveryTimeline(records={len(self.records)}, "
            f"recoveries={len(self.recoveries())})"
        )
