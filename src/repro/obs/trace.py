"""Structured tracing: typed span/event records over pluggable sinks.

A trace is a sequence of flat dict records, one per line in the
JSON-lines serialization.  Three record types:

- ``span_start`` — opens a span (``id``, ``name``, ``parent``, start
  ``fields``);
- ``span_end`` — closes it (``id``, end ``fields`` merged by readers);
- ``event`` — a point observation attached to the innermost open span
  (``span``) at emission time.

Every record carries a monotonically increasing ``seq`` so traces are
totally ordered and deterministic (no wall-clock dependence — replays
of the same seeded workload produce structurally identical traces).

The cost contract: instrumentation sites throughout the engine, log
manager, cache, and recovery methods guard with ``if tracer.enabled:``
before building any event fields.  The shared :data:`NULL_TRACER`
(``enabled = False``) therefore reduces a disabled site to one
attribute load plus a branch — no allocation, no call.  The E17
benchmark measures exactly this.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Iterable, Iterator


class TraceError(RuntimeError):
    """A structural tracing violation (e.g. ending a span twice)."""


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class NullSink:
    """Discards every record (the sink behind :data:`NULL_TRACER`)."""

    def emit(self, record: dict) -> None:
        """Drop the record."""

    def close(self) -> None:
        """Nothing to release."""


class RingBufferSink:
    """Keeps the newest ``capacity`` records in memory.

    The flight-recorder sink: always-on tracing with bounded memory,
    inspected after the fact (e.g. by
    :class:`repro.obs.timeline.RecoveryTimeline`).  ``dropped`` counts
    records that fell off the old end.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.records: deque[dict] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, record: dict) -> None:
        """Append, evicting the oldest record when full."""
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(record)

    def close(self) -> None:
        """Nothing to release; records stay readable."""

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records)


class TeeSink:
    """Fans each record out to several sinks (e.g. ring buffer + flight ring).

    Emission order follows construction order; ``close`` closes every
    sink, even if an earlier one raises.
    """

    def __init__(self, *sinks: Any):
        if not sinks:
            raise ValueError("TeeSink needs at least one sink")
        self.sinks = tuple(sinks)

    def emit(self, record: dict) -> None:
        """Emit the record to every sink, in order."""
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        """Close every sink; the first failure propagates after all run."""
        first_error: Exception | None = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:  # pragma: no cover - defensive
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def __iter__(self) -> Iterator[dict]:
        # Iterating a tee iterates its first iterable sink (the ring
        # buffer in the standard ring+flight pairing).
        for sink in self.sinks:
            if hasattr(sink, "__iter__"):
                return iter(sink)
        return iter(())


class JsonLinesSink:
    """Serializes each record as one JSON line to a file.

    Values that are not JSON-native are stringified (``default=str``),
    so payload type names, tuples, and the like never break a trace.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.records_written = 0

    def emit(self, record: dict) -> None:
        """Write one record as a JSON line."""
        self._fh.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)
        )
        self._fh.write("\n")
        self.records_written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

class Span:
    """One open span; close it with :meth:`end` (or as a context manager).

    Created only by :meth:`Tracer.span`.  Ending a span pops it from the
    tracer's open-span stack; spans left open at a crash are legal — the
    timeline reader treats an unclosed span as interrupted, which is
    precisely what a crash mid-recovery looks like.
    """

    __slots__ = ("_tracer", "span_id", "name", "_ended")

    def __init__(self, tracer: "Tracer", span_id: int, name: str):
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self._ended = False

    def end(self, **fields: Any) -> None:
        """Close the span, attaching ``fields`` to its ``span_end`` record."""
        if self._ended:
            raise TraceError(f"span {self.name!r} (#{self.span_id}) ended twice")
        self._ended = True
        self._tracer._end_span(self, fields)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._ended:
            self.end()

    def __repr__(self) -> str:
        state = "ended" if self._ended else "open"
        return f"Span(#{self.span_id} {self.name!r}, {state})"


class _NullSpan:
    """The no-op span :data:`NULL_TRACER` hands out (one shared instance)."""

    __slots__ = ()
    span_id = -1
    name = ""

    def end(self, **fields: Any) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# Tracers
# ----------------------------------------------------------------------

class Tracer:
    """Emits span/event records to a sink; ``enabled`` is True.

    One tracer is threaded through a whole machine (engine, log manager,
    buffer pool, scheduler, methods) so all their records interleave in
    one totally ordered stream.  Emission is atomic under an internal
    lock — ``seq`` assignment and the sink write happen together, so
    concurrent sessions produce a gap-free, duplicate-free sequence (the
    stream's *order* across threads is whatever the lock ordained, which
    is the only total order there is).  The lock is on the enabled path
    only; the ``if tracer.enabled:`` guard still reduces a disabled site
    to one attribute load plus a branch.
    """

    enabled = True

    def __init__(self, sink: Any = None):
        self.sink = sink if sink is not None else RingBufferSink()
        self._seq = 0
        self._stack: list[int] = []
        self._lock = threading.Lock()
        self.records_emitted = 0

    # -- emission ------------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point event attached to the innermost open span."""
        with self._lock:
            self._emit(
                {
                    "seq": self._seq,
                    "type": "event",
                    "name": name,
                    "span": self._stack[-1] if self._stack else None,
                    "fields": fields,
                }
            )

    def span(self, name: str, **fields: Any) -> Span:
        """Open a span (child of the innermost open span) and return it."""
        with self._lock:
            span_id = self._seq
            self._emit(
                {
                    "seq": self._seq,
                    "type": "span_start",
                    "name": name,
                    "id": span_id,
                    "parent": self._stack[-1] if self._stack else None,
                    "fields": fields,
                }
            )
            self._stack.append(span_id)
        return Span(self, span_id, name)

    def _end_span(self, span: Span, fields: dict) -> None:
        # Out-of-order ends are tolerated (remove wherever it sits): an
        # exception unwinding through nested context managers may close
        # an outer span while an inner one was abandoned by a crash.
        with self._lock:
            if span.span_id in self._stack:
                self._stack.remove(span.span_id)
            self._emit(
                {
                    "seq": self._seq,
                    "type": "span_end",
                    "name": span.name,
                    "id": span.span_id,
                    "fields": fields,
                }
            )

    def _emit(self, record: dict) -> None:
        # Caller holds self._lock: seq advance and sink write are atomic.
        self._seq += 1
        self.records_emitted += 1
        self.sink.emit(record)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the sink (flushing file sinks)."""
        self.sink.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(records={self.records_emitted}, "
            f"open_spans={len(self._stack)})"
        )


class NullTracer(Tracer):
    """The disabled tracer: ``enabled`` is False and every method no-ops.

    Instrumentation sites must guard with ``if tracer.enabled:`` — that
    guard is the entire disabled-mode cost.  The overridden methods
    below are belt and braces for unguarded callers (tests, examples):
    they allocate nothing and emit nothing.
    """

    enabled = False

    def __init__(self):
        super().__init__(NullSink())

    def event(self, name: str, **fields: Any) -> None:
        """No-op."""

    def span(self, name: str, **fields: Any) -> _NullSpan:  # type: ignore[override]
        """Return the shared no-op span."""
        return NULL_SPAN

    def close(self) -> None:
        """No-op."""


NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Scan helpers
# ----------------------------------------------------------------------

def traced_segments(tracer: Tracer, log: Any, records: Iterable) -> Iterator:
    """Wrap a log-record stream in per-segment ``recovery.segment`` spans.

    ``records`` is any iterator of :class:`~repro.logmgr.records.LogRecord`
    in LSN order (the methods pass ``log.stable_records_from(start)``).
    Each time the stream crosses into a new log segment, the previous
    segment span is closed and a new one opened carrying the segment's
    LSN range — so per-record ``recovery.record`` events emitted by the
    consumer attach to the segment they belong to, and the timeline can
    report scanned/replayed/skipped per segment.

    Only call when the tracer is enabled; the segment lookup is a bisect
    per segment boundary, not per record.
    """
    span = None
    end_lsn = -1
    try:
        for record in records:
            if record.lsn > end_lsn:
                if span is not None:
                    span.end()
                segment = log.segment_containing(record.lsn)
                end_lsn = segment.end_lsn
                span = tracer.span(
                    "recovery.segment",
                    base_lsn=segment.base_lsn,
                    end_lsn=end_lsn,
                )
            yield record
    finally:
        if span is not None:
            span.end()
