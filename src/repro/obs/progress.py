"""Live recovery progress: gauges over the streaming redo scan.

Tracing (:mod:`repro.obs.trace`) records what recovery *did*; this
module reports what it is *doing*, while it runs.  A
:class:`RecoveryProgress` is attached to a machine
(``machine.progress``), the redo paths wrap their record stream in
:meth:`RecoveryProgress.watch`, and an ``on_update`` callback receives
throttled snapshots — which is how ``serve --shards N`` prints a
per-shard progress line during a process-parallel cold start.

The cost contract mirrors the tracer's: the shared
:data:`NULL_PROGRESS` (``enabled = False``) makes an uninstrumented
pass free — ``watch`` returns the iterator it was given, untouched —
and the live wrapper amortizes its clock reads (one ``monotonic()``
per 64 records), so progress never becomes the thing slowing the
recovery it measures.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Iterator

_CHECK_EVERY = 64  # records between clock reads in watch()


class RecoveryProgress:
    """Counters for one recovery pass, with a throttled update callback.

    ``on_update`` (if given) is called with :meth:`snapshot` dicts: once
    per phase change, at most once per ``min_interval`` seconds during
    the record stream, and once from :meth:`finish`.
    """

    enabled = True

    def __init__(
        self,
        on_update: Callable[[dict], None] | None = None,
        min_interval: float = 0.2,
        label: str = "",
    ):
        self.on_update = on_update
        self.min_interval = min_interval
        self.label = label
        self.phase = "idle"
        self.segments = 0
        self.records = 0
        self.bytes = 0
        self.started_at = time.monotonic()
        self._stats: Any = None
        self._replayed_base = 0
        self._last_fire = 0.0

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> dict:
        """The current gauges as a plain dict."""
        replayed = 0
        if self._stats is not None:
            replayed = self._stats.records_replayed - self._replayed_base
        return {
            "label": self.label,
            "phase": self.phase,
            "segments": self.segments,
            "records": self.records,
            "replayed": replayed,
            "bytes": self.bytes,
            "elapsed_s": time.monotonic() - self.started_at,
        }

    def _fire(self) -> None:
        if self.on_update is not None:
            self._last_fire = time.monotonic()
            self.on_update(self.snapshot())

    def set_phase(self, phase: str) -> None:
        """Enter a named phase (``analysis``/``redo``/``ready``/...)."""
        self.phase = phase
        self._fire()

    def finish(self) -> None:
        """Mark the pass complete and fire a final update."""
        self.set_phase("ready")

    # -- the stream wrapper --------------------------------------------

    def watch(
        self,
        records: Iterable,
        log: Any = None,
        stats: Any = None,
    ) -> Iterator:
        """Wrap a redo record stream, counting as it is consumed.

        Counts records and payload bytes always; segment crossings when
        ``log`` is given (same boundary test as
        :func:`~repro.obs.trace.traced_segments`); replayed records when
        ``stats`` (a :class:`~repro.methods.base.MethodStats`) is given,
        read as a delta so pre-existing counts don't leak in.
        """
        if stats is not None:
            self._stats = stats
            self._replayed_base = stats.records_replayed
        end_lsn = -1
        since_check = 0
        for record in records:
            self.records += 1
            self.bytes += record.size_bytes()
            if log is not None and record.lsn > end_lsn:
                end_lsn = log.segment_containing(record.lsn).end_lsn
                self.segments += 1
            yield record
            since_check += 1
            if since_check >= _CHECK_EVERY:
                since_check = 0
                if (
                    self.on_update is not None
                    and time.monotonic() - self._last_fire >= self.min_interval
                ):
                    self._fire()


class NullRecoveryProgress(RecoveryProgress):
    """The disabled progress object: ``watch`` is the identity."""

    enabled = False

    def __init__(self):
        super().__init__()

    def snapshot(self) -> dict:
        """A static empty snapshot (never fires a callback)."""
        return {
            "label": "",
            "phase": "idle",
            "segments": 0,
            "records": 0,
            "replayed": 0,
            "bytes": 0,
            "elapsed_s": 0.0,
        }

    def set_phase(self, phase: str) -> None:
        """No-op."""

    def finish(self) -> None:
        """No-op."""

    def watch(self, records: Iterable, log: Any = None, stats: Any = None) -> Iterator:
        """Return the stream untouched (zero overhead)."""
        return iter(records)


NULL_PROGRESS = NullRecoveryProgress()
