"""Crash flight recorder: a bounded, file-backed ring of trace records.

The in-memory :class:`~repro.obs.trace.RingBufferSink` dies with the
process — exactly when its contents matter most.  The flight recorder
keeps the newest trace records in a **fixed-size slot file** in the log
directory so a SIGKILL leaves evidence on disk:

- a 16-byte header (``FREC`` magic, format version, slot size, slot
  count) written once at creation;
- ``n_slots`` fixed-width slots, each framed as
  ``crc32(u32) | length(u32) | seq(u64) | payload`` with the payload
  zero-padded to the slot width.  Record ``i`` lives in slot
  ``i % n_slots``, so the file is a ring that overwrites oldest-first
  and never grows.

Durability is deliberately **best-effort**: every write is a single
``pwrite`` at a slot offset with no fsync — the recorder must never
slow the hot path it is observing, and after a SIGKILL (process death,
OS survives) the page cache preserves the writes anyway.  What a crash
*can* leave is a torn slot, which is why each slot carries its own CRC:
:meth:`FlightRecorder.records` simply drops slots that fail the check.
A torn or stale slot costs one record of history, never the file.

Reopening an existing ring (:meth:`FlightRecorder.open`) scans all
slots, validates CRCs, and resumes the sequence after the highest
surviving ``seq`` — so the ring accumulates history across restarts of
the same deployment, and ``repro postmortem`` can read the final
moments of a process that no longer exists.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from collections import deque
from typing import Iterator

FLIGHT_MAGIC = b"FREC"
FLIGHT_VERSION = 1
FLIGHT_FILENAME = "FLIGHT.ring"

_HEADER = struct.Struct("<4sHxxII")  # magic, version, pad, slot_size, n_slots
_SLOT_FRAME = struct.Struct("<IIQ")  # crc32, payload length, seq


class FlightRecorderError(RuntimeError):
    """The ring file is structurally unusable (bad magic/version/geometry)."""


class FlightRecorder:
    """A fixed-size on-disk ring of JSON trace records.

    Create a fresh ring with :meth:`create`, reattach to a survivor with
    :meth:`open`, or do whichever applies with :meth:`attach`.  Appends
    are thread-safe; readers should use :meth:`records` (oldest→newest
    by ``seq``).
    """

    def __init__(self, path: str, fd: int, slot_size: int, n_slots: int, next_seq: int):
        self.path = str(path)
        self._fd = fd
        self.slot_size = slot_size
        self.n_slots = n_slots
        self.next_seq = next_seq
        self.appended = 0
        self.truncated_payloads = 0
        self._lock = threading.Lock()
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, path: str, slot_size: int = 512, n_slots: int = 2048) -> "FlightRecorder":
        """Create (or overwrite) a ring file sized ``slot_size * n_slots``."""
        if slot_size < _SLOT_FRAME.size + 2:
            raise FlightRecorderError(f"slot_size {slot_size} too small")
        if n_slots < 1:
            raise FlightRecorderError("n_slots must be at least 1")
        fd = os.open(str(path), os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
        os.pwrite(fd, _HEADER.pack(FLIGHT_MAGIC, FLIGHT_VERSION, slot_size, n_slots), 0)
        # Pre-size the file so every slot offset is a plain overwrite.
        os.ftruncate(fd, _HEADER.size + slot_size * n_slots)
        return cls(path, fd, slot_size, n_slots, next_seq=0)

    @classmethod
    def open(cls, path: str) -> "FlightRecorder":
        """Reattach to an existing ring, resuming after the last good seq."""
        fd = os.open(str(path), os.O_RDWR)
        try:
            slot_size, n_slots = cls._read_header(fd, path)
        except Exception:
            os.close(fd)
            raise
        recorder = cls(path, fd, slot_size, n_slots, next_seq=0)
        survivors = recorder._scan()
        if survivors:
            recorder.next_seq = max(seq for seq, _ in survivors) + 1
        return recorder

    @classmethod
    def attach(cls, path: str, slot_size: int = 512, n_slots: int = 2048) -> "FlightRecorder":
        """Open ``path`` if it is a usable ring, else create a fresh one."""
        if os.path.exists(str(path)):
            try:
                return cls.open(path)
            except (FlightRecorderError, OSError):
                pass  # unusable file: recreate below
        return cls.create(path, slot_size=slot_size, n_slots=n_slots)

    @staticmethod
    def _read_header(fd: int, path: str) -> tuple[int, int]:
        raw = os.pread(fd, _HEADER.size, 0)
        if len(raw) != _HEADER.size:
            raise FlightRecorderError(f"{path}: truncated flight-ring header")
        magic, version, slot_size, n_slots = _HEADER.unpack(raw)
        if magic != FLIGHT_MAGIC:
            raise FlightRecorderError(f"{path}: bad magic {magic!r}")
        if version != FLIGHT_VERSION:
            raise FlightRecorderError(f"{path}: unsupported version {version}")
        if slot_size < _SLOT_FRAME.size + 2 or n_slots < 1:
            raise FlightRecorderError(f"{path}: bad geometry {slot_size}x{n_slots}")
        return slot_size, n_slots

    # -- writing -------------------------------------------------------

    def append(self, record: dict) -> None:
        """Write one record into the next slot (overwriting the oldest).

        Payloads longer than the slot allows are degraded to a stub that
        keeps the record's identity (``seq``/``type``/``name``) — the
        ring prefers a thin record over a missing one.
        """
        max_payload = self.slot_size - _SLOT_FRAME.size
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True, default=str
        ).encode("utf-8")
        if len(payload) > max_payload:
            stub = {
                "seq": record.get("seq"),
                "type": record.get("type"),
                "name": record.get("name"),
                "truncated": True,
            }
            if record.get("type") in ("span_start", "span_end"):
                stub["id"] = record.get("id")
                stub["parent"] = record.get("parent")
            else:
                stub["span"] = record.get("span")
            payload = json.dumps(stub, separators=(",", ":")).encode("utf-8")[:max_payload]
            self.truncated_payloads += 1
        with self._lock:
            if self._closed:
                return
            seq = self.next_seq
            self.next_seq += 1
            self.appended += 1
            crc = zlib.crc32(_SLOT_FRAME.pack(0, len(payload), seq)[4:] + payload)
            frame = _SLOT_FRAME.pack(crc, len(payload), seq) + payload
            frame = frame.ljust(self.slot_size, b"\x00")
            offset = _HEADER.size + (seq % self.n_slots) * self.slot_size
            os.pwrite(self._fd, frame, offset)

    # -- reading -------------------------------------------------------

    def _scan(self) -> list[tuple[int, dict]]:
        survivors: list[tuple[int, dict]] = []
        for index in range(self.n_slots):
            raw = os.pread(self._fd, self.slot_size, _HEADER.size + index * self.slot_size)
            if len(raw) < _SLOT_FRAME.size:
                continue
            crc, length, seq = _SLOT_FRAME.unpack_from(raw)
            if length == 0 or length > self.slot_size - _SLOT_FRAME.size:
                continue
            payload = raw[_SLOT_FRAME.size:_SLOT_FRAME.size + length]
            if zlib.crc32(raw[4:_SLOT_FRAME.size] + payload) != crc:
                continue  # torn slot: one record lost, ring intact
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            if isinstance(record, dict):
                survivors.append((seq, record))
        survivors.sort(key=lambda pair: pair[0])
        return survivors

    def records(self) -> list[dict]:
        """Every surviving record, oldest→newest by ring sequence."""
        with self._lock:
            return [record for _, record in self._scan()]

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records())

    def __len__(self) -> int:
        with self._lock:
            return len(self._scan())

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the file descriptor (idempotent, no fsync by design)."""
        with self._lock:
            if not self._closed:
                self._closed = True
                os.close(self._fd)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({self.path!r}, {self.slot_size}x{self.n_slots}, "
            f"next_seq={self.next_seq})"
        )


class FlightRecorderSink:
    """A tracer sink that tees every record into a :class:`FlightRecorder`.

    Pair it with any other sink via :class:`~repro.obs.trace.TeeSink` to
    keep the normal in-memory ring *and* the on-disk flight ring.

    Writes are **write-behind**: :meth:`emit` runs inside the tracer's
    emission lock, so it must not pay the JSON encode + ``pwrite``
    (~10µs) there — it appends to a bounded in-memory queue and a
    daemon drainer thread does the disk work, overlapping the log's
    fsync waits instead of serializing every traced thread.  The cost:
    a SIGKILL loses whatever was still queued — typically well under a
    millisecond of history, the same bounded-loss contract the no-fsync
    policy already accepts.  Queue overflow drops oldest (counted in
    ``dropped``), mirroring the ring's own overwrite policy.
    """

    def __init__(self, recorder: FlightRecorder, queue_capacity: int = 8192):
        self.recorder = recorder
        self.dropped = 0
        self._queue: deque = deque(maxlen=queue_capacity)
        self._wake = threading.Event()
        self._stop = False
        self._drainer = threading.Thread(
            target=self._drain, name="flightrec-drain", daemon=True
        )
        self._drainer.start()

    def emit(self, record: dict) -> None:
        """Queue the record for the drainer (cheap: one deque append)."""
        queue = self._queue
        if len(queue) == queue.maxlen:
            self.dropped += 1  # overwrite-oldest, same policy as the ring
        queue.append(record)
        self._wake.set()

    def _drain(self) -> None:
        queue = self._queue
        while True:
            self._wake.wait(timeout=0.05)
            self._wake.clear()
            while queue:
                try:
                    record = queue.popleft()
                except IndexError:  # pragma: no cover - racing close()
                    break
                try:
                    self.recorder.append(record)
                except OSError:
                    pass  # a broken disk must never take down the drainer
            if self._stop:
                return

    def flush(self, timeout: float = 5.0) -> None:
        """Block until every queued record reached the ring file."""
        deadline = time.monotonic() + timeout
        while self._queue and time.monotonic() < deadline:
            self._wake.set()
            time.sleep(0.001)

    def close(self) -> None:
        """Drain the queue, stop the drainer, close the ring file."""
        self.flush()
        self._stop = True
        self._wake.set()
        self._drainer.join(timeout=5.0)
        while self._queue:  # belt and braces: the drainer is gone now
            try:
                self.recorder.append(self._queue.popleft())
            except (IndexError, OSError):
                break
        self.recorder.close()


def flight_ring_path(log_dir: str) -> str:
    """The canonical flight-ring location for a log directory."""
    return os.path.join(str(log_dir), FLIGHT_FILENAME)
