"""Recovery provenance: tracing and metrics for the whole stack.

The Recovery Invariant is a contract between normal operation and
recovery; this package makes every contract-relevant decision
*observable* in production mode instead of only in the sim auditor:

- :mod:`repro.obs.metrics` — a zero-dependency :class:`MetricsRegistry`
  of counters/gauges/histograms that unifies the scattered per-component
  counters (method stats, scheduler stats, log/disk/pool counters)
  behind one namespaced read path (``method.records_replayed``,
  ``scheduler.elisions``, ``log.forces``, ...) with snapshot/delta
  APIs;
- :mod:`repro.obs.trace` — a structured :class:`Tracer` emitting typed
  span/event records to pluggable sinks (JSON-lines file, ring buffer,
  null), instrumented at every theory-relevant seam: engine command
  execution, WAL append/force, checkpoints, flush/elide/victim
  decisions (with their write-graph reason), and recovery itself as a
  span tree (analysis → per-segment redo → per-record replay);
- :mod:`repro.obs.timeline` — :class:`RecoveryTimeline`, which replays
  a trace into a human-readable account of a crash/recovery run and
  cross-checks its totals against the metrics registry.

Tracing is **off by default and cheap**: the shared :data:`NULL_TRACER`
is a no-op object, and every instrumentation site guards with
``if tracer.enabled:`` so a disabled tracer costs one attribute load
and a branch — no event dict is ever built (verified by the E17
overhead benchmark).
"""

from repro.obs.flightrec import (
    FLIGHT_FILENAME,
    FlightRecorder,
    FlightRecorderError,
    FlightRecorderSink,
    flight_ring_path,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsError, MetricsRegistry
from repro.obs.progress import NULL_PROGRESS, RecoveryProgress
from repro.obs.timeline import RecoveryTimeline, SpanNode, build_span_tree, load_trace
from repro.obs.trace import (
    NULL_TRACER,
    JsonLinesSink,
    NullSink,
    NullTracer,
    RingBufferSink,
    Span,
    TeeSink,
    Tracer,
    traced_segments,
)

__all__ = [
    "Counter",
    "FLIGHT_FILENAME",
    "FlightRecorder",
    "FlightRecorderError",
    "FlightRecorderSink",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsError",
    "MetricsRegistry",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullSink",
    "NullTracer",
    "RecoveryProgress",
    "RecoveryTimeline",
    "RingBufferSink",
    "Span",
    "SpanNode",
    "TeeSink",
    "Tracer",
    "build_span_tree",
    "flight_ring_path",
    "load_trace",
    "traced_segments",
]
