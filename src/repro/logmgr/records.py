"""Typed log records for the four §6 recovery disciplines.

Every payload is plain data: replay is performed by interpreting the
record against pages, never by calling captured closures, because a log
that survives a crash can only contain data.  ``size_bytes`` estimates
are deterministic and value-proportional so the log-volume experiments
(notably E6, the B-tree split comparison) measure something meaningful.

The action vocabulary for page-logical records is deliberately small —
``put``, ``delete``, ``add``, ``copycell``, ``copyfrom``,
``split-move``, ``truncate``, ``set-meta`` — matching exactly what the
KV engines and the B-tree need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.page import Page


@dataclass(frozen=True)
class PageAction:
    """One logical action against one page.

    ``kind`` selects the interpretation:

    - ``"put"``: args = (cell, value) — upsert a cell.
    - ``"delete"``: args = (cell,) — remove a cell.
    - ``"add"``: args = (cell, delta) — arithmetic update reading the cell.
    - ``"split-move"``: args = (source_page_id, split_key) — fill this page
      with every cell of the *source* page whose key is >= split_key
      (reads another page: only legal in multi-page records).
    - ``"truncate"``: args = (split_key,) — drop every cell >= split_key.
    - ``"set-meta"``: args = (cell, value) — metadata cell upsert (same as
      put; named separately so traces read well).
    - ``"copycell"``: args = (dst_cell, src_cell, delta) — dst <- (src or
      0) + delta, both cells on this page.
    - ``"copyfrom"``: args = (src_page_id, src_cell, dst_cell, delta) —
      like copycell but the source cell lives on another page (reads
      another page: only legal in multi-page records).
    """

    kind: str
    args: tuple = ()

    def size_bytes(self) -> int:
        """Deterministic size estimate for log-volume accounting."""
        return len(self.kind) + sum(len(repr(a)) for a in self.args) + 4

    def apply_to(self, page: Page, lsn: int | None = None, reader=None) -> None:
        """Interpret this action against ``page``.

        ``reader`` supplies other pages for ``split-move`` (a callable
        page_id -> Page); single-page disciplines never pass one.
        """
        if self.kind in ("put", "set-meta"):
            cell, value = self.args
            page.put(cell, value, lsn)
        elif self.kind == "delete":
            (cell,) = self.args
            page.delete(cell, lsn)
        elif self.kind == "add":
            cell, delta = self.args
            page.put(cell, page.get(cell, 0) + delta, lsn)
        elif self.kind == "truncate":
            (split_key,) = self.args
            for cell in [c for c in page.cells if c >= split_key]:
                page.delete(cell)
            if lsn is not None:
                page.stamp(lsn)
        elif self.kind == "copycell":
            dst_cell, src_cell, delta = self.args
            page.put(dst_cell, (page.get(src_cell) or 0) + delta, lsn)
        elif self.kind == "copyfrom":
            src_page_id, src_cell, dst_cell, delta = self.args
            if reader is None:
                raise ValueError("copyfrom needs a page reader (multi-page record)")
            source = reader(src_page_id)
            page.put(dst_cell, (source.get(src_cell) or 0) + delta, lsn)
        elif self.kind == "split-move":
            source_page_id, split_key = self.args
            if reader is None:
                raise ValueError("split-move needs a page reader (multi-page record)")
            source = reader(source_page_id)
            page.cells.clear()
            for cell, value in source:
                if cell >= split_key:
                    page.cells[cell] = value
            if lsn is not None:
                page.stamp(lsn)
        else:
            raise ValueError(f"unknown page action kind {self.kind!r}")

    def __str__(self) -> str:
        return f"{self.kind}{self.args}"


@dataclass(frozen=True)
class PhysicalRedo:
    """§6.2: the exact cells (byte ranges) written, by location.

    Physical operations only write — replay blindly installs the cells.
    ``whole_page`` distinguishes full-page from partial-page logging [1].
    """

    page_id: str
    cells: dict = field(hash=False)
    whole_page: bool = False

    def size_bytes(self) -> int:
        """Deterministic size estimate for log-volume accounting."""
        return (
            len(self.page_id)
            + sum(len(repr(k)) + len(repr(v)) for k, v in self.cells.items())
            + 8
        )


@dataclass(frozen=True)
class PhysiologicalRedo:
    """§6.3: a logical action against one physically identified page."""

    page_id: str
    action: PageAction

    def size_bytes(self) -> int:
        """Deterministic size estimate for log-volume accounting."""
        return len(self.page_id) + self.action.size_bytes() + 8


@dataclass(frozen=True)
class LogicalRedo:
    """§6.1: a database-level operation (may read and write any page).

    ``description`` is engine-interpreted data, e.g. ``("kv-put", key,
    value)``; the logical engine replays it through its normal code path.
    """

    description: tuple

    def size_bytes(self) -> int:
        """Deterministic size estimate for log-volume accounting."""
        return sum(len(repr(part)) for part in self.description) + 8


@dataclass(frozen=True)
class MultiPageRedo:
    """§6.4: a generalized operation reading and writing different pages.

    ``writes`` maps written page ids to the actions applied to them;
    ``read_page_ids`` lists the pages those actions may read.  Every
    written page is LSN-stamped with the record's LSN at replay, which is
    what makes the per-page redo test sound for multi-page operations.
    """

    read_page_ids: tuple[str, ...]
    writes: dict = field(hash=False)  # page_id -> tuple[PageAction, ...]

    def size_bytes(self) -> int:
        """Deterministic size estimate for log-volume accounting."""
        total = sum(len(p) for p in self.read_page_ids) + 8
        for page_id, actions in self.writes.items():
            total += len(page_id) + sum(action.size_bytes() for action in actions)
        return total


@dataclass(frozen=True)
class CheckpointRecord:
    """A checkpoint: data is method-specific (e.g. the swung directory for
    logical recovery, the dirty-page table for physiological)."""

    data: tuple = ()

    def size_bytes(self) -> int:
        """Deterministic size estimate for log-volume accounting."""
        return sum(len(repr(part)) for part in self.data) + 8


Payload = Any  # one of the dataclasses above, or a theory-level Operation


@dataclass(frozen=True)
class LogRecord:
    """A payload with its manager-assigned LSN — THE log record type.

    Every layer of the system speaks this one record: the §6 method
    engines log typed redo payloads, while the theory core logs abstract
    :class:`~repro.core.model.Operation` objects.  ``operation`` is the
    theory-side name for the payload, so a record reads naturally in both
    vocabularies.  ``labels`` carries whatever extra bookkeeping a logger
    wants to attach (page ids, images, trace notes) — opaque to everyone
    but its writer.
    """

    lsn: int
    payload: Payload
    labels: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def operation(self) -> Payload:
        """The payload under its theory-core name (§4: a log record *is*
        an operation plus bookkeeping)."""
        return self.payload

    def size_bytes(self) -> int:
        """The record's byte count for log-volume accounting.

        When the payload has a binary wire encoding (the §6 record
        types), this is the *exact* encoded frame length — the number of
        bytes the durable log writes for this record — computed once and
        cached on the instance (the durable append path pre-fills the
        cache from the frame it just encoded).  Payloads outside the
        wire format (abstract theory operations) fall back to the legacy
        repr-proportional estimate, kept available for everyone as
        :meth:`estimated_size_bytes`.
        """
        cached = self.__dict__.get("_encoded_size")
        if cached is not None:
            return cached
        from repro.logmgr import codec

        if codec.is_encodable(self.payload):
            try:
                size = codec.encoded_size(self)
            except codec.CodecError:
                size = self.estimated_size_bytes()
        else:
            size = self.estimated_size_bytes()
        object.__setattr__(self, "_encoded_size", size)
        return size

    def estimated_size_bytes(self) -> int:
        """The legacy deterministic estimate: payload size plus an
        8-byte LSN header.  Kept as the yardstick the E6/E6b log-volume
        experiments were originally calibrated against; a test pins it
        within a stated bound of the true encoded length."""
        sizer = getattr(self.payload, "size_bytes", None)
        if sizer is None:
            return len(repr(self.payload)) + 8
        return sizer() + 8

    def __str__(self) -> str:
        return f"[{self.lsn}] {self.payload}"


# Historical name, kept so external code written against the pre-unification
# split keeps importing; new code should say LogRecord.
LogEntry = LogRecord
