"""The per-page redo index: which frames touch which page, and where.

Recovery's eager form decodes the entire stable suffix even when it
needs a single page's history.  This module gives every segment a
sidecar (``<segment>.pages``) mapping ``page_id -> [(offset, lsn), ...]``
— the byte offset of each frame that writes the page — so a cold start
can fetch exactly one page's log chain via
:func:`~repro.logmgr.codec.read_frame_at` without decoding unrelated
frames.  Sidecars are written at seal time from the still-resident
records (zero extra reads); segments without one (unsealed tails, every
pre-sidecar directory) are indexed by a single structural scan instead,
so the index is a pure accelerator: same entries either way.

Sidecar layout::

    "RPGX" | u8 version | u64 base_lsn | u64 region_len
          | u32 payload_len | u32 crc32(payload) | payload

where ``payload`` is the tagged-value encoding (the codec's own value
format) of ``(pages, edges)``:

- ``pages``: ``{page_id: packed}`` where ``packed`` is the struct-packed
  (``<q``) flat interleaved ``offset0, lsn0, offset1, lsn1, ...`` list,
  offsets ascending — one bytes value per page, so decoding a sidecar
  costs O(pages), not O(entries).  Checkpoint records
  index under :data:`CHECKPOINT_PAGE` and logical records under
  :data:`LOGICAL_PAGE` (names no data page can collide with), so
  analysis can fetch checkpoints by offset and logical recovery gets a
  single global chain.
- ``edges``: ``[(lsn, read_page_ids, write_page_ids), ...]`` — one entry
  per multi-page (§6.4) record.  Lazy recovery must replay a multi-page
  record's readers and writers *together* (a later fault reading an
  already-recovered page would see final state, not state-at-LSN), so
  these edges feed a union-find that groups pages into replay components.

``region_len`` ties the sidecar to the exact segment bytes it indexed —
the same staleness rule as the ``.seal`` sidecar: a file that grew or
shrank since indexing silently invalidates the sidecar and readers fall
back to the scan.  Like seals, sidecars are written without an fsync;
losing one in a crash costs a rebuild scan, never a record.
"""

from __future__ import annotations

import struct
import zlib
from itertools import repeat
from typing import Iterable, NamedTuple

from repro.logmgr.codec import (
    FILE_HEADER_SIZE,
    RECORD_OVERHEAD,
    PAYLOAD_CHECKPOINT,
    PAYLOAD_LOGICAL,
    PAYLOAD_MULTIPAGE,
    PAYLOAD_PHYSICAL,
    PAYLOAD_PHYSIOLOGICAL,
    TornTail,
    CodecError,
    decode_payload,
    decode_value,
    encode_value,
    walk_frames,
)
from repro.logmgr.records import (
    CheckpointRecord,
    LogicalRedo,
    MultiPageRedo,
    PhysicalRedo,
    PhysiologicalRedo,
)

PAGES_SUFFIX = ".pages"
PAGES_MAGIC = b"RPGX"
PAGES_VERSION = 1

# Pseudo-pages for record kinds that have no single data page.  Data
# pages are ``data%03d`` (and never start with "@"), so no collision.
CHECKPOINT_PAGE = "@checkpoint"
LOGICAL_PAGE = "@logical"

_PAGES_HEADER = struct.Struct("<4sBQQII")
PAGES_HEADER_SIZE = _PAGES_HEADER.size


class SegmentPageIndex(NamedTuple):
    """One segment's page index: where each page's frames live."""

    base_lsn: int
    region_len: int  # frame-region bytes covered (staleness tie)
    pages: dict  # page_id -> flat [offset0, lsn0, offset1, lsn1, ...]
    edges: list  # [(lsn, read_page_ids, write_page_ids), ...]


def _classify_record(record):
    """``(written_page_ids, edge_or_None)`` for one resident record.

    Lazy records are classified by wire tag so a tail scan stays
    decode-free for single-page records (only the page id is decoded);
    multi-page records decode fully (they are rare and carry the edge).
    """
    body = getattr(record, "_body", None)
    if body is not None:
        tag = body[0]
        if tag == PAYLOAD_PHYSIOLOGICAL or tag == PAYLOAD_PHYSICAL:
            return (decode_value(body, 1)[0],), None
        if tag == PAYLOAD_MULTIPAGE:
            payload = record.payload
            return tuple(payload.writes), (
                tuple(payload.read_page_ids),
                tuple(payload.writes),
            )
        if tag == PAYLOAD_LOGICAL:
            return (LOGICAL_PAGE,), None
        return (CHECKPOINT_PAGE,), None
    payload = record.payload
    if isinstance(payload, (PhysiologicalRedo, PhysicalRedo)):
        return (payload.page_id,), None
    if isinstance(payload, MultiPageRedo):
        return tuple(payload.writes), (
            tuple(payload.read_page_ids),
            tuple(payload.writes),
        )
    if isinstance(payload, LogicalRedo):
        return (LOGICAL_PAGE,), None
    if isinstance(payload, CheckpointRecord):
        return (CHECKPOINT_PAGE,), None
    return (), None  # undurable payload (in-memory log only): unindexed


def index_records(base_lsn: int, records: Iterable) -> SegmentPageIndex:
    """Build a segment's page index from its resident records.

    Frame offsets are the running sum of exact frame sizes from the file
    header — ``record.size_bytes()`` *is* the frame length by the byte-
    accounting contract — so this matches what a scan of the file would
    find, without touching the file.  This is the seal-time path: the
    records are still in memory, so indexing costs zero reads.
    """
    pages: dict = {}
    edges: list = []
    offset = FILE_HEADER_SIZE
    for record in records:
        written, edge = _classify_record(record)
        for page_id in written:
            try:
                chain = pages[page_id]
            except KeyError:
                chain = pages[page_id] = []
            chain.append(offset)
            chain.append(record.lsn)
        if edge is not None:
            edges.append((record.lsn, edge[0], edge[1]))
        offset += record.size_bytes()
    return SegmentPageIndex(base_lsn, offset - FILE_HEADER_SIZE, pages, edges)


def index_buffer(
    buf, base_lsn: int, end: int | None = None, verify_crc: bool = True
) -> SegmentPageIndex:
    """Build a segment's page index by scanning its bytes — the fallback
    for unsealed tails and pre-sidecar directories.  One structural walk;
    single-page records decode only their page id, and a torn tail ends
    the index exactly where it ends the log."""
    pages: dict = {}
    edges: list = []
    last = FILE_HEADER_SIZE
    try:
        for lsn, lo, hi in walk_frames(buf, end=end, verify_crc=verify_crc):
            offset = lo - RECORD_OVERHEAD  # frame start, not body start
            tag = buf[lo]
            if tag == PAYLOAD_PHYSIOLOGICAL or tag == PAYLOAD_PHYSICAL:
                written = (decode_value(buf, lo + 1)[0],)
            elif tag == PAYLOAD_MULTIPAGE:
                payload, _ = decode_payload(buf, lo)
                written = tuple(payload.writes)
                edges.append(
                    (lsn, tuple(payload.read_page_ids), tuple(payload.writes))
                )
            elif tag == PAYLOAD_LOGICAL:
                written = (LOGICAL_PAGE,)
            else:
                written = (CHECKPOINT_PAGE,)
            for page_id in written:
                try:
                    chain = pages[page_id]
                except KeyError:
                    chain = pages[page_id] = []
                chain.append(offset)
                chain.append(lsn)
            last = hi
    except TornTail:
        pass
    return SegmentPageIndex(base_lsn, last - FILE_HEADER_SIZE, pages, edges)


def encode_page_index(index: SegmentPageIndex) -> bytes:
    """The sidecar bytes for one segment's page index.

    Each page's flat ``[offset, lsn, ...]`` list is struct-packed into
    one bytes value rather than encoded int by int: a restart decodes a
    sidecar in O(pages), not O(entries) — measured as the difference
    between a lazy analysis dominated by sidecar decoding and one
    dominated by the (unavoidable) chain fold.
    """
    payload = bytearray()
    packed = {
        page_id: struct.pack(f"<{len(flat)}q", *flat)
        for page_id, flat in index.pages.items()
    }
    encode_value((packed, index.edges), payload)
    return (
        _PAGES_HEADER.pack(
            PAGES_MAGIC,
            PAGES_VERSION,
            index.base_lsn,
            index.region_len,
            len(payload),
            zlib.crc32(payload),
        )
        + bytes(payload)
    )


def parse_page_index(blob: bytes | None) -> SegmentPageIndex | None:
    """Decode a sidecar blob; None for anything absent, damaged, or from
    a future version (callers fall back to the rebuild scan)."""
    if blob is None or len(blob) < PAGES_HEADER_SIZE:
        return None
    magic, version, base_lsn, region_len, payload_len, crc = _PAGES_HEADER.unpack_from(
        blob, 0
    )
    if magic != PAGES_MAGIC or version != PAGES_VERSION:
        return None
    payload = blob[PAGES_HEADER_SIZE : PAGES_HEADER_SIZE + payload_len]
    if len(payload) != payload_len or zlib.crc32(payload) != crc:
        return None
    try:
        (packed, edges), _ = decode_value(payload, 0)
    except (CodecError, ValueError, struct.error, IndexError, OverflowError):
        # A CRC can match damaged bytes that were re-checksummed (or the
        # damage can live in the checksum's own preimage space); decode
        # failures of any shape mean the same thing as a bad CRC here.
        return None
    if not isinstance(packed, dict) or not isinstance(edges, list):
        return None
    pages: dict = {}
    for page_id, blob in packed.items():
        # 16 bytes per (offset, lsn) entry; anything else is damage.
        if not isinstance(blob, bytes) or len(blob) % 16:
            return None
        pages[page_id] = list(struct.unpack(f"<{len(blob) // 8}q", blob))
    return SegmentPageIndex(base_lsn, region_len, pages, edges)


class _UnionFind:
    """Plain union-find over page ids (path compression, union by size)."""

    def __init__(self):
        self._parent: dict = {}
        self._size: dict = {}

    def find(self, item):
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


class PageRedoIndex:
    """The per-page redo index over a whole log: every page's chain of
    ``(segment_base, offset, lsn)`` triples, in LSN order, plus the
    multi-page replay components.

    Built segment by segment (oldest first) by
    :meth:`~repro.logmgr.manager.LogManager.page_index`, filtered to
    entries at or above a start LSN, so lazy recovery holds exactly the
    suffix it can ever replay.
    """

    def __init__(self, start_lsn: int = 0):
        self.start_lsn = start_lsn
        self._chains: dict = {}  # page_id -> [(base, offset, lsn), ...]
        self._edges: list = []  # (lsn, reads, writes)
        self.segments_indexed = 0
        self.sidecars_used = 0
        self.scans = 0

    def add_segment(self, index: SegmentPageIndex, from_sidecar: bool = False) -> None:
        """Fold one segment's index in.  Segments must arrive oldest
        first; within a segment the flat lists are offset-ascending, so
        chains stay globally LSN-sorted with no sort.

        The fold is the one unavoidable O(entries) step of a lazy
        analysis, so it runs through C-level ``zip``: a chain's LSNs
        ascend, so one look at the first LSN decides whether the whole
        chain passes the start filter (the common case — ``start_lsn``
        is at most the checkpoint, and most segments sit above it).
        """
        start = self.start_lsn
        base = index.base_lsn
        chains = self._chains
        for page_id, flat in index.pages.items():
            if not flat:
                continue
            if flat[1] >= start:  # ascending LSNs: the whole chain passes
                entries = list(zip(repeat(base), flat[0::2], flat[1::2]))
            else:
                entries = [
                    (base, flat[position], flat[position + 1])
                    for position in range(0, len(flat), 2)
                    if flat[position + 1] >= start
                ]
                if not entries:
                    continue
            chain = chains.get(page_id)
            if chain is None:
                chains[page_id] = entries
            else:
                chain.extend(entries)
        for lsn, reads, writes in index.edges:
            if lsn >= start:
                self._edges.append((lsn, reads, writes))
        self.segments_indexed += 1
        if from_sidecar:
            self.sidecars_used += 1
        else:
            self.scans += 1

    # -- queries -----------------------------------------------------------

    def pages(self) -> list:
        """Indexed page ids (pseudo-pages included), sorted."""
        return sorted(self._chains)

    def data_pages(self) -> list:
        """Indexed real data pages (pseudo-pages excluded), sorted."""
        return sorted(p for p in self._chains if not p.startswith("@"))

    def chain(self, page_id: str, start_lsn: int = 0) -> list:
        """``[(segment_base, offset, lsn), ...]`` for one page, LSN
        ascending, filtered to ``lsn >= start_lsn``."""
        chain = self._chains.get(page_id, [])
        if start_lsn <= self.start_lsn:
            return list(chain)
        return [entry for entry in chain if entry[2] >= start_lsn]

    def first_lsn(self, page_id: str, after_lsn: int = -1) -> int | None:
        """The page's first indexed LSN strictly above ``after_lsn``."""
        for _base, _offset, lsn in self._chains.get(page_id, ()):
            if lsn > after_lsn:
                return lsn
        return None

    def chain_length(self, page_id: str) -> int:
        """Indexed entry count for one page (0 when unindexed)."""
        return len(self._chains.get(page_id, ()))

    @property
    def edges(self) -> list:
        """The multi-page record edges: ``(lsn, reads, writes)``."""
        return self._edges

    def components(self) -> dict:
        """Page -> frozenset of pages that must replay together.

        Union-find over every multi-page record's read∪write set: a
        component is closed under both directions, so replaying its
        members' merged chains in global LSN order satisfies Theorem 3's
        conflict-order consistency (no record in the component reads or
        writes a page outside it).  Pages touched by no multi-page
        record form singleton components and are omitted — callers treat
        a missing entry as ``{page_id}``.
        """
        if not self._edges:
            return {}
        uf = _UnionFind()
        for _lsn, reads, writes in self._edges:
            pages = list(reads) + list(writes)
            anchor = pages[0]
            for page_id in pages[1:]:
                uf.union(anchor, page_id)
        groups: dict = {}
        for page_id in list(uf._parent):
            groups.setdefault(uf.find(page_id), []).append(page_id)
        result: dict = {}
        for members in groups.values():
            frozen = frozenset(members)
            for page_id in members:
                result[page_id] = frozen
        return result

    def total_entries(self) -> int:
        """Chain entries across every indexed page."""
        return sum(len(chain) for chain in self._chains.values())

    def as_dict(self) -> dict:
        """Counters for telemetry and the ``logdump --pages`` renderer."""
        return {
            "pages": len(self._chains),
            "entries": self.total_entries(),
            "edges": len(self._edges),
            "segments_indexed": self.segments_indexed,
            "sidecars_used": self.sidecars_used,
            "scans": self.scans,
        }

    def __repr__(self) -> str:
        return (
            f"PageRedoIndex(pages={len(self._chains)}, "
            f"entries={self.total_entries()}, start_lsn={self.start_lsn})"
        )
